//! Shared infrastructure for snapshot-based range queries: the active
//! snapshot registry and the versioned-link abstraction.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

/// Tracks the snapshot timestamps of in-flight range queries so that version
/// histories ([`crate::VcasLink`]) and bundles ([`crate::BundleLink`]) know
/// which old entries may still be needed.
///
/// This plays the role of the epoch/limbo machinery in the original
/// lock-free implementations: entries older than the oldest active snapshot
/// (keeping the newest such entry as the snapshot's view) can be reclaimed.
#[derive(Debug, Default)]
pub struct SnapshotRegistry {
    active: Mutex<Vec<u64>>,
}

impl SnapshotRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an in-flight snapshot; the returned guard deregisters it when
    /// dropped.
    pub fn register(self: &Arc<Self>, timestamp: u64) -> SnapshotGuard {
        self.active.lock().push(timestamp);
        SnapshotGuard {
            registry: Arc::clone(self),
            timestamp,
        }
    }

    /// The oldest snapshot still in flight, if any.
    pub fn min_active(&self) -> Option<u64> {
        self.active.lock().iter().copied().min()
    }

    /// Number of in-flight snapshots.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    fn deregister(&self, timestamp: u64) {
        let mut active = self.active.lock();
        if let Some(index) = active.iter().position(|&t| t == timestamp) {
            active.swap_remove(index);
        }
    }
}

/// RAII registration of an in-flight snapshot.
pub struct SnapshotGuard {
    registry: Arc<SnapshotRegistry>,
    timestamp: u64,
}

impl SnapshotGuard {
    /// The snapshot timestamp this guard holds active.
    pub fn timestamp(&self) -> u64 {
        self.timestamp
    }
}

impl fmt::Debug for SnapshotGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotGuard")
            .field("timestamp", &self.timestamp)
            .finish()
    }
}

impl Drop for SnapshotGuard {
    fn drop(&mut self) {
        self.registry.deregister(self.timestamp);
    }
}

/// A pointer-like location that remembers enough history for snapshot reads.
///
/// Implemented by [`crate::VcasLink`] (an explicit version list, as in the
/// vCAS technique) and [`crate::BundleLink`] (a chain of bundle entries, as
/// in bundled references).  The skip list and BST baselines are generic over
/// this trait, which is what lets one structural implementation serve both
/// papers' mechanisms.
pub trait VersionedLink<T: Clone>: Send + Sync {
    /// Create a link whose initial value is visible to every snapshot.
    fn with_initial(value: T) -> Self;

    /// The most recent value (what elemental operations follow).
    fn load_latest(&self) -> T;

    /// The value that was current at snapshot time `ts`.
    fn load_at(&self, ts: u64) -> T;

    /// Install `value` with timestamp `ts`, retiring history entries that no
    /// snapshot in `registry` can still need.
    fn store(&self, value: T, ts: u64, registry: &SnapshotRegistry);

    /// Number of retained history entries (for tests and space accounting).
    fn history_len(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_tracks_min_active() {
        let registry = Arc::new(SnapshotRegistry::new());
        assert_eq!(registry.min_active(), None);
        let g1 = registry.register(10);
        let g2 = registry.register(5);
        assert_eq!(registry.min_active(), Some(5));
        assert_eq!(registry.active_count(), 2);
        drop(g2);
        assert_eq!(registry.min_active(), Some(10));
        assert_eq!(g1.timestamp(), 10);
        drop(g1);
        assert_eq!(registry.min_active(), None);
    }

    #[test]
    fn duplicate_timestamps_deregister_one_at_a_time() {
        let registry = Arc::new(SnapshotRegistry::new());
        let g1 = registry.register(7);
        let g2 = registry.register(7);
        drop(g1);
        assert_eq!(registry.min_active(), Some(7));
        drop(g2);
        assert_eq!(registry.min_active(), None);
    }
}
