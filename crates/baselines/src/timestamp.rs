//! Timestamp sources for the vCAS and bundling baselines.
//!
//! Both baseline families order updates and range queries with timestamps.
//! The original algorithms use a shared fetch-and-add counter, which the
//! paper (following Grimes et al.) replaces with the hardware `rdtscp`
//! counter to remove a contention hotspot; the paper's charts only include
//! the `rdtscp`-enhanced variants because they are strictly faster.  Both
//! modes are provided here so the ablation can be reproduced.

use skiphash_stm::sync::{AtomicU64, Ordering};
use std::fmt;

/// Which timestamp mechanism a baseline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimestampMode {
    /// A single shared counter; updates and range queries advance it with
    /// fetch-and-add (the original vCAS / bundling design).
    SharedCounter,
    /// The hardware time-stamp counter (the `rdtscp` optimization).  Falls
    /// back to the shared counter on targets without a TSC.
    Rdtscp,
}

impl fmt::Display for TimestampMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimestampMode::SharedCounter => f.write_str("shared-counter"),
            TimestampMode::Rdtscp => f.write_str("rdtscp"),
        }
    }
}

/// Hands out timestamps to updates and snapshot timestamps to range queries.
#[derive(Debug)]
pub struct TimestampOracle {
    mode: TimestampMode,
    counter: AtomicU64,
}

impl TimestampOracle {
    /// Create an oracle in the given mode.  Timestamps start at 1 so that 0
    /// can mean "present since before any snapshot".
    pub fn new(mode: TimestampMode) -> Self {
        Self {
            mode,
            counter: AtomicU64::new(1),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> TimestampMode {
        self.mode
    }

    #[cfg(target_arch = "x86_64")]
    fn tsc() -> u64 {
        // SAFETY: reading the TSC has no preconditions.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    #[cfg(not(target_arch = "x86_64"))]
    fn tsc() -> u64 {
        0
    }

    /// Timestamp for an update (insertion or removal).
    pub fn update_timestamp(&self) -> u64 {
        match self.mode {
            // SC: the shared counter *is* the paper's total-order baseline;
            // stamps must be globally unique and totally ordered.
            TimestampMode::SharedCounter => self.counter.fetch_add(1, Ordering::SeqCst) + 1,
            TimestampMode::Rdtscp => {
                if cfg!(target_arch = "x86_64") {
                    Self::tsc()
                } else {
                    // SC: non-x86 fallback takes the same totally ordered tick.
                    self.counter.fetch_add(1, Ordering::SeqCst) + 1
                }
            }
        }
    }

    /// Snapshot timestamp for a range query.  In shared-counter mode this
    /// advances the counter (the contention the `rdtscp` variants remove); in
    /// `rdtscp` mode it just reads the TSC.
    pub fn snapshot_timestamp(&self) -> u64 {
        match self.mode {
            // SC: snapshot stamps join the same total order as updates.
            TimestampMode::SharedCounter => self.counter.fetch_add(1, Ordering::SeqCst) + 1,
            TimestampMode::Rdtscp => {
                if cfg!(target_arch = "x86_64") {
                    Self::tsc()
                } else {
                    // SC: read of the update counter must not pass any stamp
                    // an update thread already published.
                    self.counter.load(Ordering::SeqCst)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_counter_is_strictly_increasing() {
        let oracle = TimestampOracle::new(TimestampMode::SharedCounter);
        let a = oracle.update_timestamp();
        let b = oracle.update_timestamp();
        let c = oracle.snapshot_timestamp();
        assert!(a < b && b < c);
    }

    #[test]
    fn rdtscp_is_monotonic() {
        let oracle = TimestampOracle::new(TimestampMode::Rdtscp);
        let a = oracle.update_timestamp();
        let b = oracle.update_timestamp();
        assert!(b >= a);
        assert_eq!(oracle.mode(), TimestampMode::Rdtscp);
    }

    #[test]
    fn display_names() {
        assert_eq!(TimestampMode::SharedCounter.to_string(), "shared-counter");
        assert_eq!(TimestampMode::Rdtscp.to_string(), "rdtscp");
    }
}
