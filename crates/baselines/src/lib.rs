//! Baseline concurrent ordered maps used by the skip hash paper's evaluation.
//!
//! The paper compares the skip hash against:
//!
//! * a binary search tree and a skip list based on **versioned CAS (vCAS)**
//!   snapshots (Wei et al.), with the `rdtscp` hardware-timestamp
//!   optimization of Grimes et al.;
//! * a skip list using **bundled references** (Nelson-Slivon et al.), also
//!   with the `rdtscp` optimization;
//! * an **STM skip list** and an **STM hash map** that do not support range
//!   queries, to isolate the benefit of composing the two structures.
//!
//! # Substitutions relative to the paper's artifacts
//!
//! The original baselines are lock-free C++ data structures.  This crate
//! keeps the parts that the evaluation actually measures — `O(log n)`
//! traversal-bound elemental operations, per-link *version histories* (vCAS)
//! or *bundles* so that range queries read a consistent snapshot at a
//! timestamp, and a pluggable timestamp source (shared counter vs. hardware
//! TSC) — while synchronizing structural updates with fine-grained per-node
//! locks (the classic "lazy" optimistic scheme) instead of multi-word CAS
//! helping protocols.  DESIGN.md §2 records this substitution; the shapes the
//! paper's figures depend on (who is traversal-bound, who scans snapshots at
//! a timestamp) are preserved.

#![warn(missing_docs)]

pub mod bst;
pub mod bundle;
pub mod ordered;
pub mod skiplist;
pub mod stm_maps;
pub mod timestamp;
pub mod vcas;

pub use bst::VcasBst;
pub use bundle::BundleLink;
pub use ordered::SnapshotRegistry;
pub use skiplist::{BundledSkipList, VcasSkipList, VersionedSkipList};
pub use stm_maps::{StmHashMap, StmSkipListMap};
pub use timestamp::{TimestampMode, TimestampOracle};
pub use vcas::VcasLink;
