//! The "BST (vCAS)" baseline: an external (leaf-oriented) binary search tree
//! whose child pointers are versioned, giving timestamped snapshot range
//! queries in the style of Wei et al.
//!
//! Internal nodes are routers; every key/value pair lives in a leaf.  An
//! insertion replaces a leaf with a small subtree (router + two leaves); a
//! removal splices the leaf's parent out.  Both updates go through
//! [`VcasLink`]s stamped with a timestamp from the configured
//! [`TimestampOracle`], so a range query can traverse the tree exactly as it
//! was at its snapshot timestamp while updates proceed.
//!
//! As with the other baselines, structural updates take per-node locks
//! instead of the original's CAS helping protocol (see the crate-level
//! documentation for the substitution rationale).

use skiphash_stm::sync::{AtomicBool, Ordering};
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::ordered::{SnapshotRegistry, VersionedLink};
use crate::timestamp::{TimestampMode, TimestampOracle};
use crate::vcas::VcasLink;

struct Internal<K, V> {
    /// Routing key; `None` only for the pseudo-root, which behaves like +∞.
    key: Option<K>,
    left: VcasLink<Arc<BstNode<K, V>>>,
    right: VcasLink<Arc<BstNode<K, V>>>,
    lock: Mutex<()>,
    /// Set when this router has been spliced out of the tree.
    retired: AtomicBool,
}

struct Leaf<K, V> {
    /// `None` marks the empty sentinel leaf.
    key: Option<K>,
    value: Option<V>,
}

enum BstNode<K, V> {
    Internal(Internal<K, V>),
    Leaf(Leaf<K, V>),
}

impl<K, V> BstNode<K, V> {
    fn empty_leaf() -> Arc<Self> {
        Arc::new(BstNode::Leaf(Leaf {
            key: None,
            value: None,
        }))
    }

    fn leaf(key: K, value: V) -> Arc<Self> {
        Arc::new(BstNode::Leaf(Leaf {
            key: Some(key),
            value: Some(value),
        }))
    }

    fn as_internal(&self) -> Option<&Internal<K, V>> {
        match self {
            BstNode::Internal(i) => Some(i),
            BstNode::Leaf(_) => None,
        }
    }

    fn as_leaf(&self) -> Option<&Leaf<K, V>> {
        match self {
            BstNode::Leaf(l) => Some(l),
            BstNode::Internal(_) => None,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Dir {
    Left,
    Right,
}

/// The vCAS external binary search tree baseline.
pub struct VcasBst<K, V> {
    root: Internal<K, V>,
    oracle: TimestampOracle,
    registry: Arc<SnapshotRegistry>,
}

impl<K, V> fmt::Debug for VcasBst<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VcasBst").finish()
    }
}

impl<K, V> VcasBst<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Create an empty tree using timestamps from `mode`.
    pub fn new(mode: TimestampMode) -> Self {
        Self {
            root: Internal {
                key: None,
                left: VcasLink::with_initial(BstNode::empty_leaf()),
                right: VcasLink::with_initial(BstNode::empty_leaf()),
                lock: Mutex::new(()),
                retired: AtomicBool::new(false),
            },
            oracle: TimestampOracle::new(mode),
            registry: Arc::new(SnapshotRegistry::new()),
        }
    }

    /// The timestamp mode this tree was created with.
    pub fn timestamp_mode(&self) -> TimestampMode {
        self.oracle.mode()
    }

    fn go_left(internal_key: &Option<K>, key: &K) -> bool {
        match internal_key {
            None => true, // pseudo-root behaves like +∞
            Some(k) => key < k,
        }
    }

    fn child(&self, internal: &Internal<K, V>, dir: Dir) -> Arc<BstNode<K, V>> {
        match dir {
            Dir::Left => internal.left.load_latest(),
            Dir::Right => internal.right.load_latest(),
        }
    }

    fn child_at(&self, internal: &Internal<K, V>, dir: Dir, ts: u64) -> Arc<BstNode<K, V>> {
        match dir {
            Dir::Left => internal.left.load_at(ts),
            Dir::Right => internal.right.load_at(ts),
        }
    }

    fn set_child(&self, internal: &Internal<K, V>, dir: Dir, node: Arc<BstNode<K, V>>, ts: u64) {
        match dir {
            Dir::Left => internal.left.store(node, ts, &self.registry),
            Dir::Right => internal.right.store(node, ts, &self.registry),
        }
    }

    /// Walk from the root to the leaf where `key` belongs, recording the
    /// parent and grandparent routers and the directions taken.
    ///
    /// Returned tuple: (grandparent, gp->parent direction, parent,
    /// parent->leaf direction, leaf).  The grandparent is `None` when the
    /// parent is the pseudo-root.
    #[allow(clippy::type_complexity)]
    fn search(
        &self,
        key: &K,
    ) -> (
        Option<Arc<BstNode<K, V>>>,
        Dir,
        Option<Arc<BstNode<K, V>>>,
        Dir,
        Arc<BstNode<K, V>>,
    ) {
        let mut grandparent: Option<Arc<BstNode<K, V>>> = None;
        let mut gp_dir = Dir::Left;
        let mut parent: Option<Arc<BstNode<K, V>>> = None;
        let mut p_dir = if Self::go_left(&self.root.key, key) {
            Dir::Left
        } else {
            Dir::Right
        };
        let mut current = self.child(&self.root, p_dir);
        while let Some(internal) = current.as_internal() {
            let dir = if Self::go_left(&internal.key, key) {
                Dir::Left
            } else {
                Dir::Right
            };
            grandparent = parent.take();
            gp_dir = p_dir;
            parent = Some(Arc::clone(&current));
            p_dir = dir;
            current = self.child(internal, dir);
        }
        (grandparent, gp_dir, parent, p_dir, current)
    }

    /// Look up `key`.
    pub fn get(&self, key: &K) -> Option<V> {
        let (_, _, _, _, leaf) = self.search(key);
        let leaf = leaf.as_leaf().expect("search always ends at a leaf");
        if leaf.key.as_ref() == Some(key) {
            leaf.value.clone()
        } else {
            None
        }
    }

    /// True if `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Insert `key -> value`; returns `false` if the key is already present.
    pub fn insert(&self, key: K, value: V) -> bool {
        loop {
            let (_, _, parent, p_dir, leaf_node) = self.search(&key);
            let leaf = leaf_node.as_leaf().expect("search always ends at a leaf");
            if leaf.key.as_ref() == Some(&key) {
                return false;
            }
            // Lock the parent router (or the pseudo-root) and validate that
            // the leaf we found is still in place.
            let parent_internal = match &parent {
                Some(node) => node.as_internal().expect("parents are routers"),
                None => &self.root,
            };
            let _guard = match parent_internal.lock.try_lock() {
                Some(guard) => guard,
                None => {
                    skiphash_stm::sync::yield_now();
                    continue;
                }
            };
            if parent_internal.retired.load(Ordering::Acquire)
                || !Arc::ptr_eq(&self.child(parent_internal, p_dir), &leaf_node)
            {
                continue;
            }
            let ts = self.oracle.update_timestamp();
            let new_leaf = BstNode::leaf(key.clone(), value.clone());
            let replacement = match &leaf.key {
                // Replacing the empty sentinel leaf: no router needed.
                None => new_leaf,
                Some(existing_key) => {
                    let (router_key, left, right) = if key < *existing_key {
                        (existing_key.clone(), new_leaf, Arc::clone(&leaf_node))
                    } else {
                        (key.clone(), Arc::clone(&leaf_node), new_leaf)
                    };
                    Arc::new(BstNode::Internal(Internal {
                        key: Some(router_key),
                        left: VcasLink::with_initial(left),
                        right: VcasLink::with_initial(right),
                        lock: Mutex::new(()),
                        retired: AtomicBool::new(false),
                    }))
                }
            };
            self.set_child(parent_internal, p_dir, replacement, ts);
            return true;
        }
    }

    /// Remove `key`; returns `false` if it was absent.
    pub fn remove(&self, key: &K) -> bool {
        loop {
            let (grandparent, gp_dir, parent, p_dir, leaf_node) = self.search(key);
            let leaf = leaf_node.as_leaf().expect("search always ends at a leaf");
            if leaf.key.as_ref() != Some(key) {
                return false;
            }
            match parent {
                None => {
                    // The leaf hangs directly off the pseudo-root: replace it
                    // with the empty sentinel.
                    let _guard = match self.root.lock.try_lock() {
                        Some(guard) => guard,
                        None => {
                            skiphash_stm::sync::yield_now();
                            continue;
                        }
                    };
                    if !Arc::ptr_eq(&self.child(&self.root, p_dir), &leaf_node) {
                        continue;
                    }
                    let ts = self.oracle.update_timestamp();
                    self.set_child(&self.root, p_dir, BstNode::empty_leaf(), ts);
                    return true;
                }
                Some(parent_node) => {
                    let parent_internal = parent_node.as_internal().expect("parents are routers");
                    let grandparent_internal = match &grandparent {
                        Some(node) => node.as_internal().expect("grandparents are routers"),
                        None => &self.root,
                    };
                    let gp_guard = match grandparent_internal.lock.try_lock() {
                        Some(guard) => guard,
                        None => {
                            skiphash_stm::sync::yield_now();
                            continue;
                        }
                    };
                    let p_guard = match parent_internal.lock.try_lock() {
                        Some(guard) => guard,
                        None => {
                            drop(gp_guard);
                            skiphash_stm::sync::yield_now();
                            continue;
                        }
                    };
                    let valid = !grandparent_internal.retired.load(Ordering::Acquire)
                        && !parent_internal.retired.load(Ordering::Acquire)
                        && Arc::ptr_eq(&self.child(grandparent_internal, gp_dir), &parent_node)
                        && Arc::ptr_eq(&self.child(parent_internal, p_dir), &leaf_node);
                    if !valid {
                        drop(p_guard);
                        drop(gp_guard);
                        continue;
                    }
                    let sibling_dir = match p_dir {
                        Dir::Left => Dir::Right,
                        Dir::Right => Dir::Left,
                    };
                    let sibling = self.child(parent_internal, sibling_dir);
                    parent_internal.retired.store(true, Ordering::Release);
                    let ts = self.oracle.update_timestamp();
                    self.set_child(grandparent_internal, gp_dir, sibling, ts);
                    return true;
                }
            }
        }
    }

    /// Collect every `(key, value)` pair with `low <= key <= high` as of a
    /// single snapshot timestamp, in ascending key order.
    pub fn range(&self, low: &K, high: &K) -> Vec<(K, V)> {
        let ts = self.oracle.snapshot_timestamp();
        let _guard = self.registry.register(ts);
        let mut out = Vec::new();
        // Iterative depth-first traversal, pushing right before left so keys
        // come out in ascending order.
        let mut stack: Vec<Arc<BstNode<K, V>>> = vec![self.child_at(&self.root, Dir::Left, ts)];
        while let Some(node) = stack.pop() {
            match &*node {
                BstNode::Leaf(leaf) => {
                    if let (Some(k), Some(v)) = (&leaf.key, &leaf.value) {
                        if k >= low && k <= high {
                            out.push((k.clone(), v.clone()));
                        }
                    }
                }
                BstNode::Internal(internal) => {
                    let router = internal.key.as_ref();
                    // Right subtree holds keys >= router; visit when the
                    // range's upper bound reaches it.
                    let visit_right = match router {
                        None => true,
                        Some(k) => high >= k,
                    };
                    // Left subtree holds keys < router; visit when the
                    // range's lower bound is below it.
                    let visit_left = match router {
                        None => true,
                        Some(k) => low < k,
                    };
                    if visit_right {
                        stack.push(self.child_at(internal, Dir::Right, ts));
                    }
                    if visit_left {
                        stack.push(self.child_at(internal, Dir::Left, ts));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Number of present keys (full traversal; tests and reporting only).
    pub fn len(&self) -> usize {
        let mut count = 0;
        let mut stack = vec![self.child(&self.root, Dir::Left)];
        while let Some(node) = stack.pop() {
            match &*node {
                BstNode::Leaf(leaf) => {
                    if leaf.key.is_some() {
                        count += 1;
                    }
                }
                BstNode::Internal(internal) => {
                    stack.push(self.child(internal, Dir::Left));
                    stack.push(self.child(internal, Dir::Right));
                }
            }
        }
        count
    }

    /// True when the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let tree: VcasBst<u64, u64> = VcasBst::new(TimestampMode::Rdtscp);
        assert!(tree.is_empty());
        assert!(tree.insert(5, 50));
        assert!(tree.insert(2, 20));
        assert!(tree.insert(8, 80));
        assert!(!tree.insert(5, 55), "duplicate insert must fail");
        assert_eq!(tree.get(&2), Some(20));
        assert_eq!(tree.get(&3), None);
        assert_eq!(tree.len(), 3);
        assert!(tree.remove(&5));
        assert!(!tree.remove(&5));
        assert_eq!(tree.get(&5), None);
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn removing_the_only_key_leaves_an_empty_tree() {
        let tree: VcasBst<u64, u64> = VcasBst::new(TimestampMode::Rdtscp);
        assert!(tree.insert(1, 1));
        assert!(tree.remove(&1));
        assert!(tree.is_empty());
        assert!(tree.insert(1, 2));
        assert_eq!(tree.get(&1), Some(2));
    }

    #[test]
    fn range_returns_sorted_inclusive_bounds() {
        let tree: VcasBst<u64, u64> = VcasBst::new(TimestampMode::Rdtscp);
        for k in [50u64, 20, 80, 10, 30, 70, 90, 25, 35] {
            assert!(tree.insert(k, k));
        }
        assert_eq!(
            tree.range(&20, &70),
            vec![(20, 20), (25, 25), (30, 30), (35, 35), (50, 50), (70, 70)]
        );
        assert_eq!(tree.range(&0, &5), vec![]);
        assert_eq!(tree.range(&90, &200), vec![(90, 90)]);
    }

    #[test]
    fn range_snapshot_is_isolated_from_later_updates() {
        let tree: VcasBst<u64, u64> = VcasBst::new(TimestampMode::SharedCounter);
        for k in 0..20u64 {
            assert!(tree.insert(k, k));
        }
        // Register a snapshot, then mutate, then verify a query at the old
        // timestamp still sees the old contents.
        let ts = tree.oracle.snapshot_timestamp();
        let guard = tree.registry.register(ts);
        assert!(tree.remove(&10));
        assert!(tree.insert(100, 100));
        // Traverse manually at the old snapshot.
        let mut stack = vec![tree.child_at(&tree.root, Dir::Left, ts)];
        let mut keys = Vec::new();
        while let Some(node) = stack.pop() {
            match &*node {
                BstNode::Leaf(leaf) => {
                    if let Some(k) = &leaf.key {
                        keys.push(*k);
                    }
                }
                BstNode::Internal(internal) => {
                    stack.push(tree.child_at(internal, Dir::Left, ts));
                    stack.push(tree.child_at(internal, Dir::Right, ts));
                }
            }
        }
        keys.sort_unstable();
        assert_eq!(keys, (0..20u64).collect::<Vec<_>>());
        drop(guard);
        // A fresh range query sees the new state.
        let fresh: Vec<u64> = tree.range(&0, &200).into_iter().map(|(k, _)| k).collect();
        assert!(!fresh.contains(&10));
        assert!(fresh.contains(&100));
    }

    #[test]
    fn concurrent_inserts_from_multiple_threads() {
        use std::thread;
        let tree = Arc::new(VcasBst::<u64, u64>::new(TimestampMode::Rdtscp));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let tree = Arc::clone(&tree);
            handles.push(thread::spawn(move || {
                for i in 0..250u64 {
                    assert!(tree.insert(t * 10_000 + i, i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tree.len(), 1000);
        assert_eq!(tree.range(&0, &u64::MAX).len(), 1000);
    }
}
