//! Versioned links in the style of the vCAS (versioned compare-and-swap)
//! technique of Wei et al.
//!
//! A [`VcasLink`] keeps, for one pointer-sized location, the list of values
//! it has held together with the timestamp at which each value was
//! installed.  Elemental operations read the newest value; a range query
//! running at snapshot timestamp `ts` reads the newest value installed at or
//! before `ts`, which gives it a consistent view of the whole structure
//! without blocking updates.
//!
//! The original vCAS maintains the version list lock-free, chaining "vnodes"
//! behind a CAS-installed head.  Here the list is a small vector guarded by a
//! reader/writer lock: the structural updates that call [`VersionedLink::store`]
//! already hold per-node locks in our baselines, so the lock adds no extra
//! serialization on the update path, and snapshot reads only take the shared
//! side.

use std::fmt;

use parking_lot::RwLock;

use crate::ordered::{SnapshotRegistry, VersionedLink};

/// A versioned location: the vCAS building block.
pub struct VcasLink<T> {
    versions: RwLock<Vec<(u64, T)>>,
}

impl<T: Clone> fmt::Debug for VcasLink<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VcasLink")
            .field("versions", &self.versions.read().len())
            .finish()
    }
}

impl<T: Clone + Send + Sync> VersionedLink<T> for VcasLink<T> {
    fn with_initial(value: T) -> Self {
        Self {
            versions: RwLock::new(vec![(0, value)]),
        }
    }

    fn load_latest(&self) -> T {
        let versions = self.versions.read();
        versions
            .last()
            .expect("version list is never empty")
            .1
            .clone()
    }

    fn load_at(&self, ts: u64) -> T {
        let versions = self.versions.read();
        // Versions are kept sorted by timestamp; find the newest entry whose
        // timestamp is <= ts.  The initial entry has timestamp 0, so there is
        // always at least one candidate.
        let index = versions.partition_point(|(t, _)| *t <= ts);
        let index = index.saturating_sub(1);
        versions[index].1.clone()
    }

    fn store(&self, value: T, ts: u64, registry: &SnapshotRegistry) {
        let mut versions = self.versions.write();
        versions.push((ts, value));
        // Reclaim entries no in-flight snapshot can still observe: keep the
        // newest entry at or before the oldest active snapshot, plus
        // everything newer.
        let horizon = registry.min_active().unwrap_or(u64::MAX);
        let keep_from = versions
            .partition_point(|(t, _)| *t <= horizon)
            .saturating_sub(1);
        if keep_from > 0 {
            versions.drain(..keep_from);
        }
    }

    fn history_len(&self) -> usize {
        self.versions.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn load_at_returns_value_current_at_timestamp() {
        let registry = Arc::new(SnapshotRegistry::new());
        let link = VcasLink::with_initial(0u64);
        let keeper = registry.register(1); // keep history alive
        link.store(10, 5, &registry);
        link.store(20, 9, &registry);
        assert_eq!(link.load_latest(), 20);
        assert_eq!(link.load_at(0), 0);
        assert_eq!(link.load_at(4), 0);
        assert_eq!(link.load_at(5), 10);
        assert_eq!(link.load_at(8), 10);
        assert_eq!(link.load_at(9), 20);
        assert_eq!(link.load_at(u64::MAX), 20);
        drop(keeper);
    }

    #[test]
    fn history_is_trimmed_when_no_snapshot_is_active() {
        let registry = Arc::new(SnapshotRegistry::new());
        let link = VcasLink::with_initial(0u64);
        for i in 1..100u64 {
            link.store(i, i, &registry);
        }
        assert_eq!(link.history_len(), 1, "only the newest entry survives");
        assert_eq!(link.load_latest(), 99);
    }

    #[test]
    fn history_is_retained_for_active_snapshots() {
        let registry = Arc::new(SnapshotRegistry::new());
        let link = VcasLink::with_initial(0u64);
        link.store(1, 10, &registry);
        let guard = registry.register(15);
        link.store(2, 20, &registry);
        link.store(3, 30, &registry);
        // The snapshot at 15 must still be able to read the value installed
        // at 10.
        assert_eq!(link.load_at(guard.timestamp()), 1);
        assert!(link.history_len() >= 3);
        drop(guard);
        link.store(4, 40, &registry);
        assert_eq!(link.history_len(), 1);
    }
}
