//! A concurrent skip list with snapshot range queries, generic over the
//! versioned-link mechanism.
//!
//! Instantiated with [`VcasLink`] it models the paper's
//! "Skip list (vCAS, RDTSCP)" baseline; instantiated with
//! [`BundleLink`] it models "Skip list (Bundled, RDTSCP)".
//!
//! Elemental operations follow the classic optimistic ("lazy") lock-based
//! skip list: traversals are lock-free reads of the newest links; insertions
//! and removals lock the affected predecessors, validate, and splice.  The
//! level-0 successor links additionally record their history through the
//! [`VersionedLink`] so that a range query can read the list as of its
//! snapshot timestamp without blocking updates.

use skiphash_stm::sync::{AtomicBool, AtomicU64, Ordering};
use std::fmt;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use rand::Rng;

use crate::bundle::BundleLink;
use crate::ordered::{SnapshotRegistry, VersionedLink};
use crate::timestamp::{TimestampMode, TimestampOracle};
use crate::vcas::VcasLink;

const ALIVE: u64 = u64::MAX;

/// Key position including the sentinels.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Key<K> {
    NegInf,
    Value(K),
    PosInf,
}

impl<K: Ord> Key<K> {
    fn is_before(&self, other: &K) -> bool {
        match self {
            Key::NegInf => true,
            Key::Value(k) => k < other,
            Key::PosInf => false,
        }
    }

    fn equals(&self, other: &K) -> bool {
        matches!(self, Key::Value(k) if k == other)
    }

    fn is_at_most(&self, other: &K) -> bool {
        match self {
            Key::NegInf => true,
            Key::Value(k) => k <= other,
            Key::PosInf => false,
        }
    }
}

/// A node of the baseline skip list.  Public only because it appears in the
/// type parameters of the [`VersionedLink`] implementations; its fields are
/// crate-private.
pub struct Node<K, V, L> {
    key: Key<K>,
    value: Option<V>,
    height: usize,
    /// Per-node lock taken by structural updates.
    lock: Mutex<()>,
    /// Logically deleted (the linearization point of `remove`).
    marked: AtomicBool,
    /// Fully linked at all levels (the linearization point of `insert`).
    fully_linked: AtomicBool,
    /// Timestamp of insertion (0 = present since the beginning).
    birth_ts: AtomicU64,
    /// Timestamp of removal (`ALIVE` while present).
    death_ts: AtomicU64,
    /// Versioned level-0 successor (what snapshot range queries follow).
    next0: L,
    /// Plain successors for levels `1..height`.
    upper: Vec<RwLock<Link<K, V, L>>>,
}

/// Shared handle to a node.
pub type NodeRef<K, V, L> = Arc<Node<K, V, L>>;
/// A (possibly absent) link between nodes.
pub type Link<K, V, L> = Option<NodeRef<K, V, L>>;

impl<K, V, L> Node<K, V, L>
where
    K: Ord,
    L: VersionedLink<Link<K, V, L>>,
{
    fn next(&self, level: usize) -> Link<K, V, L> {
        if level == 0 {
            self.next0.load_latest()
        } else {
            self.upper[level - 1].read().clone()
        }
    }

    fn set_next(&self, level: usize, target: Link<K, V, L>, ts: u64, registry: &SnapshotRegistry) {
        if level == 0 {
            self.next0.store(target, ts, registry);
        } else {
            *self.upper[level - 1].write() = target;
        }
    }

    fn alive_at(&self, ts: u64) -> bool {
        self.birth_ts.load(Ordering::Acquire) <= ts && ts < self.death_ts.load(Ordering::Acquire)
    }

    fn is_present(&self) -> bool {
        self.fully_linked.load(Ordering::Acquire) && !self.marked.load(Ordering::Acquire)
    }
}

/// A concurrent skip list whose range queries read a timestamped snapshot
/// through versioned level-0 links.
pub struct VersionedSkipList<K, V, L> {
    head: NodeRef<K, V, L>,
    max_level: usize,
    oracle: TimestampOracle,
    registry: Arc<SnapshotRegistry>,
}

/// Versioned link for the vCAS skip list.  The indirection through a newtype
/// is what lets the node type refer to its own link type.
pub struct VcasNodeLink<K, V>(VcasLink<Link<K, V, VcasNodeLink<K, V>>>);

impl<K, V> VersionedLink<Link<K, V, VcasNodeLink<K, V>>> for VcasNodeLink<K, V>
where
    K: Send + Sync,
    V: Send + Sync,
{
    fn with_initial(value: Link<K, V, VcasNodeLink<K, V>>) -> Self {
        Self(VcasLink::with_initial(value))
    }
    fn load_latest(&self) -> Link<K, V, VcasNodeLink<K, V>> {
        self.0.load_latest()
    }
    fn load_at(&self, ts: u64) -> Link<K, V, VcasNodeLink<K, V>> {
        self.0.load_at(ts)
    }
    fn store(&self, value: Link<K, V, VcasNodeLink<K, V>>, ts: u64, registry: &SnapshotRegistry) {
        self.0.store(value, ts, registry)
    }
    fn history_len(&self) -> usize {
        self.0.history_len()
    }
}

/// Versioned link for the bundled skip list.
pub struct BundleNodeLink<K, V>(BundleLink<Link<K, V, BundleNodeLink<K, V>>>);

impl<K, V> VersionedLink<Link<K, V, BundleNodeLink<K, V>>> for BundleNodeLink<K, V>
where
    K: Send + Sync,
    V: Send + Sync,
{
    fn with_initial(value: Link<K, V, BundleNodeLink<K, V>>) -> Self {
        Self(BundleLink::with_initial(value))
    }
    fn load_latest(&self) -> Link<K, V, BundleNodeLink<K, V>> {
        self.0.load_latest()
    }
    fn load_at(&self, ts: u64) -> Link<K, V, BundleNodeLink<K, V>> {
        self.0.load_at(ts)
    }
    fn store(&self, value: Link<K, V, BundleNodeLink<K, V>>, ts: u64, registry: &SnapshotRegistry) {
        self.0.store(value, ts, registry)
    }
    fn history_len(&self) -> usize {
        self.0.history_len()
    }
}

/// The "Skip list (vCAS, RDTSCP)" baseline from the paper's evaluation.
pub type VcasSkipList<K, V> = VersionedSkipList<K, V, VcasNodeLink<K, V>>;

/// The "Skip list (Bundled, RDTSCP)" baseline from the paper's evaluation.
pub type BundledSkipList<K, V> = VersionedSkipList<K, V, BundleNodeLink<K, V>>;

impl<K, V, L> fmt::Debug for VersionedSkipList<K, V, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VersionedSkipList")
            .field("max_level", &self.max_level)
            .finish()
    }
}

impl<K, V, L> VersionedSkipList<K, V, L>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    L: VersionedLink<Link<K, V, L>> + 'static,
{
    /// Create a skip list with `max_level` levels using timestamps from
    /// `mode`.
    pub fn new(max_level: usize, mode: TimestampMode) -> Self {
        assert!(max_level >= 1, "need at least one level");
        let tail: NodeRef<K, V, L> = Arc::new(Node {
            key: Key::PosInf,
            value: None,
            height: max_level,
            lock: Mutex::new(()),
            marked: AtomicBool::new(false),
            fully_linked: AtomicBool::new(true),
            birth_ts: AtomicU64::new(0),
            death_ts: AtomicU64::new(ALIVE),
            next0: L::with_initial(None),
            upper: (1..max_level).map(|_| RwLock::new(None)).collect(),
        });
        let head: NodeRef<K, V, L> = Arc::new(Node {
            key: Key::NegInf,
            value: None,
            height: max_level,
            lock: Mutex::new(()),
            marked: AtomicBool::new(false),
            fully_linked: AtomicBool::new(true),
            birth_ts: AtomicU64::new(0),
            death_ts: AtomicU64::new(ALIVE),
            next0: L::with_initial(Some(Arc::clone(&tail))),
            upper: (1..max_level)
                .map(|_| RwLock::new(Some(Arc::clone(&tail))))
                .collect(),
        });
        Self {
            head,
            max_level,
            oracle: TimestampOracle::new(mode),
            registry: Arc::new(SnapshotRegistry::new()),
        }
    }

    fn random_height(&self) -> usize {
        let mut rng = rand::thread_rng();
        let mut height = 1;
        while height < self.max_level && rng.gen::<bool>() {
            height += 1;
        }
        height
    }

    /// Optimistic traversal: for every level, the last node with key < `key`
    /// and its successor.  Also returns the topmost level at which a node
    /// with exactly `key` was found, if any.
    #[allow(clippy::type_complexity)]
    fn find(
        &self,
        key: &K,
    ) -> (
        Vec<NodeRef<K, V, L>>,
        Vec<NodeRef<K, V, L>>,
        Option<NodeRef<K, V, L>>,
    ) {
        let mut preds = Vec::with_capacity(self.max_level);
        let mut succs = Vec::with_capacity(self.max_level);
        preds.resize(self.max_level, Arc::clone(&self.head));
        succs.resize(self.max_level, Arc::clone(&self.head));
        let mut found = None;
        let mut pred = Arc::clone(&self.head);
        for level in (0..self.max_level).rev() {
            let mut curr = pred.next(level).expect("levels end at the tail");
            while curr.key.is_before(key) {
                pred = Arc::clone(&curr);
                curr = curr.next(level).expect("levels end at the tail");
            }
            if found.is_none() && curr.key.equals(key) {
                found = Some(Arc::clone(&curr));
            }
            preds[level] = Arc::clone(&pred);
            succs[level] = curr;
        }
        (preds, succs, found)
    }

    /// Look up `key`.
    pub fn get(&self, key: &K) -> Option<V> {
        let (_, _, found) = self.find(key);
        match found {
            Some(node) if node.is_present() => node.value.clone(),
            _ => None,
        }
    }

    /// True if `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Insert `key -> value`; returns `false` if the key is already present.
    pub fn insert(&self, key: K, value: V) -> bool {
        let height = self.random_height();
        loop {
            let (preds, succs, found) = self.find(&key);
            if let Some(existing) = found {
                if !existing.marked.load(Ordering::Acquire) {
                    // Wait until it is fully linked so our failed insert
                    // linearizes after the competing successful one.
                    while !existing.fully_linked.load(Ordering::Acquire) {
                        skiphash_stm::sync::yield_now();
                    }
                    return false;
                }
                // A marked node for this key is about to be unlinked; retry.
                continue;
            }

            // Lock the predecessors (deduplicated, bottom-up); bail out and
            // retry if any lock is contended or validation fails.
            let mut guards = Vec::with_capacity(height);
            let mut locked: Vec<&NodeRef<K, V, L>> = Vec::with_capacity(height);
            let mut valid = true;
            for level in 0..height {
                let pred = &preds[level];
                if !locked.iter().any(|p| Arc::ptr_eq(p, pred)) {
                    match pred.lock.try_lock() {
                        Some(guard) => {
                            guards.push(guard);
                            locked.push(pred);
                        }
                        None => {
                            valid = false;
                            break;
                        }
                    }
                }
                let succ = &succs[level];
                valid = !pred.marked.load(Ordering::Acquire)
                    && !succ.marked.load(Ordering::Acquire)
                    && pred
                        .next(level)
                        .map(|n| Arc::ptr_eq(&n, succ))
                        .unwrap_or(false);
                if !valid {
                    break;
                }
            }
            if !valid {
                drop(guards);
                std::hint::spin_loop();
                continue;
            }

            let ts = self.oracle.update_timestamp();
            let node: NodeRef<K, V, L> = Arc::new(Node {
                key: Key::Value(key.clone()),
                value: Some(value.clone()),
                height,
                lock: Mutex::new(()),
                marked: AtomicBool::new(false),
                fully_linked: AtomicBool::new(false),
                birth_ts: AtomicU64::new(ts),
                death_ts: AtomicU64::new(ALIVE),
                next0: L::with_initial(Some(Arc::clone(&succs[0]))),
                upper: (1..height)
                    .map(|level| RwLock::new(Some(Arc::clone(&succs[level]))))
                    .collect(),
            });
            for (level, pred) in preds.iter().enumerate().take(height) {
                pred.set_next(level, Some(Arc::clone(&node)), ts, &self.registry);
            }
            node.fully_linked.store(true, Ordering::Release);
            return true;
        }
    }

    /// Remove `key`; returns `false` if it was absent.
    pub fn remove(&self, key: &K) -> bool {
        let mut victim: Option<NodeRef<K, V, L>> = None;
        let mut victim_guard_held = false;
        loop {
            let (preds, succs, found) = self.find(key);
            if victim.is_none() {
                match found {
                    Some(node) if node.is_present() => victim = Some(node),
                    _ => return false,
                }
            }
            let node = victim.as_ref().expect("victim chosen above");
            if !victim_guard_held {
                // Mark under the victim's lock: this is the linearization
                // point of the removal.
                let _guard = node.lock.lock();
                if node.marked.load(Ordering::Acquire) {
                    return false;
                }
                node.marked.store(true, Ordering::Release);
                let ts = self.oracle.update_timestamp();
                node.death_ts.store(ts, Ordering::Release);
                victim_guard_held = true;
                // The guard is dropped here; `marked` keeps competitors away
                // while we unlink below (possibly over several retries).
            }

            let height = node.height;
            let mut guards = Vec::with_capacity(height);
            let mut locked: Vec<&NodeRef<K, V, L>> = Vec::with_capacity(height);
            let mut valid = true;
            for level in 0..height {
                let pred = &preds[level];
                if !locked.iter().any(|p| Arc::ptr_eq(p, pred)) {
                    match pred.lock.try_lock() {
                        Some(guard) => {
                            guards.push(guard);
                            locked.push(pred);
                        }
                        None => {
                            valid = false;
                            break;
                        }
                    }
                }
                valid = !pred.marked.load(Ordering::Acquire)
                    && pred
                        .next(level)
                        .map(|n| Arc::ptr_eq(&n, node))
                        .unwrap_or(false)
                    && Arc::ptr_eq(&succs[level], node);
                if !valid {
                    break;
                }
            }
            if !valid {
                drop(guards);
                std::hint::spin_loop();
                continue;
            }

            // Stamp the physical unlink with a fresh timestamp so that the
            // version history of each predecessor link stays sorted even if
            // other updates touched it between marking and unlinking.
            let unlink_ts = self.oracle.update_timestamp();
            for level in (0..height).rev() {
                let successor = node.next(level);
                preds[level].set_next(level, successor, unlink_ts, &self.registry);
            }
            return true;
        }
    }

    /// Collect every `(key, value)` pair with `low <= key <= high` as of a
    /// single snapshot timestamp.
    pub fn range(&self, low: &K, high: &K) -> Vec<(K, V)> {
        let ts = self.oracle.snapshot_timestamp();
        let _guard = self.registry.register(ts);

        // Use the newest links to find a starting predecessor, then switch to
        // the versioned level-0 links for the scan itself.  The start node
        // must have been in the list at the snapshot timestamp (otherwise its
        // link history does not cover the snapshot), so fall back towards the
        // head — which is always alive — if the deepest predecessor is too
        // young.  `preds[0]` has the largest key, so the first alive entry is
        // the best starting point.
        let (preds, _, _) = self.find(low);
        let mut start = Arc::clone(&self.head);
        for pred in preds.iter() {
            if pred.alive_at(ts) {
                start = Arc::clone(pred);
                break;
            }
        }

        let mut out = Vec::new();
        let mut node = start;
        loop {
            let next = match node.next0.load_at(ts) {
                Some(next) => next,
                None => break,
            };
            node = next;
            if matches!(node.key, Key::PosInf) {
                break;
            }
            if !node.key.is_at_most(high) {
                break;
            }
            if node.key.is_before(low) {
                continue;
            }
            if node.alive_at(ts) {
                if let (Key::Value(k), Some(v)) = (&node.key, &node.value) {
                    out.push((k.clone(), v.clone()));
                }
            }
        }
        out
    }

    /// Number of present keys (walks level 0; for tests and reporting).
    pub fn len(&self) -> usize {
        let mut count = 0;
        let mut node = self.head.next(0);
        while let Some(n) = node {
            if matches!(n.key, Key::PosInf) {
                break;
            }
            if n.is_present() {
                count += 1;
            }
            node = n.next(0);
        }
        count
    }

    /// True when no key is present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The timestamp mode this list was created with.
    pub fn timestamp_mode(&self) -> TimestampMode {
        self.oracle.mode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type VcasList = VcasSkipList<u64, u64>;
    type BundleList = BundledSkipList<u64, u64>;

    fn fill(list: &VcasList, keys: impl IntoIterator<Item = u64>) {
        for k in keys {
            assert!(list.insert(k, k * 10));
        }
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let list = VcasList::new(12, TimestampMode::Rdtscp);
        assert!(list.is_empty());
        fill(&list, [5, 1, 9]);
        assert_eq!(list.get(&5), Some(50));
        assert!(!list.insert(5, 555), "duplicate insert must fail");
        assert_eq!(list.len(), 3);
        assert!(list.remove(&5));
        assert!(!list.remove(&5));
        assert_eq!(list.get(&5), None);
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn range_reads_a_consistent_snapshot() {
        let list = VcasList::new(12, TimestampMode::Rdtscp);
        fill(&list, 0..100);
        let result = list.range(&10, &20);
        let expected: Vec<(u64, u64)> = (10..=20).map(|k| (k, k * 10)).collect();
        assert_eq!(result, expected);
        assert_eq!(list.range(&200, &300), vec![]);
    }

    #[test]
    fn range_ignores_later_removals_via_versions() {
        let list = VcasList::new(12, TimestampMode::SharedCounter);
        fill(&list, [1, 2, 3]);
        // Take a snapshot implicitly by holding a registry guard: emulate a
        // long-running query by checking that history is retained.
        let ts = list.oracle.snapshot_timestamp();
        let guard = list.registry.register(ts);
        assert!(list.remove(&2));
        // A query at the old snapshot still sees key 2.
        let mut seen = Vec::new();
        let mut node = list.head.next0.load_at(ts);
        while let Some(n) = node {
            if let (Key::Value(k), Some(v)) = (&n.key, &n.value) {
                if n.alive_at(ts) {
                    seen.push((*k, *v));
                }
            }
            node = n.next0.load_at(ts);
        }
        assert_eq!(seen, vec![(1, 10), (2, 20), (3, 30)]);
        drop(guard);
        // A fresh range query no longer sees it.
        assert_eq!(list.range(&1, &3), vec![(1, 10), (3, 30)]);
    }

    #[test]
    fn bundled_variant_behaves_identically() {
        let list = BundleList::new(12, TimestampMode::Rdtscp);
        for k in [4u64, 8, 15, 16, 23, 42] {
            assert!(list.insert(k, k));
        }
        assert!(list.remove(&15));
        assert_eq!(
            list.range(&4, &23),
            vec![(4, 4), (8, 8), (16, 16), (23, 23)]
        );
        assert_eq!(list.len(), 5);
    }

    #[test]
    fn concurrent_updates_and_ranges_stay_consistent() {
        use std::thread;
        let list = Arc::new(VcasList::new(14, TimestampMode::Rdtscp));
        // Pre-fill evens; writers toggle odds; range sums of evens must be
        // stable in every snapshot.
        for k in (0..200u64).step_by(2) {
            assert!(list.insert(k, 1));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let list = Arc::clone(&list);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut present = false;
                while !stop.load(Ordering::Relaxed) {
                    for k in (1..200u64).step_by(2) {
                        if present {
                            list.remove(&k);
                        } else {
                            list.insert(k, 1);
                        }
                    }
                    present = !present;
                }
            })
        };
        for _ in 0..50 {
            let snapshot = list.range(&0, &199);
            let evens = snapshot.iter().filter(|(k, _)| k % 2 == 0).count();
            assert_eq!(evens, 100, "every even key must appear in every snapshot");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
