//! The STM-only baselines from the paper's evaluation.
//!
//! For workloads consisting entirely of elemental operations, the paper also
//! measures a hash map and a doubly linked skip list implemented directly on
//! the STM, without range-query support.  Comparing the skip hash against
//! them isolates the benefit of the composition: the STM skip list shows what
//! `O(log n)` traversals cost, the STM hash map shows the `O(1)` ceiling an
//! unordered structure achieves.

use std::fmt;
use std::sync::Arc;

use skiphash::hashmap::TxHashMap;
use skiphash::skiplist::SkipList;
use skiphash::{MapKey, MapValue};
use skiphash_stm::Stm;

/// An STM-backed hash map without range-query support ("Hash Map (STM)" in
/// the paper's figures).
pub struct StmHashMap<K: MapKey, V: MapValue> {
    stm: Stm,
    map: TxHashMap<K, V>,
}

impl<K: MapKey, V: MapValue> fmt::Debug for StmHashMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StmHashMap").finish()
    }
}

impl<K: MapKey, V: MapValue> StmHashMap<K, V> {
    /// Create a map with `buckets` closed-addressing buckets.
    pub fn new(buckets: usize) -> Self {
        Self {
            stm: Stm::new(),
            map: TxHashMap::new(buckets),
        }
    }

    /// Look up `key`.
    pub fn get(&self, key: &K) -> Option<V> {
        self.stm.run(|tx| self.map.get(tx, key))
    }

    /// Insert `key -> value` if absent; returns `false` when already present.
    /// (Set-style, matching [`TxHashMap::insert`]'s never-overwrites
    /// contract.)
    pub fn insert(&self, key: K, value: V) -> bool {
        self.stm
            .run(|tx| self.map.insert(tx, key.clone(), value.clone()))
    }

    /// Remove `key`; returns `true` if it was present.
    pub fn remove(&self, key: &K) -> bool {
        self.stm.run(|tx| Ok(self.map.remove(tx, key)?.is_some()))
    }

    /// Number of entries (scans all buckets).
    pub fn len(&self) -> usize {
        self.stm.run(|tx| self.map.len(tx))
    }

    /// True when the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An STM-backed doubly linked skip list without hash acceleration and
/// without range-query support ("Skip List (STM)" in the paper's figures).
///
/// Every operation pays the `O(log n)` traversal the skip hash avoids, which
/// is exactly the comparison the paper draws in Figures 5a–5b.
pub struct StmSkipListMap<K: MapKey, V: MapValue> {
    stm: Stm,
    list: Arc<SkipList<K, V>>,
}

impl<K: MapKey, V: MapValue> fmt::Debug for StmSkipListMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StmSkipListMap").finish()
    }
}

impl<K: MapKey, V: MapValue> StmSkipListMap<K, V> {
    /// Create a skip list with `max_level` levels.
    pub fn new(max_level: usize) -> Self {
        Self {
            stm: Stm::new(),
            list: Arc::new(SkipList::new(max_level)),
        }
    }

    /// Look up `key` by skip list traversal (`O(log n)`).
    pub fn get(&self, key: &K) -> Option<V> {
        self.stm.run(|tx| {
            let node = self.list.ceil_present(tx, key)?;
            if !node.is_tail() && node.key() == key {
                Ok(Some(node.read_value(tx)?))
            } else {
                Ok(None)
            }
        })
    }

    /// Insert `key -> value` if absent; returns `false` when already present.
    pub fn insert(&self, key: K, value: V) -> bool {
        let height = {
            let mut rng = rand::thread_rng();
            self.list.random_height(&mut rng)
        };
        self.stm.run(|tx| {
            let existing = self.list.ceil_present(tx, &key)?;
            if !existing.is_tail() && existing.key() == &key {
                return Ok(false);
            }
            self.list
                .insert_after_logical_deletes(tx, key.clone(), value.clone(), height, 0)?;
            Ok(true)
        })
    }

    /// Remove `key`; returns `true` if it was present.
    pub fn remove(&self, key: &K) -> bool {
        self.stm.run(|tx| {
            let node = self.list.ceil_present(tx, key)?;
            if node.is_tail() || node.key() != key {
                return Ok(false);
            }
            self.list.unstitch(tx, &node)?;
            Ok(true)
        })
    }

    /// Number of present keys (walks level 0).
    pub fn len(&self) -> usize {
        self.stm.run(|tx| self.list.count_present(tx))
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: MapKey, V: MapValue> Drop for StmSkipListMap<K, V> {
    fn drop(&mut self) {
        // Break the doubly linked list's Arc cycles.
        self.list.sever_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stm_hashmap_basic_operations() {
        let map: StmHashMap<u64, u64> = StmHashMap::new(64);
        assert!(map.is_empty());
        assert!(map.insert(1, 10));
        assert!(!map.insert(1, 11));
        assert_eq!(map.get(&1), Some(10));
        assert_eq!(map.len(), 1);
        assert!(map.remove(&1));
        assert!(!map.remove(&1));
        assert!(map.is_empty());
    }

    #[test]
    fn stm_skiplist_basic_operations() {
        let map: StmSkipListMap<u64, u64> = StmSkipListMap::new(12);
        assert!(map.is_empty());
        for k in [7u64, 3, 9, 1] {
            assert!(map.insert(k, k * 2));
        }
        assert!(!map.insert(7, 0));
        assert_eq!(map.get(&9), Some(18));
        assert_eq!(map.get(&2), None);
        assert_eq!(map.len(), 4);
        assert!(map.remove(&7));
        assert_eq!(map.get(&7), None);
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn stm_skiplist_concurrent_inserts() {
        use std::thread;
        let map = Arc::new(StmSkipListMap::<u64, u64>::new(14));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let map = Arc::clone(&map);
            handles.push(thread::spawn(move || {
                for i in 0..100u64 {
                    assert!(map.insert(t * 1000 + i, i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(map.len(), 400);
    }
}
