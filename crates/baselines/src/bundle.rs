//! Bundled references in the style of Nelson-Slivon et al.
//!
//! A *bundle* augments a link with a chain of `(timestamp, target)` entries,
//! newest first.  Elemental operations dereference the newest entry; a range
//! query at snapshot timestamp `ts` walks the chain from the newest entry to
//! the first one whose timestamp is at or before `ts` and follows that
//! target.  Stale entries — those older than the oldest in-flight range query
//! — are pruned as new entries are added, mirroring the original's
//! reclamation of bundle entries.
//!
//! Compared with [`crate::VcasLink`] the externally visible behaviour is the
//! same (both implement [`VersionedLink`]); the representation differs in the
//! same way the two papers differ: vCAS keeps an indirection to a version
//! list, bundling keeps an inline chain of entries attached to the link.

use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::ordered::{SnapshotRegistry, VersionedLink};

struct BundleEntry<T> {
    timestamp: u64,
    target: T,
    older: Option<Arc<BundleEntry<T>>>,
}

/// A link augmented with a bundle of timestamped entries.
pub struct BundleLink<T> {
    newest: RwLock<Arc<BundleEntry<T>>>,
}

impl<T> fmt::Debug for BundleLink<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries = 1;
        let mut cursor = Arc::clone(&*self.newest.read());
        while let Some(older) = &cursor.older {
            entries += 1;
            let next = Arc::clone(older);
            cursor = next;
        }
        f.debug_struct("BundleLink")
            .field("entries", &entries)
            .finish()
    }
}

impl<T: Clone + Send + Sync> VersionedLink<T> for BundleLink<T> {
    fn with_initial(value: T) -> Self {
        Self {
            newest: RwLock::new(Arc::new(BundleEntry {
                timestamp: 0,
                target: value,
                older: None,
            })),
        }
    }

    fn load_latest(&self) -> T {
        self.newest.read().target.clone()
    }

    fn load_at(&self, ts: u64) -> T {
        let mut entry = Arc::clone(&*self.newest.read());
        loop {
            if entry.timestamp <= ts {
                return entry.target.clone();
            }
            match &entry.older {
                Some(older) => {
                    let next = Arc::clone(older);
                    entry = next;
                }
                // Nothing old enough survives: the initial entry (timestamp
                // 0) is only pruned once no snapshot can need it, so this
                // fallback returns the oldest retained view.
                None => return entry.target.clone(),
            }
        }
    }

    fn store(&self, value: T, ts: u64, registry: &SnapshotRegistry) {
        let mut newest = self.newest.write();
        let entry = Arc::new(BundleEntry {
            timestamp: ts,
            target: value,
            older: Some(Arc::clone(&*newest)),
        });
        *newest = entry;
        // Prune entries older than the oldest active snapshot: walk the chain
        // and cut it after the first entry at or before the horizon.
        let horizon = registry.min_active().unwrap_or(u64::MAX);
        let mut cursor = Arc::clone(&*newest);
        loop {
            if cursor.timestamp <= horizon {
                // Everything older than `cursor` is unreachable by any
                // current or future snapshot; drop the tail.
                // SAFETY-free: we only mutate through the write lock we hold,
                // and `BundleEntry::older` is never written after publication
                // except by this pruning, which requires the same lock.
                break;
            }
            match &cursor.older {
                Some(older) => {
                    let next = Arc::clone(older);
                    cursor = next;
                }
                None => break,
            }
        }
        // Rebuild the retained prefix without the tail beyond `cursor`.
        if cursor.older.is_some() {
            let mut retained: Vec<(u64, T)> = Vec::new();
            let mut walk = Arc::clone(&*newest);
            loop {
                retained.push((walk.timestamp, walk.target.clone()));
                if Arc::ptr_eq(&walk, &cursor) {
                    break;
                }
                match &walk.older {
                    Some(older) => {
                        let next = Arc::clone(older);
                        walk = next;
                    }
                    None => break,
                }
            }
            let mut rebuilt: Option<Arc<BundleEntry<T>>> = None;
            for (timestamp, target) in retained.into_iter().rev() {
                rebuilt = Some(Arc::new(BundleEntry {
                    timestamp,
                    target,
                    older: rebuilt,
                }));
            }
            *newest = rebuilt.expect("retained prefix is never empty");
        }
    }

    fn history_len(&self) -> usize {
        let mut count = 1;
        let mut entry = Arc::clone(&*self.newest.read());
        while let Some(older) = &entry.older {
            count += 1;
            let next = Arc::clone(older);
            entry = next;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_at_walks_back_to_the_right_entry() {
        let registry = Arc::new(SnapshotRegistry::new());
        let link = BundleLink::with_initial(0u64);
        let keeper = registry.register(1);
        link.store(10, 5, &registry);
        link.store(20, 9, &registry);
        assert_eq!(link.load_latest(), 20);
        assert_eq!(link.load_at(4), 0);
        assert_eq!(link.load_at(5), 10);
        assert_eq!(link.load_at(9), 20);
        drop(keeper);
    }

    #[test]
    fn entries_are_pruned_without_active_snapshots() {
        let registry = Arc::new(SnapshotRegistry::new());
        let link = BundleLink::with_initial(0u64);
        for i in 1..50u64 {
            link.store(i, i, &registry);
        }
        assert_eq!(link.history_len(), 1);
        assert_eq!(link.load_latest(), 49);
    }

    #[test]
    fn entries_survive_while_a_snapshot_needs_them() {
        let registry = Arc::new(SnapshotRegistry::new());
        let link = BundleLink::with_initial(0u64);
        link.store(1, 10, &registry);
        let guard = registry.register(12);
        link.store(2, 20, &registry);
        link.store(3, 30, &registry);
        assert_eq!(link.load_at(12), 1);
        assert!(link.history_len() >= 3);
        drop(guard);
        link.store(4, 40, &registry);
        assert_eq!(link.history_len(), 1);
    }
}
