//! Workload definitions matching the paper's evaluation section.

use std::fmt;

use rand::distributions::{Distribution, Uniform};
use rand::rngs::SmallRng;
use rand::Rng;

/// The operation mix of one workload, in percent.  Update operations are
/// split evenly between insertions and removals (as in the paper) so the
/// population stays near half the key universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadMix {
    /// Percentage of lookups.
    pub lookup_pct: u32,
    /// Percentage of updates (50/50 insert/remove).
    pub update_pct: u32,
    /// Percentage of range queries.
    pub range_pct: u32,
}

impl WorkloadMix {
    /// Create a mix; the three percentages must sum to 100.
    ///
    /// # Panics
    ///
    /// Panics if they do not.
    pub fn new(lookup_pct: u32, update_pct: u32, range_pct: u32) -> Self {
        assert_eq!(
            lookup_pct + update_pct + range_pct,
            100,
            "operation mix must sum to 100%"
        );
        Self {
            lookup_pct,
            update_pct,
            range_pct,
        }
    }
}

impl fmt::Display for WorkloadMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}% lookup, {}% update, {}% range",
            self.lookup_pct, self.update_pct, self.range_pct
        )
    }
}

/// A complete workload: operation mix plus the key universe and range length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Short identifier ("a".."f" for the Figure 5 workloads).
    pub name: &'static str,
    /// The operation mix.
    pub mix: WorkloadMix,
    /// Size of the key universe; keys are drawn uniformly from `0..universe`.
    pub key_universe: u64,
    /// Length of each range query (`r = l + range_len`).
    pub range_len: u64,
}

impl Workload {
    /// The paper's default key universe (10^6 keys).
    pub const PAPER_UNIVERSE: u64 = 1_000_000;
    /// The paper's default range query length (100 keys, ~50 hits).
    pub const PAPER_RANGE_LEN: u64 = 100;

    /// Figure 5a: 100% lookup.
    pub fn fig5a(universe: u64) -> Self {
        Self {
            name: "a",
            mix: WorkloadMix::new(100, 0, 0),
            key_universe: universe,
            range_len: Self::PAPER_RANGE_LEN,
        }
    }

    /// Figure 5b: 100% update.
    pub fn fig5b(universe: u64) -> Self {
        Self {
            name: "b",
            mix: WorkloadMix::new(0, 100, 0),
            key_universe: universe,
            range_len: Self::PAPER_RANGE_LEN,
        }
    }

    /// Figure 5c: 100% range queries.
    pub fn fig5c(universe: u64) -> Self {
        Self {
            name: "c",
            mix: WorkloadMix::new(0, 0, 100),
            key_universe: universe,
            range_len: Self::PAPER_RANGE_LEN,
        }
    }

    /// Figure 5d: 80% lookup, 10% update, 10% range.
    pub fn fig5d(universe: u64) -> Self {
        Self {
            name: "d",
            mix: WorkloadMix::new(80, 10, 10),
            key_universe: universe,
            range_len: Self::PAPER_RANGE_LEN,
        }
    }

    /// Figure 5e: 80% update, 20% range.
    pub fn fig5e(universe: u64) -> Self {
        Self {
            name: "e",
            mix: WorkloadMix::new(0, 80, 20),
            key_universe: universe,
            range_len: Self::PAPER_RANGE_LEN,
        }
    }

    /// Figure 5f: 1% lookup, 98% update, 1% range.
    pub fn fig5f(universe: u64) -> Self {
        Self {
            name: "f",
            mix: WorkloadMix::new(1, 98, 1),
            key_universe: universe,
            range_len: Self::PAPER_RANGE_LEN,
        }
    }

    /// The six Figure 5 workloads in order.
    pub fn fig5_all(universe: u64) -> Vec<Workload> {
        vec![
            Self::fig5a(universe),
            Self::fig5b(universe),
            Self::fig5c(universe),
            Self::fig5d(universe),
            Self::fig5e(universe),
            Self::fig5f(universe),
        ]
    }

    /// Look up a Figure 5 workload by its letter.
    pub fn fig5_by_name(name: &str, universe: u64) -> Option<Workload> {
        Self::fig5_all(universe)
            .into_iter()
            .find(|w| w.name == name)
    }

    /// A custom workload (used by Figure 6 and Table 1 drivers).
    pub fn custom(name: &'static str, mix: WorkloadMix, universe: u64, range_len: u64) -> Self {
        Self {
            name,
            mix,
            key_universe: universe,
            range_len,
        }
    }

    /// Target pre-fill population (half the universe, as in the paper).
    pub fn prefill_target(&self) -> u64 {
        self.key_universe / 2
    }
}

/// Operation mix for the multi-map *transfer* scenario, in percent.
///
/// This workload class exists because the single-map mixes above cannot
/// express composed transactions; see [`crate::transfer`] for the scenario's
/// operations (atomic cross-map transfer, atomic both-map audit, sealed
/// lookup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferMix {
    /// Percentage of atomic cross-map transfers.
    pub transfer_pct: u32,
    /// Percentage of atomic both-map audits.
    pub audit_pct: u32,
    /// Percentage of sealed single-map lookups.
    pub lookup_pct: u32,
}

impl TransferMix {
    /// Create a mix; the three percentages must sum to 100.
    ///
    /// # Panics
    ///
    /// Panics if they do not.
    pub fn new(transfer_pct: u32, audit_pct: u32, lookup_pct: u32) -> Self {
        assert_eq!(
            transfer_pct + audit_pct + lookup_pct,
            100,
            "transfer mix must sum to 100%"
        );
        Self {
            transfer_pct,
            audit_pct,
            lookup_pct,
        }
    }
}

impl fmt::Display for TransferMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}% transfer, {}% audit, {}% lookup",
            self.transfer_pct, self.audit_pct, self.lookup_pct
        )
    }
}

/// The complete transfer workload: mix plus key universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferWorkload {
    /// Short identifier.
    pub name: &'static str,
    /// The operation mix.
    pub mix: TransferMix,
    /// Keys are drawn uniformly from `0..universe`; the pair is pre-filled
    /// with `universe / 2` keys, all initially in the left map.
    pub key_universe: u64,
}

impl TransferWorkload {
    /// Transfer-heavy default: 50% transfers, 25% audits, 25% lookups.
    pub fn transfer_heavy(universe: u64) -> Self {
        Self {
            name: "transfer-heavy",
            mix: TransferMix::new(50, 25, 25),
            key_universe: universe,
        }
    }

    /// Audit-heavy variant: 10% transfers, 60% audits, 30% lookups.
    pub fn audit_heavy(universe: u64) -> Self {
        Self {
            name: "audit-heavy",
            mix: TransferMix::new(10, 60, 30),
            key_universe: universe,
        }
    }

    /// Target pre-fill population (half the universe, as in the single-map
    /// workloads).
    pub fn prefill_target(&self) -> u64 {
        self.key_universe / 2
    }
}

/// One sampled transfer-scenario operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOperation {
    /// Atomically move the key to the other map.
    Transfer(u64),
    /// Atomically read the key's membership in both maps.
    Audit(u64),
    /// Sealed lookup of the key in the left map.
    Lookup(u64),
}

/// Per-thread sampler for the transfer scenario.
#[derive(Debug)]
pub struct TransferSampler {
    mix: TransferMix,
    key_dist: Uniform<u64>,
    pct_dist: Uniform<u32>,
}

impl TransferSampler {
    /// Create a sampler for `workload`.
    pub fn new(workload: &TransferWorkload) -> Self {
        Self {
            mix: workload.mix,
            key_dist: Uniform::new(0, workload.key_universe),
            pct_dist: Uniform::new(0, 100),
        }
    }

    /// Draw the next operation.
    pub fn next(&self, rng: &mut SmallRng) -> TransferOperation {
        let key = self.key_dist.sample(rng);
        let roll = self.pct_dist.sample(rng);
        if roll < self.mix.transfer_pct {
            TransferOperation::Transfer(key)
        } else if roll < self.mix.transfer_pct + self.mix.audit_pct {
            TransferOperation::Audit(key)
        } else {
            TransferOperation::Lookup(key)
        }
    }
}

/// One sampled operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Look up the key.
    Lookup(u64),
    /// Insert the key.
    Insert(u64),
    /// Remove the key.
    Remove(u64),
    /// Range query over `[low, low + range_len]`.
    Range(u64),
}

/// Per-thread operation sampler.
#[derive(Debug)]
pub struct OperationSampler {
    mix: WorkloadMix,
    range_len: u64,
    key_dist: Uniform<u64>,
    pct_dist: Uniform<u32>,
}

impl OperationSampler {
    /// Create a sampler for `workload`.
    pub fn new(workload: &Workload) -> Self {
        Self {
            mix: workload.mix,
            range_len: workload.range_len,
            key_dist: Uniform::new(0, workload.key_universe),
            pct_dist: Uniform::new(0, 100),
        }
    }

    /// Draw the next operation.
    pub fn next(&self, rng: &mut SmallRng) -> Operation {
        let key = self.key_dist.sample(rng);
        let roll = self.pct_dist.sample(rng);
        if roll < self.mix.lookup_pct {
            Operation::Lookup(key)
        } else if roll < self.mix.lookup_pct + self.mix.update_pct {
            if rng.gen::<bool>() {
                Operation::Insert(key)
            } else {
                Operation::Remove(key)
            }
        } else {
            Operation::Range(key)
        }
    }

    /// The range length used for [`Operation::Range`].
    pub fn range_len(&self) -> u64 {
        self.range_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fig5_mixes_match_the_paper() {
        let u = Workload::PAPER_UNIVERSE;
        assert_eq!(Workload::fig5a(u).mix, WorkloadMix::new(100, 0, 0));
        assert_eq!(Workload::fig5b(u).mix, WorkloadMix::new(0, 100, 0));
        assert_eq!(Workload::fig5c(u).mix, WorkloadMix::new(0, 0, 100));
        assert_eq!(Workload::fig5d(u).mix, WorkloadMix::new(80, 10, 10));
        assert_eq!(Workload::fig5e(u).mix, WorkloadMix::new(0, 80, 20));
        assert_eq!(Workload::fig5f(u).mix, WorkloadMix::new(1, 98, 1));
        assert_eq!(Workload::fig5_all(u).len(), 6);
        assert_eq!(Workload::fig5_by_name("d", u).unwrap().name, "d");
        assert!(Workload::fig5_by_name("z", u).is_none());
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_panics() {
        let _ = WorkloadMix::new(50, 10, 10);
    }

    #[test]
    fn sampler_respects_the_mix() {
        let workload = Workload::fig5d(10_000);
        let sampler = OperationSampler::new(&workload);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut lookups = 0;
        let mut updates = 0;
        let mut ranges = 0;
        let trials = 100_000;
        for _ in 0..trials {
            match sampler.next(&mut rng) {
                Operation::Lookup(_) => lookups += 1,
                Operation::Insert(_) | Operation::Remove(_) => updates += 1,
                Operation::Range(_) => ranges += 1,
            }
        }
        let lookup_frac = lookups as f64 / trials as f64;
        let update_frac = updates as f64 / trials as f64;
        let range_frac = ranges as f64 / trials as f64;
        assert!((lookup_frac - 0.8).abs() < 0.02, "lookups {lookup_frac}");
        assert!((update_frac - 0.1).abs() < 0.02, "updates {update_frac}");
        assert!((range_frac - 0.1).abs() < 0.02, "ranges {range_frac}");
    }

    #[test]
    fn sampled_keys_stay_in_the_universe() {
        let workload = Workload::fig5b(1_000);
        let sampler = OperationSampler::new(&workload);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let key = match sampler.next(&mut rng) {
                Operation::Lookup(k)
                | Operation::Insert(k)
                | Operation::Remove(k)
                | Operation::Range(k) => k,
            };
            assert!(key < 1_000);
        }
    }

    #[test]
    fn prefill_is_half_the_universe() {
        assert_eq!(Workload::fig5a(1_000_000).prefill_target(), 500_000);
        assert_eq!(Workload::PAPER_RANGE_LEN, 100);
    }

    #[test]
    fn transfer_sampler_respects_the_mix() {
        let workload = TransferWorkload::transfer_heavy(10_000);
        assert_eq!(workload.prefill_target(), 5_000);
        let sampler = TransferSampler::new(&workload);
        let mut rng = SmallRng::seed_from_u64(9);
        let (mut transfers, mut audits, mut lookups) = (0u32, 0u32, 0u32);
        let trials = 100_000;
        for _ in 0..trials {
            match sampler.next(&mut rng) {
                TransferOperation::Transfer(k) => {
                    assert!(k < 10_000);
                    transfers += 1;
                }
                TransferOperation::Audit(_) => audits += 1,
                TransferOperation::Lookup(_) => lookups += 1,
            }
        }
        let frac = |n: u32| n as f64 / trials as f64;
        assert!((frac(transfers) - 0.5).abs() < 0.02);
        assert!((frac(audits) - 0.25).abs() < 0.02);
        assert!((frac(lookups) - 0.25).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_transfer_mix_panics() {
        let _ = TransferMix::new(50, 10, 10);
    }
}
