//! Microbenchmark harness reproducing the skip hash paper's evaluation.
//!
//! The paper drives every map through the same framework: worker threads
//! repeatedly pick an operation (lookup / insert / remove / range query)
//! according to the workload's mix, keys are drawn uniformly from a fixed
//! universe, the map is pre-filled to half the universe, and throughput is
//! reported in operations per second.  This crate provides:
//!
//! * [`adapters`] — a common [`BenchMap`] trait and
//!   adapters for the skip hash (fast-only / slow-only / two-path) and every
//!   baseline;
//! * [`workload`] — the operation mixes of Figures 5a–5f and the
//!   parameterized workloads of Figure 6 and Table 1;
//! * [`driver`] — thread spawning, pre-fill, timed trials, and statistics
//!   collection;
//! * [`transfer`] — the multi-map composed-transaction scenario (atomic
//!   cross-map transfers via `TxView`), which the single-map trait cannot
//!   express;
//! * [`snapshot_scan`] — the scans-vs-writers scenario: pinned MVCC snapshot
//!   scans auditing a conservation invariant while transfer writers commit
//!   concurrently;
//! * [`durability`] — the durable-writers scenario: logged commits with a
//!   configurable fraction waiting on the group-commit fsync, reporting
//!   acknowledgment latency quantiles;
//! * [`report`] — plain-text and CSV emitters shaped like the paper's figures
//!   and tables.

#![warn(missing_docs)]

pub mod adapters;
pub mod driver;
pub mod durability;
pub mod report;
pub mod snapshot_scan;
pub mod transfer;
pub mod workload;

pub use adapters::{BenchMap, MapKind};
pub use driver::{
    run_mixed_trial, run_split_trial, run_transfer_trial, MixedTrialResult, SplitTrialResult,
    TransferTrialResult,
};
pub use durability::{run_durable_trial, DurableTrialResult};
pub use snapshot_scan::{
    prefill_accounts, run_bundle_scan_trial, run_snapshot_scan_trial, SnapshotScanTrialResult,
};
pub use transfer::TransferPair;
pub use workload::{TransferMix, TransferWorkload, Workload, WorkloadMix};
