//! Trial execution: pre-fill, thread spawning, timing, and aggregation.

use skiphash_stm::sync::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::adapters::BenchMap;
use crate::transfer::TransferPair;
use crate::workload::{
    Operation, OperationSampler, TransferOperation, TransferSampler, TransferWorkload, Workload,
};

/// Result of one mixed-workload trial (all threads run the same mix).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MixedTrialResult {
    /// Total operations completed by all threads.
    pub total_ops: u64,
    /// Lookups completed.
    pub lookups: u64,
    /// Updates (insertions + removals) completed.
    pub updates: u64,
    /// Range queries completed.
    pub ranges: u64,
    /// Key/value pairs returned by range queries.
    pub range_pairs: u64,
    /// Wall-clock duration of the measured phase, in seconds.
    pub elapsed_secs: f64,
}

impl MixedTrialResult {
    /// Throughput in millions of operations per second (the y-axis of the
    /// paper's Figure 5).
    pub fn mops(&self) -> f64 {
        if self.elapsed_secs == 0.0 {
            0.0
        } else {
            self.total_ops as f64 / self.elapsed_secs / 1e6
        }
    }
}

/// Result of one split trial (dedicated update threads and range threads, as
/// in the paper's Figure 6).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SplitTrialResult {
    /// Updates completed by the update threads.
    pub update_ops: u64,
    /// Range queries completed by the range threads.
    pub range_ops: u64,
    /// Key/value pairs processed by the range threads.
    pub range_pairs: u64,
    /// Wall-clock duration of the measured phase, in seconds.
    pub elapsed_secs: f64,
}

impl SplitTrialResult {
    /// Update throughput in millions of operations per second (Figure 6,
    /// top).
    pub fn update_mops(&self) -> f64 {
        if self.elapsed_secs == 0.0 {
            0.0
        } else {
            self.update_ops as f64 / self.elapsed_secs / 1e6
        }
    }

    /// Range throughput in millions of *pairs processed* per second (Figure
    /// 6, bottom).
    pub fn range_pairs_mops(&self) -> f64 {
        if self.elapsed_secs == 0.0 {
            0.0
        } else {
            self.range_pairs as f64 / self.elapsed_secs / 1e6
        }
    }
}

/// Pre-fill `map` with `target` keys drawn uniformly from the workload's key
/// universe (the paper fills half the universe before every experiment).
pub fn prefill(map: &Arc<dyn BenchMap>, workload: &Workload, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let target = workload.prefill_target();
    let mut inserted = 0;
    while inserted < target {
        let key = rng.gen_range(0..workload.key_universe);
        if map.insert(key, key.wrapping_mul(31)) {
            inserted += 1;
        }
    }
}

fn run_worker(
    map: Arc<dyn BenchMap>,
    workload: Workload,
    stop: Arc<AtomicBool>,
    seed: u64,
) -> MixedTrialResult {
    let sampler = OperationSampler::new(&workload);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut result = MixedTrialResult::default();
    let mut buffer: Vec<(u64, u64)> = Vec::with_capacity(workload.range_len as usize + 16);
    while !stop.load(Ordering::Relaxed) {
        match sampler.next(&mut rng) {
            Operation::Lookup(key) => {
                let _ = map.get(key);
                result.lookups += 1;
            }
            Operation::Insert(key) => {
                let _ = map.insert(key, key.wrapping_mul(31));
                result.updates += 1;
            }
            Operation::Remove(key) => {
                let _ = map.remove(key);
                result.updates += 1;
            }
            Operation::Range(low) => {
                let bounds = (
                    std::ops::Bound::Included(low),
                    std::ops::Bound::Included(low + sampler.range_len()),
                );
                if let Some(found) = map.range(bounds, &mut buffer) {
                    result.range_pairs += found as u64;
                }
                result.ranges += 1;
            }
        }
        result.total_ops += 1;
    }
    result
}

/// Run a single timed trial in which every thread executes the same mixed
/// workload (Figure 5 style).  The map must already be pre-filled.
pub fn run_mixed_trial(
    map: &Arc<dyn BenchMap>,
    workload: &Workload,
    threads: usize,
    duration: Duration,
    seed: u64,
) -> MixedTrialResult {
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let map = Arc::clone(map);
            let workload = *workload;
            let stop = Arc::clone(&stop);
            thread::spawn(move || run_worker(map, workload, stop, seed ^ ((t as u64 + 1) * 0x9E37)))
        })
        .collect();
    thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let mut total = MixedTrialResult::default();
    for handle in handles {
        let partial = handle.join().expect("worker thread panicked");
        total.total_ops += partial.total_ops;
        total.lookups += partial.lookups;
        total.updates += partial.updates;
        total.ranges += partial.ranges;
        total.range_pairs += partial.range_pairs;
    }
    total.elapsed_secs = started.elapsed().as_secs_f64();
    total
}

/// Run a split trial: `update_threads` run a 100%-update workload while
/// `range_threads` run a 100%-range workload with ranges of `range_len`
/// (Figure 6 style).  The map must already be pre-filled.
pub fn run_split_trial(
    map: &Arc<dyn BenchMap>,
    key_universe: u64,
    range_len: u64,
    update_threads: usize,
    range_threads: usize,
    duration: Duration,
    seed: u64,
) -> SplitTrialResult {
    let stop = Arc::new(AtomicBool::new(false));
    let update_workload = Workload::custom(
        "fig6-update",
        crate::workload::WorkloadMix::new(0, 100, 0),
        key_universe,
        range_len,
    );
    let range_workload = Workload::custom(
        "fig6-range",
        crate::workload::WorkloadMix::new(0, 0, 100),
        key_universe,
        range_len,
    );
    let started = Instant::now();
    let mut update_handles = Vec::new();
    for t in 0..update_threads {
        let map = Arc::clone(map);
        let stop = Arc::clone(&stop);
        update_handles.push(thread::spawn(move || {
            run_worker(map, update_workload, stop, seed ^ ((t as u64 + 1) * 0xA5A5))
        }));
    }
    let mut range_handles = Vec::new();
    for t in 0..range_threads {
        let map = Arc::clone(map);
        let stop = Arc::clone(&stop);
        range_handles.push(thread::spawn(move || {
            run_worker(
                map,
                range_workload,
                stop,
                seed ^ ((t as u64 + 101) * 0x5A5A),
            )
        }));
    }
    thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let mut result = SplitTrialResult::default();
    for handle in update_handles {
        let partial = handle.join().expect("update worker panicked");
        result.update_ops += partial.updates;
    }
    for handle in range_handles {
        let partial = handle.join().expect("range worker panicked");
        result.range_ops += partial.ranges;
        result.range_pairs += partial.range_pairs;
    }
    result.elapsed_secs = started.elapsed().as_secs_f64();
    result
}

/// Result of one transfer-scenario trial (composed multi-map transactions).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransferTrialResult {
    /// Total operations completed by all threads.
    pub total_ops: u64,
    /// Atomic cross-map transfers completed (moves actually performed).
    pub transfers: u64,
    /// Transfer attempts that found the key in neither map (sampled keys
    /// above the pre-filled population).
    pub empty_transfers: u64,
    /// Atomic both-map audits completed.
    pub audits: u64,
    /// Audits that observed the key in *both* maps — must stay zero; composed
    /// transactions make intermediate states unobservable.
    pub audit_violations: u64,
    /// Sealed lookups completed.
    pub lookups: u64,
    /// Wall-clock duration of the measured phase, in seconds.
    pub elapsed_secs: f64,
}

impl TransferTrialResult {
    /// Throughput in millions of operations per second.
    pub fn mops(&self) -> f64 {
        if self.elapsed_secs == 0.0 {
            0.0
        } else {
            self.total_ops as f64 / self.elapsed_secs / 1e6
        }
    }
}

/// Run a timed transfer-scenario trial: every thread samples transfers,
/// audits, and lookups from the workload's mix against one shared
/// [`TransferPair`].  The pair must already be pre-filled.
pub fn run_transfer_trial(
    pair: &Arc<TransferPair>,
    workload: &TransferWorkload,
    threads: usize,
    duration: Duration,
    seed: u64,
) -> TransferTrialResult {
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let pair = Arc::clone(pair);
            let workload = *workload;
            let stop = Arc::clone(&stop);
            let seed = seed ^ ((t as u64 + 1) * 0x51_7C);
            thread::spawn(move || {
                let sampler = TransferSampler::new(&workload);
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut result = TransferTrialResult::default();
                while !stop.load(Ordering::Relaxed) {
                    match sampler.next(&mut rng) {
                        TransferOperation::Transfer(key) => {
                            if pair.transfer(key) {
                                result.transfers += 1;
                            } else {
                                result.empty_transfers += 1;
                            }
                        }
                        TransferOperation::Audit(key) => {
                            let (in_left, in_right) = pair.audit(key);
                            if in_left && in_right {
                                result.audit_violations += 1;
                            }
                            result.audits += 1;
                        }
                        TransferOperation::Lookup(key) => {
                            let _ = pair.lookup(key);
                            result.lookups += 1;
                        }
                    }
                    result.total_ops += 1;
                }
                result
            })
        })
        .collect();
    thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let mut total = TransferTrialResult::default();
    for handle in handles {
        let partial = handle.join().expect("transfer worker panicked");
        total.total_ops += partial.total_ops;
        total.transfers += partial.transfers;
        total.empty_transfers += partial.empty_transfers;
        total.audits += partial.audits;
        total.audit_violations += partial.audit_violations;
        total.lookups += partial.lookups;
    }
    total.elapsed_secs = started.elapsed().as_secs_f64();
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::MapKind;

    #[test]
    fn prefill_reaches_the_target_population() {
        let workload = Workload::fig5a(2_000);
        let map = MapKind::SkipHashTwoPath.build(workload.key_universe);
        prefill(&map, &workload, 1);
        assert_eq!(map.population(), workload.prefill_target() as usize);
    }

    #[test]
    fn mixed_trial_reports_consistent_totals() {
        let workload = Workload::fig5d(2_000);
        let map = MapKind::SkipHashTwoPath.build(workload.key_universe);
        prefill(&map, &workload, 1);
        let result = run_mixed_trial(&map, &workload, 2, Duration::from_millis(100), 7);
        assert!(result.total_ops > 0);
        assert_eq!(
            result.total_ops,
            result.lookups + result.updates + result.ranges
        );
        assert!(result.mops() > 0.0);
        assert!(result.elapsed_secs >= 0.1);
    }

    #[test]
    fn transfer_trial_conserves_keys_and_sees_no_violations() {
        let workload = TransferWorkload::transfer_heavy(2_000);
        let pair = Arc::new(TransferPair::new(workload.key_universe));
        pair.prefill(workload.prefill_target());
        let result = run_transfer_trial(&pair, &workload, 4, Duration::from_millis(150), 5);
        assert!(result.total_ops > 0);
        assert!(result.transfers > 0);
        assert!(result.audits > 0);
        assert_eq!(
            result.total_ops,
            result.transfers + result.empty_transfers + result.audits + result.lookups
        );
        assert_eq!(
            result.audit_violations, 0,
            "an audit observed a key in both maps"
        );
        assert!(result.mops() > 0.0);
        // Conservation: transfers move keys, never duplicate or drop them.
        assert_eq!(
            pair.total_population(),
            workload.prefill_target() as usize,
            "transfer trial leaked or duplicated keys"
        );
        pair.check_invariants().expect("invariants after trial");
    }

    #[test]
    fn split_trial_counts_both_sides() {
        let map = MapKind::SkipHashTwoPath.build(2_000);
        let workload = Workload::fig5b(2_000);
        prefill(&map, &workload, 3);
        let result = run_split_trial(&map, 2_000, 64, 1, 1, Duration::from_millis(100), 11);
        assert!(result.update_ops > 0);
        assert!(result.range_ops > 0);
        assert!(result.range_pairs > 0);
        assert!(result.update_mops() > 0.0);
        assert!(result.range_pairs_mops() > 0.0);
    }
}
