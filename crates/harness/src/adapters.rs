//! Adapters wiring every evaluated map behind one benchmark-facing trait.

use std::fmt;
use std::ops::Bound;
use std::sync::Arc;

use skiphash::{RangePolicy, SkipHash, SkipHashBuilder};
use skiphash_baselines::skiplist::{BundledSkipList, VcasSkipList};
use skiphash_baselines::stm_maps::{StmHashMap, StmSkipListMap};
use skiphash_baselines::timestamp::TimestampMode;
use skiphash_baselines::VcasBst;

/// A pair of std-style range bounds over `u64` keys, the dyn-safe spelling of
/// `impl RangeBounds<u64>` (a `(Bound, Bound)` tuple itself implements
/// `RangeBounds`, so it forwards to [`SkipHash::range`] unchanged).
pub type KeyBounds = (Bound<u64>, Bound<u64>);

/// Convert std-style bounds to the inclusive `[low, high]` pair the baseline
/// implementations take; `None` when no key can satisfy the bounds.
pub fn bounds_to_inclusive(bounds: KeyBounds) -> Option<(u64, u64)> {
    let low = match bounds.0 {
        Bound::Unbounded => 0,
        Bound::Included(low) => low,
        Bound::Excluded(low) => low.checked_add(1)?,
    };
    let high = match bounds.1 {
        Bound::Unbounded => u64::MAX,
        Bound::Included(high) => high,
        Bound::Excluded(high) => high.checked_sub(1)?,
    };
    (low <= high).then_some((low, high))
}

/// The interface the benchmark driver uses for every evaluated map.
///
/// Keys and values are `u64`, as in the paper's evaluation.
pub trait BenchMap: Send + Sync {
    /// Look up a key.
    fn get(&self, key: u64) -> Option<u64>;
    /// Insert a key/value pair; `false` if the key was already present.
    fn insert(&self, key: u64, value: u64) -> bool;
    /// Remove a key; `false` if it was absent.
    fn remove(&self, key: u64) -> bool;
    /// Collect all pairs whose keys satisfy `bounds` into `buffer` (cleared
    /// first) and return how many were found.  Maps that do not support range
    /// queries return `None`.
    fn range(&self, bounds: KeyBounds, buffer: &mut Vec<(u64, u64)>) -> Option<usize>;
    /// True if the map supports linearizable range queries.
    fn supports_range(&self) -> bool {
        true
    }
    /// Aborted fast-path attempts per successful fast-path range query, when
    /// the map tracks it (skip hash only).
    fn fast_path_aborts_per_success(&self) -> Option<f64> {
        None
    }
    /// Number of keys currently present (used to verify pre-fill).
    fn population(&self) -> usize;
}

/// Which map implementation to benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapKind {
    /// Skip hash, range queries always on the fast path.
    SkipHashFastOnly,
    /// Skip hash, range queries always on the slow path.
    SkipHashSlowOnly,
    /// Skip hash, fast path with slow-path fallback (the default, 3 tries).
    SkipHashTwoPath,
    /// External BST with vCAS snapshots (rdtscp timestamps).
    VcasBst,
    /// Skip list with vCAS snapshots (rdtscp timestamps).
    VcasSkipList,
    /// Skip list with bundled references (rdtscp timestamps).
    BundledSkipList,
    /// STM skip list without range-query support.
    StmSkipList,
    /// STM hash map without range-query support (and without ordered
    /// operations).
    StmHashMap,
}

impl MapKind {
    /// All map kinds, in the order the paper's legends list them.
    pub fn all() -> &'static [MapKind] {
        &[
            MapKind::SkipHashFastOnly,
            MapKind::SkipHashSlowOnly,
            MapKind::SkipHashTwoPath,
            MapKind::VcasBst,
            MapKind::VcasSkipList,
            MapKind::BundledSkipList,
            MapKind::StmSkipList,
            MapKind::StmHashMap,
        ]
    }

    /// The maps that support range queries (used by range-heavy workloads).
    pub fn range_capable() -> &'static [MapKind] {
        &[
            MapKind::SkipHashFastOnly,
            MapKind::SkipHashSlowOnly,
            MapKind::SkipHashTwoPath,
            MapKind::VcasBst,
            MapKind::VcasSkipList,
            MapKind::BundledSkipList,
        ]
    }

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            MapKind::SkipHashFastOnly => "Skip-hash (Fast Only)",
            MapKind::SkipHashSlowOnly => "Skip-hash (Slow Only)",
            MapKind::SkipHashTwoPath => "Skip-hash (Two-Path)",
            MapKind::VcasBst => "BST (vCAS, RDTSCP)",
            MapKind::VcasSkipList => "Skip list (vCAS, RDTSCP)",
            MapKind::BundledSkipList => "Skip list (Bundled, RDTSCP)",
            MapKind::StmSkipList => "Skip List (STM)",
            MapKind::StmHashMap => "Hash Map (STM)",
        }
    }

    /// Construct the map, sized for a key universe of `key_universe` keys of
    /// which roughly half will be present.
    pub fn build(&self, key_universe: u64) -> Arc<dyn BenchMap> {
        let buckets = bucket_count_for(key_universe);
        let levels = level_count_for(key_universe);
        match self {
            MapKind::SkipHashFastOnly => Arc::new(SkipHashAdapter::new(skiphash_with(
                buckets,
                levels,
                RangePolicy::FastOnly,
            ))),
            MapKind::SkipHashSlowOnly => Arc::new(SkipHashAdapter::new(skiphash_with(
                buckets,
                levels,
                RangePolicy::SlowOnly,
            ))),
            MapKind::SkipHashTwoPath => Arc::new(SkipHashAdapter::new(skiphash_with(
                buckets,
                levels,
                RangePolicy::TwoPath { tries: 3 },
            ))),
            MapKind::VcasBst => Arc::new(VcasBstAdapter(VcasBst::new(TimestampMode::Rdtscp))),
            MapKind::VcasSkipList => Arc::new(VcasSkipListAdapter(VcasSkipList::new(
                levels,
                TimestampMode::Rdtscp,
            ))),
            MapKind::BundledSkipList => Arc::new(BundledSkipListAdapter(BundledSkipList::new(
                levels,
                TimestampMode::Rdtscp,
            ))),
            MapKind::StmSkipList => Arc::new(StmSkipListAdapter(StmSkipListMap::new(levels))),
            MapKind::StmHashMap => Arc::new(StmHashMapAdapter(StmHashMap::new(buckets))),
        }
    }
}

impl fmt::Display for MapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The paper sizes the hash table as the smallest prime keeping utilization
/// at or below 70% for the expected population (half the universe).
fn bucket_count_for(key_universe: u64) -> usize {
    let target = ((key_universe / 2) as f64 / 0.7).ceil() as usize;
    smallest_prime_at_least(target.max(16))
}

fn level_count_for(key_universe: u64) -> usize {
    let mut levels = 1;
    while (1u64 << levels) < key_universe && levels < 30 {
        levels += 1;
    }
    levels.max(4)
}

pub(crate) fn smallest_prime_at_least(mut n: usize) -> usize {
    fn is_prime(n: usize) -> bool {
        if n < 2 {
            return false;
        }
        let mut d = 2;
        while d * d <= n {
            if n.is_multiple_of(d) {
                return false;
            }
            d += 1;
        }
        true
    }
    while !is_prime(n) {
        n += 1;
    }
    n
}

fn skiphash_with(buckets: usize, levels: usize, policy: RangePolicy) -> SkipHash<u64, u64> {
    SkipHashBuilder::new()
        .buckets(buckets)
        .max_level(levels)
        .range_policy(policy)
        .build()
}

struct SkipHashAdapter {
    map: SkipHash<u64, u64>,
}

impl SkipHashAdapter {
    fn new(map: SkipHash<u64, u64>) -> Self {
        Self { map }
    }
}

impl BenchMap for SkipHashAdapter {
    fn get(&self, key: u64) -> Option<u64> {
        self.map.get(&key)
    }
    fn insert(&self, key: u64, value: u64) -> bool {
        self.map.insert(key, value)
    }
    fn remove(&self, key: u64) -> bool {
        self.map.remove(&key)
    }
    fn range(&self, bounds: KeyBounds, buffer: &mut Vec<(u64, u64)>) -> Option<usize> {
        buffer.clear();
        buffer.extend(self.map.range_copied(bounds));
        Some(buffer.len())
    }
    fn fast_path_aborts_per_success(&self) -> Option<f64> {
        Some(self.map.range_stats().aborts_per_success())
    }
    fn population(&self) -> usize {
        self.map.len()
    }
}

struct VcasBstAdapter(VcasBst<u64, u64>);

impl BenchMap for VcasBstAdapter {
    fn get(&self, key: u64) -> Option<u64> {
        self.0.get(&key)
    }
    fn insert(&self, key: u64, value: u64) -> bool {
        self.0.insert(key, value)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(&key)
    }
    fn range(&self, bounds: KeyBounds, buffer: &mut Vec<(u64, u64)>) -> Option<usize> {
        buffer.clear();
        if let Some((low, high)) = bounds_to_inclusive(bounds) {
            buffer.extend(self.0.range(&low, &high));
        }
        Some(buffer.len())
    }
    fn population(&self) -> usize {
        self.0.len()
    }
}

struct VcasSkipListAdapter(VcasSkipList<u64, u64>);

impl BenchMap for VcasSkipListAdapter {
    fn get(&self, key: u64) -> Option<u64> {
        self.0.get(&key)
    }
    fn insert(&self, key: u64, value: u64) -> bool {
        self.0.insert(key, value)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(&key)
    }
    fn range(&self, bounds: KeyBounds, buffer: &mut Vec<(u64, u64)>) -> Option<usize> {
        buffer.clear();
        if let Some((low, high)) = bounds_to_inclusive(bounds) {
            buffer.extend(self.0.range(&low, &high));
        }
        Some(buffer.len())
    }
    fn population(&self) -> usize {
        self.0.len()
    }
}

struct BundledSkipListAdapter(BundledSkipList<u64, u64>);

impl BenchMap for BundledSkipListAdapter {
    fn get(&self, key: u64) -> Option<u64> {
        self.0.get(&key)
    }
    fn insert(&self, key: u64, value: u64) -> bool {
        self.0.insert(key, value)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(&key)
    }
    fn range(&self, bounds: KeyBounds, buffer: &mut Vec<(u64, u64)>) -> Option<usize> {
        buffer.clear();
        if let Some((low, high)) = bounds_to_inclusive(bounds) {
            buffer.extend(self.0.range(&low, &high));
        }
        Some(buffer.len())
    }
    fn population(&self) -> usize {
        self.0.len()
    }
}

struct StmSkipListAdapter(StmSkipListMap<u64, u64>);

impl BenchMap for StmSkipListAdapter {
    fn get(&self, key: u64) -> Option<u64> {
        self.0.get(&key)
    }
    fn insert(&self, key: u64, value: u64) -> bool {
        self.0.insert(key, value)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(&key)
    }
    fn range(&self, _bounds: KeyBounds, _buffer: &mut Vec<(u64, u64)>) -> Option<usize> {
        None
    }
    fn supports_range(&self) -> bool {
        false
    }
    fn population(&self) -> usize {
        self.0.len()
    }
}

struct StmHashMapAdapter(StmHashMap<u64, u64>);

impl BenchMap for StmHashMapAdapter {
    fn get(&self, key: u64) -> Option<u64> {
        self.0.get(&key)
    }
    fn insert(&self, key: u64, value: u64) -> bool {
        self.0.insert(key, value)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(&key)
    }
    fn range(&self, _bounds: KeyBounds, _buffer: &mut Vec<(u64, u64)>) -> Option<usize> {
        None
    }
    fn supports_range(&self) -> bool {
        false
    }
    fn population(&self) -> usize {
        self.0.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_map_kind_builds_and_round_trips() {
        for kind in MapKind::all() {
            let map = kind.build(1024);
            assert!(map.insert(10, 100), "{kind}: insert");
            assert!(!map.insert(10, 100), "{kind}: duplicate insert");
            assert_eq!(map.get(10), Some(100), "{kind}: get");
            assert_eq!(map.get(11), None, "{kind}: missing get");
            assert_eq!(map.population(), 1, "{kind}: population");
            assert!(map.remove(10), "{kind}: remove");
            assert!(!map.remove(10), "{kind}: double remove");
        }
    }

    #[test]
    fn range_capable_maps_agree_on_a_range() {
        for kind in MapKind::range_capable() {
            let map = kind.build(1024);
            for k in 0..50u64 {
                assert!(map.insert(k, k + 1));
            }
            let mut buffer = Vec::new();
            let count = map
                .range((Bound::Included(10), Bound::Included(19)), &mut buffer)
                .expect("supports ranges");
            assert_eq!(count, 10, "{kind}");
            assert_eq!(buffer[0], (10, 11), "{kind}");
            assert_eq!(buffer[9], (19, 20), "{kind}");
            assert!(map.supports_range());
            // Exclusive and unbounded bounds must agree across adapters.
            let count = map
                .range((Bound::Excluded(10), Bound::Excluded(19)), &mut buffer)
                .expect("supports ranges");
            assert_eq!(count, 8, "{kind}");
            assert_eq!(buffer[0], (11, 12), "{kind}");
            let count = map
                .range((Bound::Unbounded, Bound::Unbounded), &mut buffer)
                .expect("supports ranges");
            assert_eq!(count, 50, "{kind}");
            // Unsatisfiable bounds are empty, not an error.
            let count = map
                .range((Bound::Excluded(5), Bound::Excluded(6)), &mut buffer)
                .expect("supports ranges");
            assert_eq!(count, 0, "{kind}");
        }
    }

    #[test]
    fn non_range_maps_report_no_support() {
        for kind in [MapKind::StmSkipList, MapKind::StmHashMap] {
            let map = kind.build(1024);
            let mut buffer = Vec::new();
            assert!(map
                .range((Bound::Included(0), Bound::Included(10)), &mut buffer)
                .is_none());
            assert!(!map.supports_range());
        }
    }

    #[test]
    fn bucket_sizing_matches_the_papers_rule() {
        // For the paper's universe of 10^6 keys the bucket count must be the
        // prime 714,341.
        assert_eq!(bucket_count_for(1_000_000), 714_341);
        assert_eq!(level_count_for(1_000_000), 20);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = MapKind::all().iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), MapKind::all().len());
    }
}
