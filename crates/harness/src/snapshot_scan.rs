//! The *scans-vs-writers* scenario: long-running pinned snapshot scans
//! concurrent with transactional writers.
//!
//! The single-map [`BenchMap`](crate::BenchMap) interface measures point
//! operations and transactional range queries, but it cannot express the
//! workload MVCC snapshots exist for: an analytical full scan that must see
//! **one** consistent version of the map while update transactions keep
//! committing at full speed.  This module drives exactly that:
//!
//! * **writers** — transfer transactions moving one unit of value between two
//!   random accounts (debit + credit in one atomic transaction), so the total
//!   value across the map is invariant;
//! * **scanners** — each iteration takes a [`Snapshot`](skiphash::Snapshot),
//!   scans it end to end, and checks the conservation invariant (every pair
//!   present, total value exact).  A torn scan — one that mixes the debit of
//!   one transfer with the credit of another — breaks the sum and is counted
//!   as a violation.
//!
//! Without snapshots the scan would need a transaction over the whole map
//! (aborting against every concurrent writer) or a stop-the-world lock; the
//! pinned scan instead reads at its frozen version while writers proceed, at
//! the cost of the bounded history custody described in `docs/PERF.md`.
//!
//! [`run_bundle_scan_trial`] is the baseline arm of the comparison: the
//! bundled skip list timestamps its links, so its range scans are also
//! linearizable against concurrent writers — but it offers no multi-key
//! atomicity, so its writers churn single keys (remove + reinsert) rather
//! than transfer value, and the scan audit is correspondingly weaker (no
//! duplicates, no stale values) rather than a conservation sum.

use skiphash_stm::sync::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use skiphash::SkipHash;
use skiphash_baselines::BundledSkipList;

/// Result of one scans-vs-writers trial.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SnapshotScanTrialResult {
    /// Full pinned scans completed by the scanner threads (one snapshot
    /// taken and dropped per scan).
    pub scans: u64,
    /// Key/value pairs returned across all pinned scans.
    pub scan_pairs: u64,
    /// Transfer transactions committed by the writer threads.
    pub writer_ops: u64,
    /// Scans whose population or value total broke the conservation
    /// invariant — must stay zero; a snapshot is a consistent cut.
    pub tearing_violations: u64,
    /// Wall-clock duration of the measured phase, in seconds.
    pub elapsed_secs: f64,
}

impl SnapshotScanTrialResult {
    /// Scan throughput in millions of *pairs processed* per second (the
    /// figure-6-style axis for the analytical side).
    pub fn scan_pairs_mops(&self) -> f64 {
        if self.elapsed_secs == 0.0 {
            0.0
        } else {
            self.scan_pairs as f64 / self.elapsed_secs / 1e6
        }
    }

    /// Writer throughput in millions of committed transfers per second.
    pub fn writer_mops(&self) -> f64 {
        if self.elapsed_secs == 0.0 {
            0.0
        } else {
            self.writer_ops as f64 / self.elapsed_secs / 1e6
        }
    }
}

/// Pre-fill `map` with accounts `0..accounts`, each holding `initial` units,
/// so every snapshot taken during the trial must total exactly
/// `accounts * initial`.
pub fn prefill_accounts(map: &SkipHash<u64, u64>, accounts: u64, initial: u64) {
    for key in 0..accounts {
        map.insert(key, initial);
    }
}

/// Run a timed scans-vs-writers trial against a map pre-filled by
/// [`prefill_accounts`]: `writer_threads` commit random transfers while
/// `scan_threads` repeatedly snapshot the map and audit the full scan.
pub fn run_snapshot_scan_trial(
    map: &Arc<SkipHash<u64, u64>>,
    accounts: u64,
    initial: u64,
    writer_threads: usize,
    scan_threads: usize,
    duration: Duration,
    seed: u64,
) -> SnapshotScanTrialResult {
    let stop = Arc::new(AtomicBool::new(false));
    let expected_total = accounts
        .checked_mul(initial)
        .expect("account total overflows u64");
    let started = Instant::now();

    let writer_handles: Vec<_> = (0..writer_threads)
        .map(|t| {
            let map = Arc::clone(map);
            let stop = Arc::clone(&stop);
            let seed = seed ^ ((t as u64 + 1) * 0xC13F);
            thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut committed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let from = rng.gen_range(0..accounts);
                    let to = rng.gen_range(0..accounts);
                    if from == to {
                        continue;
                    }
                    let moved = map.transact(|v| {
                        let balance = v.get(&from)?.expect("accounts are never removed");
                        if balance == 0 {
                            return Ok(false);
                        }
                        let other = v.get(&to)?.expect("accounts are never removed");
                        v.upsert(from, balance - 1)?;
                        v.upsert(to, other + 1)?;
                        Ok(true)
                    });
                    if moved {
                        committed += 1;
                    }
                }
                committed
            })
        })
        .collect();

    let scan_handles: Vec<_> = (0..scan_threads)
        .map(|_| {
            let map = Arc::clone(map);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut partial = SnapshotScanTrialResult::default();
                while !stop.load(Ordering::Relaxed) {
                    let snap = map.snapshot();
                    let pairs = snap.to_vec();
                    let total: u64 = pairs.iter().map(|(_, v)| v).sum();
                    if pairs.len() as u64 != accounts || total != expected_total {
                        partial.tearing_violations += 1;
                    }
                    partial.scan_pairs += pairs.len() as u64;
                    partial.scans += 1;
                    drop(snap);
                }
                partial
            })
        })
        .collect();

    thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let mut total = SnapshotScanTrialResult::default();
    for handle in writer_handles {
        total.writer_ops += handle.join().expect("writer thread panicked");
    }
    for handle in scan_handles {
        let partial = handle.join().expect("scanner thread panicked");
        total.scans += partial.scans;
        total.scan_pairs += partial.scan_pairs;
        total.tearing_violations += partial.tearing_violations;
    }
    total.elapsed_secs = started.elapsed().as_secs_f64();
    total
}

/// Run the baseline arm: the same scans-vs-writers shape against the
/// bundled skip list.  Writers churn single keys (remove + reinsert with a
/// fresh value — the strongest update the baseline can express atomically);
/// scanners run full timestamped range scans.  A scan that returns a
/// duplicate key is counted as a tearing violation (a linearizable scan
/// must never produce one); absent keys are legitimate (a writer may be
/// between its remove and its reinsert).
pub fn run_bundle_scan_trial(
    list: &Arc<BundledSkipList<u64, u64>>,
    accounts: u64,
    writer_threads: usize,
    scan_threads: usize,
    duration: Duration,
    seed: u64,
) -> SnapshotScanTrialResult {
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();

    let writer_handles: Vec<_> = (0..writer_threads)
        .map(|t| {
            let list = Arc::clone(list);
            let stop = Arc::clone(&stop);
            let seed = seed ^ ((t as u64 + 1) * 0xC13F);
            thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut committed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.gen_range(0..accounts);
                    if list.remove(&key) {
                        list.insert(key, committed);
                        committed += 1;
                    }
                }
                committed
            })
        })
        .collect();

    let scan_handles: Vec<_> = (0..scan_threads)
        .map(|_| {
            let list = Arc::clone(list);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut partial = SnapshotScanTrialResult::default();
                while !stop.load(Ordering::Relaxed) {
                    let pairs = list.range(&0, &(accounts - 1));
                    let mut keys: Vec<u64> = pairs.iter().map(|(k, _)| *k).collect();
                    keys.dedup();
                    if keys.len() != pairs.len() {
                        partial.tearing_violations += 1;
                    }
                    partial.scan_pairs += pairs.len() as u64;
                    partial.scans += 1;
                }
                partial
            })
        })
        .collect();

    thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let mut total = SnapshotScanTrialResult::default();
    for handle in writer_handles {
        total.writer_ops += handle.join().expect("writer thread panicked");
    }
    for handle in scan_handles {
        let partial = handle.join().expect("scanner thread panicked");
        total.scans += partial.scans;
        total.scan_pairs += partial.scan_pairs;
        total.tearing_violations += partial.tearing_violations;
    }
    total.elapsed_secs = started.elapsed().as_secs_f64();
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_scan_trial_sees_no_tearing() {
        let map: Arc<SkipHash<u64, u64>> = Arc::new(SkipHash::new());
        prefill_accounts(&map, 256, 100);
        let result = run_snapshot_scan_trial(&map, 256, 100, 2, 2, Duration::from_millis(150), 41);
        assert!(result.scans > 0, "scanners made no progress");
        assert!(result.writer_ops > 0, "writers made no progress");
        assert_eq!(result.scan_pairs, result.scans * 256);
        assert_eq!(
            result.tearing_violations, 0,
            "a pinned scan observed a torn transfer"
        );
        assert!(result.scan_pairs_mops() > 0.0);
        assert!(result.writer_mops() > 0.0);
        // The trial ends with no snapshot live, so custody has fully drained.
        assert_eq!(skiphash_stm::snapshot::live_history_entries(), 0);
        map.check_invariants().expect("invariants after trial");
    }

    #[test]
    fn bundle_scan_trial_runs_and_scans_stay_duplicate_free() {
        let list: Arc<BundledSkipList<u64, u64>> = Arc::new(BundledSkipList::new(
            16,
            skiphash_baselines::TimestampMode::Rdtscp,
        ));
        for key in 0..256u64 {
            list.insert(key, 100);
        }
        let result = run_bundle_scan_trial(&list, 256, 2, 2, Duration::from_millis(150), 43);
        assert!(result.scans > 0, "scanners made no progress");
        assert!(result.writer_ops > 0, "writers made no progress");
        assert_eq!(
            result.tearing_violations, 0,
            "a bundled scan returned a duplicate key"
        );
        assert!(result.scan_pairs_mops() > 0.0);
    }
}
