//! Plain-text and CSV emitters shaped like the paper's figures and tables.

use std::fmt::Write as _;

/// One measured series: a label (map name) plus `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (e.g. "Skip-hash (Two-Path)").
    pub label: String,
    /// Measured points: x is the swept parameter (threads, range length...),
    /// y is the reported metric (Mops/s, pairs/s, aborts...).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

/// A figure: a title, axis names, and a set of series over a shared x grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Figure title (e.g. "Figure 5a: 100% lookup").
    pub title: String,
    /// Label of the swept parameter.
    pub x_label: String,
    /// Label of the reported metric.
    pub y_label: String,
    /// All measured series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Create an empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Append a series.
    pub fn add_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Render as an aligned plain-text table: one row per x value, one column
    /// per series — the same information the paper plots.
    pub fn to_table(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("x values are finite"));
        xs.dedup();

        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "# y-axis: {}", self.y_label);
        let _ = write!(out, "{:>14}", self.x_label);
        for series in &self.series {
            let _ = write!(out, "  {:>28}", series.label);
        }
        out.push('\n');
        for x in &xs {
            let _ = write!(out, "{x:>14.0}");
            for series in &self.series {
                match series
                    .points
                    .iter()
                    .find(|(px, _)| (px - x).abs() < f64::EPSILON)
                {
                    Some((_, y)) if y.is_finite() => {
                        let _ = write!(out, "  {y:>28.3}");
                    }
                    Some(_) => {
                        let _ = write!(out, "  {:>28}", "inf");
                    }
                    None => {
                        let _ = write!(out, "  {:>28}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV (`x,label1,label2,...`).
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("x values are finite"));
        xs.dedup();

        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label.replace(',', ";"));
        for series in &self.series {
            let _ = write!(out, ",{}", series.label.replace(',', ";"));
        }
        out.push('\n');
        for x in &xs {
            let _ = write!(out, "{x}");
            for series in &self.series {
                match series
                    .points
                    .iter()
                    .find(|(px, _)| (px - x).abs() < f64::EPSILON)
                {
                    Some((_, y)) => {
                        let _ = write!(out, ",{y}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> Figure {
        let mut fig = Figure::new("Figure X", "threads", "Mops/s");
        let mut a = Series::new("map-a");
        a.push(1.0, 1.5);
        a.push(2.0, 2.5);
        let mut b = Series::new("map-b");
        b.push(1.0, 0.5);
        fig.add_series(a);
        fig.add_series(b);
        fig
    }

    #[test]
    fn table_contains_all_series_and_points() {
        let table = sample_figure().to_table();
        assert!(table.contains("Figure X"));
        assert!(table.contains("map-a"));
        assert!(table.contains("map-b"));
        assert!(table.contains("1.500"));
        assert!(table.contains("2.500"));
        // Missing point renders as "-".
        assert!(table.contains('-'));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample_figure().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "threads,map-a,map-b");
        assert_eq!(lines.next().unwrap(), "1,1.5,0.5");
        assert_eq!(lines.next().unwrap(), "2,2.5,");
    }

    #[test]
    fn infinite_values_render_as_inf() {
        let mut fig = Figure::new("t", "x", "y");
        let mut s = Series::new("s");
        s.push(1.0, f64::INFINITY);
        fig.add_series(s);
        assert!(fig.to_table().contains("inf"));
    }
}
