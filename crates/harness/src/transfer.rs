//! The multi-map *transfer* scenario: composed transactions as a workload.
//!
//! The single-map [`BenchMap`](crate::BenchMap) interface structurally cannot
//! express what the paper's STM foundation is for — one transaction touching
//! several structures.  This module benchmarks exactly that: a pair of skip
//! hashes sharing one STM runtime, with three operations:
//!
//! * **transfer** — atomically move a key (and its value) from whichever map
//!   holds it to the other, via two [`TxView`](skiphash::TxView)s in one
//!   transaction;
//! * **audit** — atomically read both maps and report which holds the key
//!   (under correct transfers, never both);
//! * **lookup** — a plain sealed `get` against one map, for mix dilution.
//!
//! None of the baseline structures offers an equivalent: without STM, the
//! transfer would need external locking or exhibit intermediate states.

use std::sync::Arc;

use skiphash::{SkipHash, SkipHashBuilder};
use skiphash_stm::Stm;

/// A pair of skip hashes over one shared STM runtime, plus the composed
/// operations the transfer workload drives.
pub struct TransferPair {
    stm: Arc<Stm>,
    /// The "left" map (pre-filled by [`TransferPair::prefill`]).
    pub left: SkipHash<u64, u64>,
    /// The "right" map (initially empty).
    pub right: SkipHash<u64, u64>,
}

impl std::fmt::Debug for TransferPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransferPair").finish()
    }
}

impl TransferPair {
    /// Build a pair sized for `key_universe` keys (roughly half resident),
    /// with the same prime bucket sizing the single-map adapters use.
    pub fn new(key_universe: u64) -> Self {
        let stm = Arc::new(Stm::new());
        let buckets =
            crate::adapters::smallest_prime_at_least(((key_universe / 2) as usize).max(64));
        let map = |stm: &Arc<Stm>| {
            SkipHashBuilder::new()
                .buckets(buckets)
                .stm(Arc::clone(stm))
                .build()
        };
        Self {
            left: map(&stm),
            right: map(&stm),
            stm,
        }
    }

    /// The shared runtime (for callers composing their own transactions).
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    /// Insert `0..count` into the left map (value = key), so every key in
    /// the universe below `count` is held by exactly one map from the start.
    pub fn prefill(&self, count: u64) {
        for key in 0..count {
            self.left.insert(key, key);
        }
    }

    /// Atomically move `key` to the *other* map: take it from whichever map
    /// holds it and insert it into the opposite one, as one transaction.
    /// Returns `false` when neither map holds the key.
    pub fn transfer(&self, key: u64) -> bool {
        self.stm.run(|tx| {
            if let Some(value) = self.left.view(tx).take(&key)? {
                self.right.view(tx).insert(key, value)?;
                return Ok(true);
            }
            if let Some(value) = self.right.view(tx).take(&key)? {
                self.left.view(tx).insert(key, value)?;
                return Ok(true);
            }
            Ok(false)
        })
    }

    /// Atomically report `(in_left, in_right)` for `key`.
    pub fn audit(&self, key: u64) -> (bool, bool) {
        self.stm.run(|tx| {
            Ok((
                self.left.view(tx).contains_key(&key)?,
                self.right.view(tx).contains_key(&key)?,
            ))
        })
    }

    /// Sealed lookup against the left map (mix dilution / read pressure).
    pub fn lookup(&self, key: u64) -> Option<u64> {
        self.left.get(&key)
    }

    /// Total population across both maps (conservation check: transfers must
    /// keep this equal to the pre-filled count).
    pub fn total_population(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Validate both maps' internal invariants.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.left.check_invariants()?;
        self.right.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_moves_keys_between_maps() {
        let pair = TransferPair::new(128);
        pair.prefill(64);
        assert_eq!(pair.total_population(), 64);
        assert!(pair.transfer(10));
        assert_eq!(pair.audit(10), (false, true));
        assert!(pair.transfer(10), "transfers back from the right map");
        assert_eq!(pair.audit(10), (true, false));
        assert!(!pair.transfer(1_000), "absent keys transfer nothing");
        assert_eq!(pair.total_population(), 64);
        pair.check_invariants().expect("invariants");
    }
}
