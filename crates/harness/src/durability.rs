//! The *durable-writers* scenario: update transactions whose commit records
//! flow through the group-commit WAL, with a configurable fraction waiting
//! for the fsync acknowledgment.
//!
//! The interesting trade-off in the durability tier is the flush interval:
//! a short interval gives every acknowledged commit a low latency but
//! issues many small fsyncs; a long interval amortises the fsync over a
//! larger batch but stretches the tail of every `upsert_durable`.  This
//! module drives exactly that sweep:
//!
//! * **writers** — each thread owns a key slice and commits monotonically
//!   increasing values, so the trial double-checks the durability contract
//!   for free (an acknowledged value can never regress after reopen);
//! * every `ack_every`-th operation uses [`DurableMap::upsert_durable`] and
//!   its wall-clock latency is recorded; the rest use the fire-and-forget
//!   logged path.
//!
//! The result reports logged throughput plus the p50/p99/max acknowledgment
//! latency — the y-axes of the `fig_durability` driver.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use skiphash_durability::DurableMap;
use skiphash_stm::sync::{AtomicBool, Ordering};

/// Result of one durable-writers trial.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DurableTrialResult {
    /// Total update operations committed (logged + acknowledged).
    pub ops: u64,
    /// Operations that waited for the WAL sync barrier before returning.
    pub acked: u64,
    /// Acknowledgment latencies in nanoseconds, sorted ascending.
    pub ack_latencies_ns: Vec<u64>,
    /// Wall-clock duration of the measured phase, in seconds.
    pub elapsed_secs: f64,
}

impl DurableTrialResult {
    /// Throughput in millions of committed operations per second.
    pub fn mops(&self) -> f64 {
        if self.elapsed_secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / self.elapsed_secs / 1e6
        }
    }

    /// The `q`-quantile acknowledgment latency in microseconds (`q` in
    /// `0.0..=1.0`); zero if no operation waited for an acknowledgment.
    pub fn ack_quantile_us(&self, q: f64) -> f64 {
        if self.ack_latencies_ns.is_empty() {
            return 0.0;
        }
        let rank = ((self.ack_latencies_ns.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.ack_latencies_ns[rank] as f64 / 1e3
    }

    /// The worst acknowledgment latency in microseconds.
    pub fn ack_max_us(&self) -> f64 {
        self.ack_latencies_ns
            .last()
            .map_or(0.0, |&ns| ns as f64 / 1e3)
    }
}

/// Run a timed durable-writers trial: `threads` writers each upsert
/// monotonically increasing values over a private slice of
/// `0..key_universe`, acknowledging durably every `ack_every`-th operation.
///
/// `ack_every == 1` makes every commit wait for its fsync (the synchronous
/// extreme); large values approach the fire-and-forget logged path.
pub fn run_durable_trial(
    map: &Arc<DurableMap<u64, u64>>,
    key_universe: u64,
    threads: usize,
    ack_every: u64,
    duration: Duration,
    seed: u64,
) -> DurableTrialResult {
    assert!(threads > 0, "trial needs at least one writer");
    assert!(
        ack_every > 0,
        "ack_every is a modulus; zero would divide by zero"
    );
    let stop = Arc::new(AtomicBool::new(false));
    let slice = (key_universe / threads as u64).max(1);
    let started = Instant::now();

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let map = Arc::clone(map);
            let stop = Arc::clone(&stop);
            let lo = t as u64 * slice;
            let mut key = lo + (seed.wrapping_mul(0x9E37_79B9) % slice);
            thread::spawn(move || {
                let mut partial = DurableTrialResult::default();
                let mut value = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    value += 1;
                    key = lo + (key + 1 - lo) % slice;
                    if partial.ops % ack_every == 0 {
                        let begin = Instant::now();
                        map.upsert_durable(key, value).expect("durable ack failed");
                        partial
                            .ack_latencies_ns
                            .push(begin.elapsed().as_nanos() as u64);
                        partial.acked += 1;
                    } else {
                        map.upsert(key, value);
                    }
                    partial.ops += 1;
                }
                partial
            })
        })
        .collect();

    thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let mut total = DurableTrialResult::default();
    for handle in handles {
        let partial = handle.join().expect("writer thread panicked");
        total.ops += partial.ops;
        total.acked += partial.acked;
        total.ack_latencies_ns.extend(partial.ack_latencies_ns);
    }
    total.ack_latencies_ns.sort_unstable();
    total.elapsed_secs = started.elapsed().as_secs_f64();
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use skiphash_durability::{DurableMapBuilder, MemStorage, WalConfig};

    fn mem_map(dir: &str) -> (MemStorage, Arc<DurableMap<u64, u64>>) {
        let storage = MemStorage::new();
        let map = DurableMapBuilder::new(dir)
            .storage(Arc::new(storage.clone()))
            .wal_config(WalConfig {
                flush_interval: Duration::from_micros(200),
                ..WalConfig::default()
            })
            .open::<u64, u64>()
            .unwrap();
        (storage, Arc::new(map))
    }

    #[test]
    fn durable_trial_progresses_and_reports_latencies() {
        let (_storage, map) = mem_map("/durable-trial");
        let result = run_durable_trial(&map, 1024, 2, 4, Duration::from_millis(150), 7);
        assert!(result.ops > 0, "writers made no progress");
        assert!(
            result.acked > 0,
            "no operation waited for an acknowledgment"
        );
        assert!(result.acked <= result.ops);
        assert_eq!(result.acked as usize, result.ack_latencies_ns.len());
        assert!(result.mops() > 0.0);
        assert!(result.ack_quantile_us(0.5) <= result.ack_quantile_us(0.99));
        assert!(result.ack_quantile_us(0.99) <= result.ack_max_us());
    }

    #[test]
    fn acknowledged_values_survive_reopen() {
        let (storage, map) = mem_map("/durable-reopen");
        let result = run_durable_trial(&map, 64, 2, 1, Duration::from_millis(100), 13);
        assert!(result.ops > 0);
        // Every op was acknowledged, so the reopened map must hold every
        // final value exactly (each thread's last write is its ack).
        let expected = map.to_vec();
        drop(map);
        let reopened = DurableMapBuilder::new("/durable-reopen")
            .storage(Arc::new(storage))
            .open::<u64, u64>()
            .unwrap();
        assert_eq!(reopened.to_vec(), expected);
    }
}
