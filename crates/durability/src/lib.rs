//! Opt-in crash-safe persistence for the skip hash.
//!
//! The paper's map is an in-memory structure; this crate adds the durability
//! layer a production deployment would wrap around it, built from two pieces
//! of machinery the STM already provides:
//!
//! * **Commit stamps.**  Every committed writer carries a unique write
//!   version from the global clock, and `Txn::on_commit_sequenced` hands it
//!   to an action exactly once per committed attempt — at the serialization
//!   point, before the commit's writes are visible to other transactions,
//!   which is what makes the sync barrier's coverage causal.  The stamps
//!   give write-ahead-log records a natural total order — recovery replays
//!   by stamp, not by file position, so group-commit batching is free to
//!   interleave records from different threads.
//! * **Pinned snapshots.**  `SkipHash::snapshot` materializes the map at a
//!   single clock version without blocking writers, which is exactly the
//!   consistent image a checkpoint needs.
//!
//! The resulting design (see `docs/DURABILITY.md` in the repository root):
//!
//! * [`wal`] — per-thread leased record buffers submitted from the
//!   commit-sequenced hook, drained by a single group-commit writer thread
//!   that frames each record with a CRC32, appends batches in stamp order,
//!   and fsyncs once per batch.
//! * [`checkpoint`] — full-map images written side-by-side with the log
//!   (temp file, fsync, atomic rename), bounding both recovery time and log
//!   growth: sealed segments entirely covered by the newest durable
//!   checkpoint are deleted.
//! * [`recovery`] — loads the newest *valid* checkpoint, replays the WAL
//!   suffix in stamp order, and truncates torn/short/corrupt tails at the
//!   last valid frame.  Recovery returns `Result` and never panics on bad
//!   bytes; mutilated input is data loss at worst, never a crash.
//! * [`storage`] — the file-system seam.  Everything above talks to a
//!   [`storage::Storage`] trait, so tests swap in an in-memory
//!   implementation with programmable faults (torn writes, short writes,
//!   failed fsync, bit flips) and prove the recovery invariants under fire.
//! * [`map`] — [`DurableMap`], the user-facing tie-up: a [`skiphash`] map
//!   plus a WAL, with `transact`'s effectful operations recorded
//!   automatically and an acknowledged-durable barrier ([`DurableMap::sync`]).
//!
//! The contract: an operation is **acknowledged durable** once `sync` (or a
//! `*_durable` convenience call) returns `Ok` after it — and the barrier is
//! causal, covering every logged commit whose effects the caller observed,
//! on any thread.  Recovery after a crash reconstructs a state that
//! contains every acknowledged-durable commit and is causally closed (a
//! surviving commit's dependencies survive with it) — it never resurrects
//! an aborted transaction and never tears a committed one.  See the [`map`]
//! module docs for the exact guarantee.

pub mod checkpoint;
pub mod codec;
mod lock;
pub mod map;
pub mod recovery;
pub mod storage;
pub mod wal;

pub use codec::Codec;
pub use map::{DurableMap, DurableMapBuilder, DurableView};
pub use recovery::{recover, Recovered};
pub use storage::{FaultPlan, FaultStorage, MemStorage, StdStorage, Storage, StorageFile};
pub use wal::WalConfig;
