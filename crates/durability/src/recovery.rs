//! Crash recovery: newest valid checkpoint + WAL suffix replay.
//!
//! Recovery is a pure function of the bytes that survived: it never writes
//! (except to delete stray checkpoint temp files), never panics on
//! mutilated input, and returns `Result` only for real I/O failures —
//! corruption is handled by *truncating*, not by erroring, because a torn
//! tail is the expected shape of a crash.
//!
//! The procedure:
//!
//! 1. **Checkpoint.**  Scan `ckpt-*.img` newest-first; the first image
//!    that validates (magic, CRC, clean decode) seeds the state at its
//!    version `p`.  Invalid images are skipped — an older valid image
//!    plus WAL replay reconstructs the same state.
//! 2. **Log.**  Read segments in sequence order.  Within a segment, stop
//!    at the first invalid frame (torn/short/corrupt tail).  Damage in the
//!    **last** segment ends the scan: the writer only ever appends to the
//!    newest segment, so a torn tail there cuts off everything after it in
//!    commit order.  Damage in an **earlier** segment is different — it is
//!    a scar from an older crash (a kill between segment creation and its
//!    header fsync leaves a zero-byte file; a torn tail stays torn after
//!    the next process resumes in a fresh segment).  Every later segment
//!    was written by a lifetime that itself recovered on top of exactly
//!    the readable prefix of that scar, so the scan skips the damage and
//!    continues — stopping there instead would hide the later lifetimes'
//!    acknowledged commits forever.  Either way the damage is reported,
//!    and the scarred segment is registered for truncation so the next
//!    checkpoint deletes it.
//! 3. **Replay.**  Sort surviving records globally by commit stamp (group
//!    commit may interleave stamp ranges across batches and segments),
//!    drop records with stamp `<= p` (already inside the checkpoint) or
//!    `<=` the previous record's stamp (idempotence under duplicates),
//!    and apply the rest in order.
//!
//! The result contains everything the map layer needs to resume: the
//! recovered entries, the highest stamp observed (the clock must be
//! advanced past it before new commits mint stamps), and the next free
//! segment sequence number.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use skiphash_stm::stats;

use crate::checkpoint::{decode_checkpoint, is_checkpoint_tmp, parse_checkpoint_name};
use crate::codec::Codec;
use crate::storage::Storage;
use crate::wal::{decode_record, parse_segment_header, parse_segment_name, FrameIter, Op};

/// What recovery reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovered<K, V> {
    /// The surviving entries, in key order.
    pub entries: Vec<(K, V)>,
    /// Version of the checkpoint that seeded the state (0 = none).
    pub checkpoint_version: u64,
    /// Highest commit stamp incorporated (checkpoint version included);
    /// the new clock must advance past this.
    pub max_stamp: u64,
    /// WAL records replayed on top of the checkpoint.
    pub records_replayed: u64,
    /// True when a torn/short/corrupt tail was truncated.
    pub truncated_tail: bool,
    /// Sequence number the next WAL segment should use.
    pub next_segment_seq: u64,
    /// Sealed segments that survive on disk, with the largest stamp each
    /// contains — seeds the new log's truncation registry.
    pub(crate) surviving_segments: Vec<crate::wal::SealedSegment>,
}

/// Recover the map image stored in `dir`.  See the module docs for the
/// procedure; an empty or absent directory recovers to the empty map.
pub fn recover<K, V>(storage: &dyn Storage, dir: &Path) -> io::Result<Recovered<K, V>>
where
    K: Codec + Ord + Clone,
    V: Codec + Clone,
{
    let names = match storage.list(dir) {
        Ok(names) => names,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };

    // A crashed checkpointer leaves `ckpt-*.tmp`; they are by definition
    // incomplete, so clear them out (best-effort).
    for name in &names {
        if is_checkpoint_tmp(name) {
            let _ = storage.remove(&dir.join(name));
        }
    }

    // Newest checkpoint that actually validates.
    let mut ckpt_versions: Vec<u64> = names
        .iter()
        .filter_map(|n| parse_checkpoint_name(n))
        .collect();
    ckpt_versions.sort_unstable();
    let mut truncated_tail = false;
    let mut checkpoint_version = 0u64;
    let mut state: BTreeMap<K, V> = BTreeMap::new();
    for &version in ckpt_versions.iter().rev() {
        let mut bytes = Vec::new();
        storage
            .open_read(&dir.join(crate::checkpoint::checkpoint_name(version)))?
            .read_to_vec(&mut bytes)?;
        match decode_checkpoint::<K, V>(&bytes) {
            Some((at, entries)) => {
                checkpoint_version = at;
                state = entries.into_iter().collect();
                break;
            }
            None => {
                // Damaged image: fall back to the next older one.
                truncated_tail = true;
            }
        }
    }

    // Collect surviving WAL records, segment by segment.
    let mut segment_seqs: Vec<u64> = names.iter().filter_map(|n| parse_segment_name(n)).collect();
    segment_seqs.sort_unstable();
    let next_segment_seq = segment_seqs.last().map_or(1, |s| s + 1);

    let mut records: Vec<(u64, Vec<Op<K, V>>)> = Vec::new();
    let mut surviving_segments = Vec::new();
    let last_seq = segment_seqs.last().copied();
    for &seq in &segment_seqs {
        let mut bytes = Vec::new();
        storage
            .open_read(&dir.join(crate::wal::segment_name(seq)))?
            .read_to_vec(&mut bytes)?;
        let mut segment_max_stamp = 0u64;
        let mut damaged = false;
        match parse_segment_header(&bytes) {
            Some((header_seq, body)) if header_seq == seq => {
                let mut frames = FrameIter::new(body);
                for payload in &mut frames {
                    match decode_record::<K, V>(payload) {
                        Some((stamp, ops)) => {
                            segment_max_stamp = segment_max_stamp.max(stamp);
                            records.push((stamp, ops));
                        }
                        None => {
                            // A CRC-valid frame that does not decode:
                            // structural damage beyond what framing can
                            // localize.  Nothing after it in this segment
                            // is trustworthy.
                            damaged = true;
                            break;
                        }
                    }
                }
                damaged |= frames.truncated();
            }
            // Header damage (including the zero-byte file a kill between
            // segment creation and its header fsync leaves behind): the
            // whole segment is unreadable.
            _ => damaged = true,
        }
        // Register the segment — readable or not — so a checkpoint that
        // covers its surviving stamps can delete the file.  Scars heal.
        surviving_segments.push(crate::wal::SealedSegment {
            seq,
            max_stamp: segment_max_stamp,
        });
        if damaged {
            truncated_tail = true;
            if Some(seq) == last_seq {
                // A torn tail in the newest segment cuts off commit order.
                break;
            }
            // Damage in an older segment is a scar from a previous crash;
            // later segments belong to later lifetimes that already
            // recovered everything readable here (see the module docs).
            // Skipping, not stopping, keeps their acknowledged commits.
        }
    }

    // Replay in global stamp order, skipping what the checkpoint already
    // covers and any duplicate stamps (idempotent apply).
    records.sort_by_key(|(stamp, _)| *stamp);
    let mut max_stamp = checkpoint_version;
    let mut replayed = 0u64;
    for (stamp, ops) in records {
        if stamp <= max_stamp {
            continue;
        }
        max_stamp = stamp;
        replayed += 1;
        for op in ops {
            match op {
                Op::Put(key, value) => {
                    state.insert(key, value);
                }
                Op::Remove(key) => {
                    state.remove(&key);
                }
            }
        }
    }
    stats::note_recovery_records_replayed(replayed);

    Ok(Recovered {
        entries: state.into_iter().collect(),
        checkpoint_version,
        max_stamp,
        records_replayed: replayed,
        truncated_tail,
        next_segment_seq,
        surviving_segments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::write_checkpoint;
    use crate::storage::MemStorage;
    use crate::wal::{segment_name, Wal, WalConfig};
    use std::sync::Arc;
    use std::time::Duration;

    const DIR: &str = "/rec";

    fn fast_config() -> WalConfig {
        WalConfig {
            flush_interval: Duration::from_micros(100),
            ..WalConfig::default()
        }
    }

    fn log_puts(wal: &Wal, pairs: &[(u64, u64, u64)]) {
        for &(stamp, key, value) in pairs {
            let mut buf = wal.lease();
            buf.log_put(&key, &value);
            buf.submit(stamp);
        }
        wal.sync().unwrap();
    }

    #[test]
    fn empty_directory_recovers_to_empty() {
        let storage = MemStorage::new();
        let rec = recover::<u64, u64>(&storage, Path::new(DIR)).unwrap();
        assert_eq!(rec.entries, vec![]);
        assert_eq!(rec.max_stamp, 0);
        assert_eq!(rec.next_segment_seq, 1);
        assert!(!rec.truncated_tail);
    }

    #[test]
    fn replays_wal_in_stamp_order_across_enqueue_order() {
        let storage = MemStorage::new();
        let wal = Wal::open(
            Arc::new(storage.clone()),
            Path::new(DIR),
            fast_config(),
            1,
            Vec::new(),
        )
        .unwrap();
        // Stamps submitted out of order; last write per key must win by
        // stamp, not by append position.
        log_puts(&wal, &[(3, 1, 30), (1, 1, 10), (2, 2, 20)]);
        drop(wal);
        let rec = recover::<u64, u64>(&storage, Path::new(DIR)).unwrap();
        assert_eq!(rec.entries, vec![(1, 30), (2, 20)]);
        assert_eq!(rec.max_stamp, 3);
        assert_eq!(rec.records_replayed, 3);
        assert_eq!(rec.next_segment_seq, 2);
    }

    #[test]
    fn checkpoint_bounds_replay_and_removals_apply() {
        let storage = MemStorage::new();
        let wal = Wal::open(
            Arc::new(storage.clone()),
            Path::new(DIR),
            fast_config(),
            1,
            Vec::new(),
        )
        .unwrap();
        log_puts(&wal, &[(1, 1, 10), (2, 2, 20)]);
        // Checkpoint at version 2 covers both records.
        write_checkpoint(&storage, Path::new(DIR), &[(1u64, 10u64), (2, 20)], 2).unwrap();
        // Post-checkpoint suffix: overwrite 1, remove 2, insert 3.
        let mut buf = wal.lease();
        buf.log_put(&1u64, &11u64);
        buf.submit(3);
        let mut buf = wal.lease();
        buf.log_remove(&2u64);
        buf.submit(4);
        let mut buf = wal.lease();
        buf.log_put(&3u64, &33u64);
        buf.submit(5);
        wal.sync().unwrap();
        drop(wal);
        let rec = recover::<u64, u64>(&storage, Path::new(DIR)).unwrap();
        assert_eq!(rec.checkpoint_version, 2);
        assert_eq!(rec.entries, vec![(1, 11), (3, 33)]);
        assert_eq!(rec.max_stamp, 5);
        assert_eq!(
            rec.records_replayed, 3,
            "stamps 1..=2 are inside the checkpoint"
        );
    }

    #[test]
    fn torn_tail_truncates_at_last_valid_frame() {
        let storage = MemStorage::new();
        let wal = Wal::open(
            Arc::new(storage.clone()),
            Path::new(DIR),
            fast_config(),
            1,
            Vec::new(),
        )
        .unwrap();
        log_puts(&wal, &[(1, 1, 10)]);
        log_puts(&wal, &[(2, 2, 20)]);
        drop(wal);
        // Tear mid-way through the second frame.
        let path = Path::new(DIR).join(segment_name(1));
        let bytes = storage.bytes(&path).unwrap();
        storage.put(&path, bytes[..bytes.len() - 3].to_vec());
        let rec = recover::<u64, u64>(&storage, Path::new(DIR)).unwrap();
        assert!(rec.truncated_tail);
        assert_eq!(rec.entries, vec![(1, 10)], "only the intact frame replays");
        assert_eq!(rec.max_stamp, 1);
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_older_image() {
        let storage = MemStorage::new();
        let dir = Path::new(DIR);
        write_checkpoint(&storage, dir, &[(1u64, 1u64)], 5).unwrap();
        // Write a newer image, then corrupt it in place (write_checkpoint
        // would have deleted the older one, so re-create it).
        write_checkpoint(&storage, dir, &[(1u64, 2u64)], 9).unwrap();
        let old = crate::checkpoint::encode_checkpoint(&[(1u64, 1u64)], 5);
        storage.put(&dir.join(crate::checkpoint::checkpoint_name(5)), old);
        let newer = dir.join(crate::checkpoint::checkpoint_name(9));
        let mut bytes = storage.bytes(&newer).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        storage.put(&newer, bytes);
        let rec = recover::<u64, u64>(&storage, dir).unwrap();
        assert_eq!(rec.checkpoint_version, 5);
        assert_eq!(rec.entries, vec![(1, 1)]);
        assert!(rec.truncated_tail);
    }

    #[test]
    fn stray_tmp_files_are_removed() {
        let storage = MemStorage::new();
        let dir = Path::new(DIR);
        storage.put(&dir.join("ckpt-00000000000000000003.tmp"), vec![1, 2, 3]);
        let rec = recover::<u64, u64>(&storage, dir).unwrap();
        assert_eq!(rec.entries, vec![]);
        assert!(storage.list(dir).unwrap().is_empty());
    }

    #[test]
    fn damaged_mid_chain_segment_does_not_hide_later_lifetimes() {
        // The crash-campaign bug this pins: lifetime 1 dies between
        // creating segment 2 and fsyncing its header, leaving a zero-byte
        // file.  Lifetime 2 resumes in segment 3 and logs acknowledged
        // commits.  Recovery must replay BOTH lifetimes — stopping the
        // scan at the scar would hide lifetime 2's acked data forever —
        // and must register the scar so truncation can delete it.
        let storage = MemStorage::new();
        let dir = Path::new(DIR);
        let wal = Wal::open(Arc::new(storage.clone()), dir, fast_config(), 1, Vec::new()).unwrap();
        log_puts(&wal, &[(1, 1, 10)]);
        drop(wal);
        storage.put(&dir.join(segment_name(2)), Vec::new()); // the scar
        let wal = Wal::open(Arc::new(storage.clone()), dir, fast_config(), 3, Vec::new()).unwrap();
        log_puts(&wal, &[(2, 2, 20)]);
        drop(wal);
        let rec = recover::<u64, u64>(&storage, dir).unwrap();
        assert_eq!(rec.entries, vec![(1, 10), (2, 20)], "both lifetimes replay");
        assert_eq!(rec.records_replayed, 2);
        assert!(
            rec.truncated_tail,
            "the scar is damage and must be reported"
        );
        assert_eq!(rec.next_segment_seq, 4);
        assert!(
            rec.surviving_segments
                .iter()
                .any(|s| s.seq == 2 && s.max_stamp == 0),
            "the scar is registered so a checkpoint can truncate it: {:?}",
            rec.surviving_segments
        );
    }

    #[test]
    fn torn_tail_in_an_older_segment_keeps_its_prefix_and_later_segments() {
        // Same lifetime-boundary rule for a torn (rather than zero-byte)
        // scar: the readable prefix of the torn segment replays, its tail
        // does not, and the later lifetime's segment still replays.
        let storage = MemStorage::new();
        let dir = Path::new(DIR);
        let wal = Wal::open(Arc::new(storage.clone()), dir, fast_config(), 1, Vec::new()).unwrap();
        log_puts(&wal, &[(1, 1, 10)]);
        log_puts(&wal, &[(2, 2, 20)]);
        drop(wal);
        let path = dir.join(segment_name(1));
        let bytes = storage.bytes(&path).unwrap();
        storage.put(&path, bytes[..bytes.len() - 3].to_vec()); // tear frame 2
        let wal = Wal::open(Arc::new(storage.clone()), dir, fast_config(), 2, Vec::new()).unwrap();
        log_puts(&wal, &[(2, 3, 30)]); // lifetime 2 reuses the lost stamp range
        drop(wal);
        let rec = recover::<u64, u64>(&storage, dir).unwrap();
        assert_eq!(rec.entries, vec![(1, 10), (3, 30)]);
        assert!(rec.truncated_tail);
        assert_eq!(rec.max_stamp, 2);
    }

    #[test]
    fn segment_with_damaged_header_stops_recovery_conservatively() {
        let storage = MemStorage::new();
        let wal = Wal::open(
            Arc::new(storage.clone()),
            Path::new(DIR),
            fast_config(),
            1,
            Vec::new(),
        )
        .unwrap();
        log_puts(&wal, &[(1, 1, 10)]);
        drop(wal);
        let path = Path::new(DIR).join(segment_name(1));
        let mut bytes = storage.bytes(&path).unwrap();
        bytes[0] = b'X'; // magic damage
        storage.put(&path, bytes);
        let rec = recover::<u64, u64>(&storage, Path::new(DIR)).unwrap();
        assert!(rec.truncated_tail);
        assert_eq!(rec.entries, vec![]);
        // The damaged segment still counts for sequence allocation.
        assert_eq!(rec.next_segment_seq, 2);
    }
}
