//! Byte-level encoding for keys, values, and frames.
//!
//! The WAL and checkpoint formats are deliberately simple: little-endian
//! fixed-width integers, length-prefixed byte strings, and a CRC32 (IEEE,
//! same polynomial as zlib) over every frame.  No external serialization
//! crate is used — the build environment vendors its dependencies, and the
//! handful of primitive encoders below are all the formats need.

/// A type that can round-trip through the WAL and checkpoint files.
///
/// Implementations must be *total* on the decode side: `decode` returns
/// `None` for malformed bytes rather than panicking, because recovery feeds
/// it attacker-grade garbage (torn tails, bit flips) by design.
pub trait Codec: Sized {
    /// Append this value's encoding to `buf`.
    fn encode_into(&self, buf: &mut Vec<u8>);

    /// Decode a value from exactly `bytes` (the container length-prefixes
    /// each field, so the slice boundary is authoritative).  `None` means
    /// the bytes are not a valid encoding.
    fn decode(bytes: &[u8]) -> Option<Self>;
}

macro_rules! int_codec {
    ($($ty:ty),*) => {$(
        impl Codec for $ty {
            fn encode_into(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(bytes: &[u8]) -> Option<Self> {
                Some(<$ty>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i8, i16, i32, i64, u128, i128);

impl Codec for String {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl Codec for Vec<u8> {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self);
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(bytes.to_vec())
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_field(buf, &self.0);
        put_field(buf, &self.1);
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut cur = Cursor::new(bytes);
        let a = A::decode(cur.take_bytes()?)?;
        let b = B::decode(cur.take_bytes()?)?;
        cur.finished().then_some((a, b))
    }
}

/// Append a `u32` length prefix followed by `bytes`.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(bytes);
}

/// Append a length-prefixed [`Codec`] field without a scratch allocation:
/// reserve the prefix, encode in place, patch the length.
pub fn put_field<T: Codec>(buf: &mut Vec<u8>, value: &T) {
    let at = buf.len();
    buf.extend_from_slice(&[0; 4]);
    value.encode_into(buf);
    let len = (buf.len() - at - 4) as u32;
    buf[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

/// A bounds-checked reader over an encoded payload.
///
/// Every accessor returns `Option`; running off the end of the slice is a
/// decode failure, never a panic.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    pub fn take_u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    pub fn take_u32(&mut self) -> Option<u32> {
        let end = self.pos.checked_add(4)?;
        let raw = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(u32::from_le_bytes(raw.try_into().ok()?))
    }

    pub fn take_u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let raw = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(u64::from_le_bytes(raw.try_into().ok()?))
    }

    /// Read a `u32` length prefix, then that many raw bytes.
    pub fn take_bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.take_u32()? as usize;
        let end = self.pos.checked_add(len)?;
        let raw = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(raw)
    }

    /// True when every byte has been consumed (trailing garbage is a
    /// decode failure for fixed-layout payloads).
    pub fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }

    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), the same checksum zlib and
/// ethernet use.  Table-driven, table built at compile time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn primitive_round_trips() {
        let mut buf = Vec::new();
        0xDEAD_BEEF_u64.encode_into(&mut buf);
        assert_eq!(u64::decode(&buf), Some(0xDEAD_BEEF));
        assert_eq!(u64::decode(&buf[..7]), None);

        let mut buf = Vec::new();
        "skip-hash".to_string().encode_into(&mut buf);
        assert_eq!(String::decode(&buf).as_deref(), Some("skip-hash"));
        assert_eq!(
            String::decode(&[0xFF, 0xFE]),
            None,
            "invalid UTF-8 is a decode failure"
        );
    }

    #[test]
    fn pair_round_trips_and_rejects_trailing_garbage() {
        let value = (7u64, "seven".to_string());
        let mut buf = Vec::new();
        value.encode_into(&mut buf);
        assert_eq!(<(u64, String)>::decode(&buf), Some(value));
        buf.push(0);
        assert_eq!(<(u64, String)>::decode(&buf), None);
        assert_eq!(<(u64, String)>::decode(&buf[..3]), None);
    }

    #[test]
    fn cursor_never_reads_out_of_bounds() {
        let mut cur = Cursor::new(&[1, 2, 3]);
        assert_eq!(cur.take_u8(), Some(1));
        assert_eq!(cur.take_u32(), None, "only two bytes remain");
        // A length prefix pointing past the end must fail, not panic.
        let bytes = [200u8, 0, 0, 0, 1];
        let mut cur = Cursor::new(&bytes);
        assert_eq!(cur.take_bytes(), None);
    }
}
