//! The file-system seam, and the fault-injecting implementation that makes
//! the recovery path testable.
//!
//! Everything above this module (WAL writer, checkpointer, recovery) talks
//! to [`Storage`] / [`StorageFile`] trait objects.  Three implementations:
//!
//! * [`StdStorage`] — the real file system, used in production and by the
//!   SIGKILL crash campaign (`tests/crash_recovery.rs`).
//! * [`MemStorage`] — a process-local in-memory file system.  Deterministic
//!   and fast; the gated `durability/` bench group uses it so the bench gate
//!   measures the log machinery, not the host's fsync latency.
//! * [`FaultStorage`] — [`MemStorage`] plus a programmable [`FaultPlan`]:
//!   torn writes at a byte offset, silent short writes, failed fsync,
//!   bit flips.  After a torn write or failed fsync the storage goes
//!   *dead* (every later call errors), modeling a crashed device; tests
//!   then recover from the surviving bytes via [`FaultStorage::mem`].
//!
//! `append` is all-or-error: a short write inside [`StdStorage`] is retried
//! by `write_all`.  Simulated short writes in [`FaultStorage`] deliberately
//! *lie* (drop bytes, report success) because that is the failure recovery
//! must survive via CRC framing, not one the writer can handle.

use std::collections::BTreeMap;
use std::io;
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// An open file handle: append-only writes plus whole-file reads.
pub trait StorageFile: Send {
    /// Append `data` at the end of the file (all-or-error).
    fn append(&mut self, data: &[u8]) -> io::Result<()>;
    /// Make previously appended bytes durable.
    fn sync(&mut self) -> io::Result<()>;
    /// Read the entire file from the start into `out`.
    fn read_to_vec(&mut self, out: &mut Vec<u8>) -> io::Result<()>;
    /// Current length in bytes.
    fn len(&self) -> io::Result<u64>;
    /// True when the file holds no bytes yet.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// A minimal file-system facade: everything the durability layer touches.
pub trait Storage: Send + Sync {
    /// Create (or truncate) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Create a file that must not yet exist
    /// ([`io::ErrorKind::AlreadyExists`] otherwise) — the mutual-exclusion
    /// primitive behind the directory lock.
    ///
    /// The default implementation is check-then-create and therefore racy
    /// against a concurrent creator; all in-tree storages override it with
    /// an atomic version (`O_EXCL`, or a check under the backing-map
    /// mutex).  Custom storages used with multi-process locking should do
    /// the same.
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        if self.open_read(path).is_ok() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "file already exists",
            ));
        }
        self.create(path)
    }
    /// Open an existing file for appending.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Open an existing file for reading.
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// File names (not full paths) directly inside `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Atomically replace `to` with `from`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Create `dir` and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Make directory metadata (created/renamed/removed entries) durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------------------
// Real file system
// ---------------------------------------------------------------------------

/// [`Storage`] backed by `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdStorage;

struct StdFile(std::fs::File);

impl StorageFile for StdFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.0.write_all(data)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn read_to_vec(&mut self, out: &mut Vec<u8>) -> io::Result<()> {
        self.0.seek(io::SeekFrom::Start(0))?;
        self.0.read_to_end(out)?;
        Ok(())
    }
    fn len(&self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }
}

impl Storage for StdStorage {
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(StdFile(
            std::fs::OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .read(true)
                .open(path)?,
        )))
    }
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(StdFile(
            std::fs::OpenOptions::new()
                .create_new(true)
                .write(true)
                .read(true)
                .open(path)?,
        )))
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(StdFile(
            std::fs::OpenOptions::new()
                .append(true)
                .read(true)
                .open(path)?,
        )))
    }
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(StdFile(std::fs::File::open(path)?)))
    }
    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        names.sort();
        Ok(names)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directory fsync makes renames/creates durable on POSIX.  A failed
        // open (ENOENT, EMFILE, ...) means the entries were NOT made
        // durable, so it must surface — swallowing it would silently skip
        // the barrier that makes segment creation and checkpoint renames
        // crash-safe.  Only Windows, where directories cannot be opened
        // this way (and metadata durability works differently), skips.
        #[cfg(windows)]
        {
            let _ = dir;
            Ok(())
        }
        #[cfg(not(windows))]
        {
            std::fs::File::open(dir)?.sync_all()
        }
    }
}

// ---------------------------------------------------------------------------
// In-memory file system
// ---------------------------------------------------------------------------

type FileMap = BTreeMap<PathBuf, Vec<u8>>;

/// An in-memory [`Storage`]: a shared path → bytes map.  Clones share the
/// same backing map, so a `MemStorage` handle doubles as the "disk" that
/// survives a simulated crash.
#[derive(Debug, Default, Clone)]
pub struct MemStorage {
    files: Arc<Mutex<FileMap>>,
}

/// Lock a mutex, surviving poison: the durability layer must keep working
/// (and recovery must run) even if some other thread panicked mid-update.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl MemStorage {
    pub fn new() -> Self {
        Self::default()
    }

    /// Direct read access to a stored file's bytes (test inspection).
    pub fn bytes(&self, path: &Path) -> Option<Vec<u8>> {
        lock(&self.files).get(path).cloned()
    }

    /// Overwrite a stored file's bytes (test mutilation).
    pub fn put(&self, path: &Path, bytes: Vec<u8>) {
        lock(&self.files).insert(path.to_path_buf(), bytes);
    }
}

struct MemFile {
    files: Arc<Mutex<FileMap>>,
    path: PathBuf,
}

impl StorageFile for MemFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        let mut files = lock(&self.files);
        match files.get_mut(&self.path) {
            Some(bytes) => {
                bytes.extend_from_slice(data);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "file removed")),
        }
    }
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
    fn read_to_vec(&mut self, out: &mut Vec<u8>) -> io::Result<()> {
        let files = lock(&self.files);
        match files.get(&self.path) {
            Some(bytes) => {
                out.extend_from_slice(bytes);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "file removed")),
        }
    }
    fn len(&self) -> io::Result<u64> {
        let files = lock(&self.files);
        files
            .get(&self.path)
            .map(|b| b.len() as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file removed"))
    }
}

impl Storage for MemStorage {
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        lock(&self.files).insert(path.to_path_buf(), Vec::new());
        Ok(Box::new(MemFile {
            files: Arc::clone(&self.files),
            path: path.to_path_buf(),
        }))
    }
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        // Atomic under the backing-map mutex, unlike the trait's default.
        let mut files = lock(&self.files);
        if files.contains_key(path) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "file already exists",
            ));
        }
        files.insert(path.to_path_buf(), Vec::new());
        Ok(Box::new(MemFile {
            files: Arc::clone(&self.files),
            path: path.to_path_buf(),
        }))
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        if !lock(&self.files).contains_key(path) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "no such file"));
        }
        Ok(Box::new(MemFile {
            files: Arc::clone(&self.files),
            path: path.to_path_buf(),
        }))
    }
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.open_append(path)
    }
    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let files = lock(&self.files);
        let mut names: Vec<String> = files
            .keys()
            .filter_map(|p| {
                (p.parent() == Some(dir))
                    .then(|| p.file_name()?.to_str().map(str::to_owned))
                    .flatten()
            })
            .collect();
        names.sort();
        Ok(names)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut files = lock(&self.files);
        match files.remove(from) {
            Some(bytes) => {
                files.insert(to.to_path_buf(), bytes);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }
    fn remove(&self, path: &Path) -> io::Result<()> {
        lock(&self.files)
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }
    fn create_dir_all(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }
    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// What should go wrong, and when.  Offsets count *cumulative appended
/// bytes* across all files, in append order, so a plan deterministically
/// places a fault inside a known frame regardless of file layout.
#[derive(Debug, Default, Clone, Copy)]
pub struct FaultPlan {
    /// Cut the append that crosses this cumulative offset (keep the prefix,
    /// drop the rest) and kill the storage: every later call errors.
    /// Models power loss mid-write.
    pub torn_write_at: Option<u64>,
    /// Silently drop the tail of the append crossing this offset but
    /// report success — the lying-disk case CRC framing exists for.
    /// One-shot.
    pub short_write_at: Option<u64>,
    /// Fail the N-th `sync` call (1-based) and kill the storage.  Models
    /// an fsync error, after which no later write can be trusted.
    pub fail_sync_at: Option<u64>,
    /// Flip bit `.1` of the byte written at cumulative offset `.0`.
    /// Models media corruption.
    pub flip_bit_at: Option<(u64, u8)>,
}

#[derive(Debug, Default)]
struct FaultState {
    appended: u64,
    syncs: u64,
    short_write_done: bool,
    dead: bool,
}

/// [`MemStorage`] plus a [`FaultPlan`].
///
/// After the plan kills the storage, tests recover from the surviving bytes
/// through [`FaultStorage::mem`] — a clean handle to the same backing map,
/// playing the role of the disk after reboot.
#[derive(Debug, Clone)]
pub struct FaultStorage {
    mem: MemStorage,
    plan: FaultPlan,
    state: Arc<Mutex<FaultState>>,
}

impl FaultStorage {
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            mem: MemStorage::new(),
            plan,
            state: Arc::new(Mutex::new(FaultState::default())),
        }
    }

    /// The surviving "disk": a fault-free view of the same backing map.
    pub fn mem(&self) -> MemStorage {
        self.mem.clone()
    }

    /// Whether a fault has killed the storage.
    pub fn is_dead(&self) -> bool {
        lock(&self.state).dead
    }

    fn check_alive(&self) -> io::Result<()> {
        if lock(&self.state).dead {
            Err(io::Error::other("storage dead after injected fault"))
        } else {
            Ok(())
        }
    }
}

struct FaultFile {
    inner: MemFile,
    plan: FaultPlan,
    state: Arc<Mutex<FaultState>>,
}

impl FaultFile {
    /// How many of `len` bytes to keep for a fault triggering at `at`,
    /// given `appended` bytes already written.
    fn cut_len(appended: u64, len: u64, at: u64) -> Option<u64> {
        (appended < at && at < appended + len).then_some(at - appended)
    }
}

impl StorageFile for FaultFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        let (kept, corrupt_at, kill) = {
            let mut st = lock(&self.state);
            if st.dead {
                return Err(io::Error::other("storage dead after injected fault"));
            }
            let len = data.len() as u64;
            let mut kept = len;
            let mut kill = false;
            if let Some(at) = self.plan.torn_write_at {
                if let Some(cut) = Self::cut_len(st.appended, len, at) {
                    kept = cut;
                    kill = true;
                }
            }
            if !kill && !st.short_write_done {
                if let Some(at) = self.plan.short_write_at {
                    if let Some(cut) = Self::cut_len(st.appended, len, at) {
                        kept = cut;
                        st.short_write_done = true;
                    }
                }
            }
            let corrupt_at = self.plan.flip_bit_at.and_then(|(at, bit)| {
                (st.appended <= at && at < st.appended + kept).then_some((at - st.appended, bit))
            });
            st.appended += kept;
            if kill {
                st.dead = true;
            }
            (kept as usize, corrupt_at, kill)
        };
        let mut owned;
        let payload = match corrupt_at {
            Some((off, bit)) => {
                owned = data[..kept].to_vec();
                owned[off as usize] ^= 1 << (bit & 7);
                &owned[..]
            }
            None => &data[..kept],
        };
        self.inner.append(payload)?;
        if kill {
            return Err(io::Error::other("torn write: storage dead"));
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut st = lock(&self.state);
        if st.dead {
            return Err(io::Error::other("storage dead after injected fault"));
        }
        st.syncs += 1;
        if self.plan.fail_sync_at == Some(st.syncs) {
            st.dead = true;
            return Err(io::Error::other("injected fsync failure"));
        }
        Ok(())
    }

    fn read_to_vec(&mut self, out: &mut Vec<u8>) -> io::Result<()> {
        self.inner.read_to_vec(out)
    }

    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }
}

impl Storage for FaultStorage {
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.check_alive()?;
        self.mem.create(path)?;
        Ok(Box::new(FaultFile {
            inner: MemFile {
                files: Arc::clone(&self.mem.files),
                path: path.to_path_buf(),
            },
            plan: self.plan,
            state: Arc::clone(&self.state),
        }))
    }
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.check_alive()?;
        self.mem.create_new(path)?;
        Ok(Box::new(FaultFile {
            inner: MemFile {
                files: Arc::clone(&self.mem.files),
                path: path.to_path_buf(),
            },
            plan: self.plan,
            state: Arc::clone(&self.state),
        }))
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.check_alive()?;
        self.mem.open_append(path)?;
        Ok(Box::new(FaultFile {
            inner: MemFile {
                files: Arc::clone(&self.mem.files),
                path: path.to_path_buf(),
            },
            plan: self.plan,
            state: Arc::clone(&self.state),
        }))
    }
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.check_alive()?;
        self.mem.open_read(path)
    }
    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.check_alive()?;
        self.mem.list(dir)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check_alive()?;
        self.mem.rename(from, to)
    }
    fn remove(&self, path: &Path) -> io::Result<()> {
        self.check_alive()?;
        self.mem.remove(path)
    }
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.check_alive()?;
        self.mem.create_dir_all(dir)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.check_alive()?;
        self.mem.sync_dir(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_round_trips_files() {
        let storage = MemStorage::new();
        let dir = Path::new("/d");
        let mut f = storage.create(&dir.join("a.log")).unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync().unwrap();
        assert_eq!(f.len().unwrap(), 11);
        let mut out = Vec::new();
        storage
            .open_read(&dir.join("a.log"))
            .unwrap()
            .read_to_vec(&mut out)
            .unwrap();
        assert_eq!(out, b"hello world");
        assert_eq!(storage.list(dir).unwrap(), vec!["a.log".to_string()]);
        storage
            .rename(&dir.join("a.log"), &dir.join("b.log"))
            .unwrap();
        assert_eq!(storage.list(dir).unwrap(), vec!["b.log".to_string()]);
        storage.remove(&dir.join("b.log")).unwrap();
        assert!(storage.list(dir).unwrap().is_empty());
        assert!(storage.open_read(&dir.join("b.log")).is_err());
    }

    #[test]
    fn torn_write_keeps_prefix_and_kills_storage() {
        let storage = FaultStorage::new(FaultPlan {
            torn_write_at: Some(4),
            ..FaultPlan::default()
        });
        let path = Path::new("/d/w.log");
        let mut f = storage.create(path).unwrap();
        assert!(f.append(b"abcdefgh").is_err());
        assert!(storage.is_dead());
        assert!(f.append(b"x").is_err());
        assert!(storage.list(Path::new("/d")).is_err());
        // The surviving disk holds exactly the torn prefix.
        assert_eq!(storage.mem().bytes(path).unwrap(), b"abcd");
    }

    #[test]
    fn short_write_lies_once() {
        let storage = FaultStorage::new(FaultPlan {
            short_write_at: Some(2),
            ..FaultPlan::default()
        });
        let path = Path::new("/d/w.log");
        let mut f = storage.create(path).unwrap();
        f.append(b"abcd").unwrap(); // reported success, silently cut
        f.append(b"efgh").unwrap(); // one-shot: this lands in full
        assert!(!storage.is_dead());
        assert_eq!(storage.mem().bytes(path).unwrap(), b"abefgh");
    }

    #[test]
    fn failed_sync_kills_storage() {
        let storage = FaultStorage::new(FaultPlan {
            fail_sync_at: Some(2),
            ..FaultPlan::default()
        });
        let mut f = storage.create(Path::new("/d/w.log")).unwrap();
        f.append(b"abcd").unwrap();
        f.sync().unwrap();
        assert!(f.sync().is_err());
        assert!(f.append(b"more").is_err());
    }

    #[test]
    fn bit_flip_corrupts_the_planned_byte() {
        let storage = FaultStorage::new(FaultPlan {
            flip_bit_at: Some((2, 0)),
            ..FaultPlan::default()
        });
        let path = Path::new("/d/w.log");
        let mut f = storage.create(path).unwrap();
        f.append(b"aa").unwrap();
        f.append(b"aa").unwrap();
        assert_eq!(storage.mem().bytes(path).unwrap(), b"aa\x60a");
    }

    #[test]
    fn std_storage_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("skh-storage-test-{}", std::process::id()));
        let storage = StdStorage;
        storage.create_dir_all(&dir).unwrap();
        let path = dir.join("a.log");
        let mut f = storage.create(&path).unwrap();
        f.append(b"payload").unwrap();
        f.sync().unwrap();
        drop(f);
        let mut out = Vec::new();
        storage
            .open_read(&path)
            .unwrap()
            .read_to_vec(&mut out)
            .unwrap();
        assert_eq!(out, b"payload");
        assert!(storage.list(&dir).unwrap().contains(&"a.log".to_string()));
        storage.sync_dir(&dir).unwrap();
        storage.remove(&path).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(not(windows))]
    #[test]
    fn std_sync_dir_surfaces_open_failures() {
        let missing = std::env::temp_dir().join(format!(
            "skh-storage-missing-{}-does-not-exist",
            std::process::id()
        ));
        let err = StdStorage.sync_dir(&missing).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
