//! [`DurableMap`]: a skip hash with a write-ahead log and checkpoints.
//!
//! The map layer ties the pieces together.  Opening a map recovers
//! whatever survived in its directory (checkpoint + WAL suffix), re-seeds
//! the STM clock past the highest recovered stamp, and starts a fresh log
//! segment.  After that, every *effectful* operation that goes through
//! [`DurableMap::transact`] (or the sealed conveniences built on it) is
//! recorded: the transaction body logs into a leased [`RecordBuf`] as it
//! runs, and the STM's commit-sequenced hook hands the buffer — stamped
//! with the real commit version — to the group-commit writer *at the
//! serialization point*, before the commit's writes are visible to other
//! transactions.  Aborted attempts drop their buffer; nothing is logged
//! for them.
//!
//! Reads are never logged, and read-only transactions cost the durability
//! layer nothing.
//!
//! # The acknowledged-durable contract
//!
//! A commit is durable once [`DurableMap::sync`] returns `Ok` after it
//! (the `*_durable` conveniences bundle the barrier).  The barrier is
//! *causal*: because records are enqueued before their commit becomes
//! visible, any commit whose effects the `sync` caller observed — its
//! own, or one it read on any thread — was enqueued before `sync`
//! sampled the queue, so an `Ok` covers it.
//!
//! Commits not yet synced may or may not survive a crash — group commit
//! means they usually do within a flush interval — but recovery always
//! reconstructs a *causally consistent prefix of the log order*: records
//! reach the file in submission order and a torn tail only ever removes a
//! suffix, so if commit `B` survived, so did every commit `B` could have
//! observed (in particular every earlier write to any key `B` touched).
//! Two *independent* unsynced commits from the same flush window may
//! survive out of stamp order — the suffix past the durable barrier is
//! causally closed, not necessarily a stamp-exact snapshot; everything at
//! or below an acknowledged `sync` is.
//!
//! # Caveats
//!
//! * The map must use a logical clock ([`skiphash_stm::ClockKind::Counter`]
//!   or [`skiphash_stm::ClockKind::Sampled`]); [`DurableMap::open`] fails on
//!   the hardware
//!   clock, which cannot be re-seeded after recovery.
//! * Writes that bypass the durable layer (via [`DurableMap::unlogged`])
//!   are invisible to the log and will not survive a crash.

use std::cell::Cell;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

use skiphash_stm::sync::{AtomicU64, Ordering};

use skiphash::{Config, SkipHash, Snapshot, TxView};
use skiphash::{MapKey, MapValue};
use skiphash_stm::{Stm, TxResult};

use crate::checkpoint::write_checkpoint;
use crate::codec::Codec;
use crate::lock::DirLock;
use crate::recovery::recover;
use crate::storage::{StdStorage, Storage};
use crate::wal::{RecordBuf, Wal, WalConfig};

/// What [`DurableMap::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Version of the checkpoint that seeded the state (0 = none).
    pub checkpoint_version: u64,
    /// WAL records replayed on top of it.
    pub records_replayed: u64,
    /// Highest commit stamp recovered; the clock resumed past this.
    pub max_stamp: u64,
    /// Whether a torn/corrupt tail had to be truncated.
    pub truncated_tail: bool,
}

/// Configuration for opening a [`DurableMap`].
pub struct DurableMapBuilder {
    dir: PathBuf,
    storage: Arc<dyn Storage>,
    wal: WalConfig,
    map_config: Config,
    checkpoint_every_ops: Option<u64>,
}

impl DurableMapBuilder {
    /// Start from defaults: real file system, default WAL tuning, default
    /// map configuration, manual checkpoints only.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            storage: Arc::new(StdStorage),
            wal: WalConfig::default(),
            map_config: Config::default(),
            checkpoint_every_ops: None,
        }
    }

    /// Use a custom [`Storage`] (in-memory, fault-injecting, ...).
    pub fn storage(mut self, storage: Arc<dyn Storage>) -> Self {
        self.storage = storage;
        self
    }

    /// Tune the group-commit writer.
    pub fn wal_config(mut self, config: WalConfig) -> Self {
        self.wal = config;
        self
    }

    /// Configure the underlying map (clock kind, index geometry, ...).
    pub fn map_config(mut self, config: Config) -> Self {
        self.map_config = config;
        self
    }

    /// Take a checkpoint automatically after roughly this many logged
    /// operations (best-effort: a failing automatic checkpoint is retried
    /// at the next threshold and reported through
    /// [`DurableMap::take_checkpoint_error`]).
    pub fn checkpoint_every_ops(mut self, ops: u64) -> Self {
        self.checkpoint_every_ops = Some(ops.max(1));
        self
    }

    /// Recover (or create) the map.
    pub fn open<K, V>(self) -> io::Result<DurableMap<K, V>>
    where
        K: MapKey + Codec,
        V: MapValue + Codec,
    {
        DurableMap::open_with(self)
    }
}

/// A crash-safe ordered map: a [`SkipHash`] plus WAL and checkpoints.
pub struct DurableMap<K: MapKey + Codec, V: MapValue + Codec> {
    map: SkipHash<K, V>,
    wal: Wal,
    storage: Arc<dyn Storage>,
    dir: PathBuf,
    recovery: RecoveryInfo,
    /// Serializes checkpoints (snapshot → write → truncate).
    checkpoint_lock: Mutex<()>,
    ops_since_checkpoint: AtomicU64,
    checkpoint_every_ops: Option<u64>,
    checkpoint_error: Mutex<Option<io::Error>>,
    /// Exclusive ownership of `dir`; released (lock file removed) on drop.
    _dir_lock: DirLock,
}

impl<K: MapKey + Codec, V: MapValue + Codec> std::fmt::Debug for DurableMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableMap")
            .field("dir", &self.dir)
            .field("len", &self.map.len())
            .field("recovery", &self.recovery)
            .finish()
    }
}

impl<K: MapKey + Codec, V: MapValue + Codec> DurableMap<K, V> {
    /// Open (recovering if necessary) a durable map in `dir` with default
    /// settings.  See [`DurableMapBuilder`] for knobs.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        DurableMapBuilder::new(dir).open()
    }

    /// Builder-style open.
    pub fn builder(dir: impl Into<PathBuf>) -> DurableMapBuilder {
        DurableMapBuilder::new(dir)
    }

    fn open_with(builder: DurableMapBuilder) -> io::Result<Self> {
        let DurableMapBuilder {
            dir,
            storage,
            wal,
            map_config,
            checkpoint_every_ops,
        } = builder;
        storage.create_dir_all(&dir)?;
        // Fail fast before touching any WAL/checkpoint file: two maps on
        // one directory would replay and truncate each other's log.
        let dir_lock = DirLock::acquire(Arc::clone(&storage), &dir)?;
        let recovered = recover::<K, V>(&*storage, &dir)?;
        let map = SkipHash::with_config(map_config);
        for (key, value) in &recovered.entries {
            map.insert(key.clone(), value.clone());
        }
        // New commits must mint stamps strictly above everything the log
        // already contains, or the next recovery would treat them as
        // already-covered duplicates.
        if !map.stm().advance_clock_to(recovered.max_stamp) {
            return Err(io::Error::other(
                "durable maps need a logical clock (Counter or Sampled): \
                 the hardware clock cannot be re-seeded after recovery",
            ));
        }
        let info = RecoveryInfo {
            checkpoint_version: recovered.checkpoint_version,
            records_replayed: recovered.records_replayed,
            max_stamp: recovered.max_stamp,
            truncated_tail: recovered.truncated_tail,
        };
        let wal = Wal::open(
            Arc::clone(&storage),
            &dir,
            wal,
            recovered.next_segment_seq,
            recovered.surviving_segments,
        )?;
        Ok(Self {
            map,
            wal,
            storage,
            dir,
            recovery: info,
            checkpoint_lock: Mutex::new(()),
            ops_since_checkpoint: AtomicU64::new(0),
            checkpoint_every_ops,
            checkpoint_error: Mutex::new(None),
            _dir_lock: dir_lock,
        })
    }

    /// What opening this map recovered.
    pub fn recovery_info(&self) -> RecoveryInfo {
        self.recovery
    }

    /// Run a transaction whose effectful operations are logged.
    ///
    /// The body sees a [`DurableView`] mirroring the composable
    /// [`TxView`] API; every effectful operation it performs is recorded
    /// and, if the attempt commits, appended to the WAL under the
    /// commit's real stamp.  Retried attempts re-lease a fresh record
    /// buffer, so aborted work never reaches the log.
    pub fn transact<T, F>(&self, mut body: F) -> T
    where
        F: FnMut(&mut DurableView<'_, '_, K, V>) -> TxResult<T>,
    {
        let committed_ops = Cell::new(0u64);
        let out = self.map.stm().run(|tx| {
            let mut buf = self.wal.lease();
            let out = {
                let mut view = DurableView {
                    inner: self.map.view(tx),
                    buf: &mut buf,
                };
                body(&mut view)?
            };
            committed_ops.set(u64::from(buf.op_count()));
            if !buf.is_empty() {
                // Sequenced, not post-commit: the record must be queued
                // before the commit is visible, or a dependent commit could
                // overtake it past the sync barrier (and past a tear).
                tx.on_commit_sequenced(move |stamp| buf.submit(stamp));
            }
            Ok(out)
        });
        // `run` returned, so the attempt that set `committed_ops` is the
        // one that committed.
        if committed_ops.get() > 0 {
            self.note_logged_ops(committed_ops.get());
        }
        out
    }

    fn note_logged_ops(&self, n: u64) {
        let Some(every) = self.checkpoint_every_ops else {
            self.ops_since_checkpoint.fetch_add(n, Ordering::Relaxed);
            return;
        };
        let before = self.ops_since_checkpoint.fetch_add(n, Ordering::Relaxed);
        if before < every && before + n >= every {
            self.ops_since_checkpoint.store(0, Ordering::Relaxed);
            if let Err(e) = self.checkpoint() {
                let mut slot = self
                    .checkpoint_error
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                *slot = Some(e);
            }
        }
    }

    /// The error from the most recent failed *automatic* checkpoint, if
    /// any (explicit [`DurableMap::checkpoint`] calls report directly).
    pub fn take_checkpoint_error(&self) -> Option<io::Error> {
        self.checkpoint_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }

    /// Insert `key` → `value` if absent; logged when effective.
    pub fn insert(&self, key: K, value: V) -> bool {
        self.transact(|view| view.insert(key.clone(), value.clone()))
    }

    /// Insert or replace; returns the previous value.  Always logged.
    pub fn upsert(&self, key: K, value: V) -> Option<V> {
        self.transact(|view| view.upsert(key.clone(), value.clone()))
    }

    /// Remove `key`; logged when it was present.
    pub fn remove(&self, key: &K) -> bool {
        self.transact(|view| view.remove(key))
    }

    /// Remove and return `key`'s value; logged when it was present.
    pub fn take(&self, key: &K) -> Option<V> {
        self.transact(|view| view.take(key))
    }

    /// Point lookup (reads are never logged).
    pub fn get(&self, key: &K) -> Option<V> {
        self.map.get(key)
    }

    /// Membership test.
    pub fn contains_key(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All entries in key order.
    pub fn to_vec(&self) -> Vec<(K, V)> {
        self.map.to_vec()
    }

    /// A consistent point-in-time snapshot (see `SkipHash::snapshot`).
    pub fn snapshot(&self) -> Snapshot<K, V> {
        self.map.snapshot()
    }

    /// Durability barrier: block until every commit submitted before this
    /// call is fsynced, or report the log's sticky failure.
    ///
    /// Coverage is causal: records are queued at the commit's
    /// serialization point (before its writes are visible), so `Ok` covers
    /// every logged commit whose effects this thread performed *or
    /// observed* before calling — there is no window where a commit you
    /// read can be acknowledged around while an earlier one it depended on
    /// is still un-queued.
    pub fn sync(&self) -> io::Result<()> {
        self.wal.sync()
    }

    /// [`DurableMap::upsert`], then wait for it to reach disk.
    pub fn upsert_durable(&self, key: K, value: V) -> io::Result<Option<V>> {
        let prev = self.upsert(key, value);
        self.sync()?;
        Ok(prev)
    }

    /// [`DurableMap::remove`], then wait for it to reach disk.
    pub fn remove_durable(&self, key: &K) -> io::Result<bool> {
        let removed = self.remove(key);
        self.sync()?;
        Ok(removed)
    }

    /// Write a checkpoint of the current state and truncate WAL segments
    /// it covers.  Returns the checkpointed version.
    pub fn checkpoint(&self) -> io::Result<u64> {
        let _guard = self
            .checkpoint_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let snap = self.map.snapshot();
        let at = snap.version();
        let entries = snap.to_vec();
        write_checkpoint(&*self.storage, &self.dir, &entries, at)?;
        // Seal the active segment so its records become truncatable by the
        // *next* checkpoint, then drop everything this one already covers.
        self.wal.request_rotation();
        self.wal.truncate_covered(at)?;
        Ok(at)
    }

    /// The underlying STM runtime (stats, clock).
    pub fn stm(&self) -> &Stm {
        self.map.stm()
    }

    /// The raw in-memory map.
    ///
    /// Writes made through this reference bypass the WAL and will NOT
    /// survive a crash; use it for reads, stats, and invariant checks.
    pub fn unlogged(&self) -> &SkipHash<K, V> {
        &self.map
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// The durable flavor of [`TxView`]: same operations, with the effectful
/// ones recorded for the WAL.
pub struct DurableView<'v, 't, K: MapKey + Codec, V: MapValue + Codec> {
    inner: TxView<'v, 't, K, V>,
    buf: &'v mut RecordBuf,
}

impl<K: MapKey + Codec, V: MapValue + Codec> DurableView<'_, '_, K, V> {
    /// Transactional lookup.
    pub fn get(&mut self, key: &K) -> TxResult<Option<V>> {
        self.inner.get(key)
    }

    /// Transactional membership test.
    pub fn contains_key(&mut self, key: &K) -> TxResult<bool> {
        self.inner.contains_key(key)
    }

    /// Transactional entry count.
    pub fn len(&mut self) -> TxResult<usize> {
        self.inner.len()
    }

    /// True when the map is transactionally empty.
    pub fn is_empty(&mut self) -> TxResult<bool> {
        Ok(self.inner.len()? == 0)
    }

    /// Insert if absent.  Logged only when it actually inserts: the
    /// operation is logged optimistically and rewound on the no-op path,
    /// avoiding a key/value clone.
    pub fn insert(&mut self, key: K, value: V) -> TxResult<bool> {
        let mark = self.buf.mark();
        self.buf.log_put(&key, &value);
        let inserted = self.inner.insert(key, value)?;
        if !inserted {
            self.buf.rewind(mark);
        }
        Ok(inserted)
    }

    /// Insert or replace.  Always logged.
    pub fn upsert(&mut self, key: K, value: V) -> TxResult<Option<V>> {
        self.buf.log_put(&key, &value);
        self.inner.upsert(key, value)
    }

    /// Remove.  Logged only when the key was present.
    pub fn remove(&mut self, key: &K) -> TxResult<bool> {
        let removed = self.inner.remove(key)?;
        if removed {
            self.buf.log_remove(key);
        }
        Ok(removed)
    }

    /// Remove and return.  Logged only when the key was present.
    pub fn take(&mut self, key: &K) -> TxResult<Option<V>> {
        let taken = self.inner.take(key)?;
        if taken.is_some() {
            self.buf.log_remove(key);
        }
        Ok(taken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{FaultPlan, FaultStorage, MemStorage};
    use std::time::Duration;

    fn fast_wal() -> WalConfig {
        WalConfig {
            flush_interval: Duration::from_micros(100),
            ..WalConfig::default()
        }
    }

    fn open_mem(storage: &MemStorage) -> DurableMap<u64, u64> {
        DurableMapBuilder::new("/db")
            .storage(Arc::new(storage.clone()))
            .wal_config(fast_wal())
            .open()
            .unwrap()
    }

    #[test]
    fn write_sync_reopen_recovers_everything() {
        let storage = MemStorage::new();
        {
            let map = open_mem(&storage);
            assert_eq!(map.recovery_info(), RecoveryInfo::default());
            assert!(map.insert(1, 10));
            assert_eq!(map.upsert(1, 11), Some(10));
            assert!(map.insert(2, 20));
            assert!(map.remove(&2));
            map.sync().unwrap();
        }
        let map = open_mem(&storage);
        assert_eq!(map.to_vec(), vec![(1, 11)]);
        let info = map.recovery_info();
        assert!(
            info.records_replayed >= 3,
            "replayed {}",
            info.records_replayed
        );
        assert!(!info.truncated_tail);
        // New commits mint stamps above everything recovered.
        assert!(map.stm().clock_now() >= info.max_stamp);
    }

    #[test]
    fn aborted_transactions_log_nothing() {
        let storage = MemStorage::new();
        {
            let map = open_mem(&storage);
            map.insert(1, 10);
            // A durable transact that aborts explicitly on its first two
            // attempts: only the committing attempt's effects may log.
            let mut attempts = 0;
            map.transact(|view| {
                attempts += 1;
                view.upsert(9, 99)?;
                view.remove(&9)?;
                view.upsert(5, attempts)?;
                if attempts < 3 {
                    return Err(skiphash_stm::TxAbort::Explicit);
                }
                Ok(())
            });
            map.sync().unwrap();
        }
        let map = open_mem(&storage);
        assert_eq!(
            map.to_vec(),
            vec![(1, 10), (5, 3)],
            "only committed effects recover; retried attempts log once"
        );
    }

    #[test]
    fn insert_noop_and_absent_remove_are_not_logged() {
        let storage = MemStorage::new();
        {
            let map = open_mem(&storage);
            assert!(map.insert(1, 10));
            assert!(!map.insert(1, 999), "second insert is a no-op");
            assert!(!map.remove(&42), "removing an absent key is a no-op");
            map.sync().unwrap();
        }
        let map = open_mem(&storage);
        assert_eq!(map.to_vec(), vec![(1, 10)]);
        // Exactly one record (the effective insert) was ever appended.
        assert_eq!(map.recovery_info().records_replayed, 1);
    }

    #[test]
    fn checkpoint_bounds_recovery_and_truncates() {
        let storage = MemStorage::new();
        {
            let map = open_mem(&storage);
            for i in 0..50u64 {
                map.upsert(i, i * 10);
            }
            map.sync().unwrap();
            let at = map.checkpoint().unwrap();
            assert!(at >= 50);
            for i in 50..60u64 {
                map.upsert(i, i * 10);
            }
            map.sync().unwrap();
        }
        let map = open_mem(&storage);
        let info = map.recovery_info();
        assert!(info.checkpoint_version >= 50);
        assert_eq!(
            info.records_replayed, 10,
            "only the post-checkpoint suffix replays"
        );
        assert_eq!(map.len(), 60);
        assert_eq!(map.get(&59), Some(590));
    }

    #[test]
    fn composed_transactions_replay_atomically() {
        let storage = MemStorage::new();
        {
            let map = open_mem(&storage);
            map.insert(1, 100);
            map.insert(2, 0);
            // A transfer: both effects in one commit record.
            map.transact(|view| {
                let a = view.get(&1)?.unwrap_or(0);
                view.upsert(1, a - 60)?;
                let b = view.get(&2)?.unwrap_or(0);
                view.upsert(2, b + 60)?;
                Ok(())
            });
            map.sync().unwrap();
        }
        let map = open_mem(&storage);
        assert_eq!(map.get(&1), Some(40));
        assert_eq!(map.get(&2), Some(60));
    }

    #[test]
    fn hardware_clock_is_rejected() {
        use skiphash_stm::ClockKind;
        let config = Config {
            clock: ClockKind::Hardware,
            ..Config::default()
        };
        let err = DurableMapBuilder::new("/db")
            .storage(Arc::new(MemStorage::new()))
            .map_config(config)
            .open::<u64, u64>()
            .unwrap_err();
        assert!(err.to_string().contains("logical clock"), "{err}");
    }

    #[test]
    fn failed_log_surfaces_through_sync_not_panic() {
        let fault = FaultStorage::new(FaultPlan {
            // Lock-file and header syncs ok, first batch sync fails.
            fail_sync_at: Some(3),
            ..FaultPlan::default()
        });
        let map: DurableMap<u64, u64> = DurableMapBuilder::new("/db")
            .storage(Arc::new(fault.clone()))
            .wal_config(fast_wal())
            .open()
            .unwrap();
        map.upsert(1, 1);
        assert!(map.sync().is_err());
        // The in-memory map still works; durability is what failed.
        assert_eq!(map.get(&1), Some(1));
        map.upsert(2, 2);
        assert!(map.sync().is_err(), "failure is sticky");
        // Recovery from the surviving bytes must not panic and must not
        // contain unacknowledged data beyond what reached the disk.
        let rec = crate::recovery::recover::<u64, u64>(&fault.mem(), Path::new("/db")).unwrap();
        assert!(rec.entries.len() <= 2);
    }

    #[test]
    fn oversized_commit_is_never_acknowledged() {
        use crate::wal::MAX_FRAME_BYTES;
        let storage = MemStorage::new();
        let open = || -> DurableMap<u64, Vec<u8>> {
            DurableMapBuilder::new("/db")
                .storage(Arc::new(storage.clone()))
                .wal_config(fast_wal())
                .open()
                .unwrap()
        };
        {
            let map = open();
            map.upsert(1, vec![1u8]);
            map.sync().unwrap();
            // A single value past the frame limit poisons the log: the
            // commit stands in memory but can never be acknowledged.
            map.upsert(2, vec![0u8; MAX_FRAME_BYTES as usize]);
            let err = map.sync().unwrap_err();
            assert!(err.to_string().contains("frame limit"), "{err}");
            assert_eq!(
                map.get(&2).map(|v| v.len()),
                Some(MAX_FRAME_BYTES as usize),
                "the in-memory commit stands; durability is what failed"
            );
            map.upsert(3, vec![3u8]);
            assert!(map.sync().is_err(), "the poison is sticky");
        }
        // Recovery sees exactly the acknowledged prefix — the oversized
        // record was refused at submit, not appended-then-unreadable.
        let map = open();
        assert_eq!(map.to_vec(), vec![(1, vec![1u8])]);
        assert!(!map.recovery_info().truncated_tail);
    }

    #[test]
    fn second_open_on_a_locked_directory_fails_fast() {
        let storage = MemStorage::new();
        let held = open_mem(&storage);
        held.insert(1, 10);
        let err = DurableMapBuilder::new("/db")
            .storage(Arc::new(storage.clone()))
            .wal_config(fast_wal())
            .open::<u64, u64>()
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert!(
            err.to_string().contains("locked by a live durable map"),
            "contended open explains itself: {err}"
        );
        // The loser must not have disturbed the winner's files: the held
        // map keeps working and a post-release reopen recovers its data.
        held.insert(2, 20);
        held.sync().unwrap();
        drop(held);
        let map = open_mem(&storage);
        assert_eq!(map.to_vec(), vec![(1, 10), (2, 20)]);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn stale_lock_from_a_crashed_process_is_broken() {
        let storage = MemStorage::new();
        {
            let map = open_mem(&storage);
            map.insert(1, 10);
            map.sync().unwrap();
        }
        // Forge the scar a SIGKILLed holder leaves: a lock file naming a
        // PID that no longer exists (u32::MAX is above pid_max).
        storage.put(
            Path::new("/db/LOCK"),
            format!("{}\n", u32::MAX).into_bytes(),
        );
        let map = open_mem(&storage);
        assert_eq!(
            map.to_vec(),
            vec![(1, 10)],
            "stale lock broken, data intact"
        );
    }

    #[test]
    fn automatic_checkpoints_fire_on_threshold() {
        let storage = MemStorage::new();
        let map: DurableMap<u64, u64> = DurableMapBuilder::new("/db")
            .storage(Arc::new(storage.clone()))
            .wal_config(fast_wal())
            .checkpoint_every_ops(10)
            .open()
            .unwrap();
        for i in 0..25u64 {
            map.upsert(i, i);
        }
        map.sync().unwrap();
        assert!(map.take_checkpoint_error().is_none());
        let images: Vec<String> = storage
            .list(Path::new("/db"))
            .unwrap()
            .into_iter()
            .filter(|n| crate::checkpoint::parse_checkpoint_name(n).is_some())
            .collect();
        assert_eq!(images.len(), 1, "old images are pruned: {images:?}");
    }
}
