//! Directory ownership: at most one live [`crate::DurableMap`] per
//! directory.
//!
//! Two maps appending to one directory would interleave WAL segments and
//! race checkpoint truncation — each would replay (and truncate!) the
//! other's log, silently corrupting both.  [`DirLock`] makes that
//! misconfiguration fail fast at [`crate::DurableMap::open`] instead:
//! opening takes a `LOCK` file via the storage's exclusive-create
//! primitive, and a second open on the same directory errors with the
//! holder's PID while the first map is alive.
//!
//! # Stale locks
//!
//! A SIGKILLed process never runs `Drop`, so its `LOCK` file survives.
//! The file therefore records the holder's PID; an acquirer that loses the
//! exclusive create reads it back and *breaks* the lock when the recorded
//! process is provably gone (on Linux: no `/proc/<pid>` entry), or when
//! the file carries no parseable PID at all — the scar of a process killed
//! between creating the file and writing its PID into it.  On platforms
//! without a liveness probe every existing lock is treated as contended
//! and must be removed by hand.
//!
//! Breaking is remove-then-retry in a bounded loop: if another acquirer
//! wins the re-create race we re-read *its* PID and report contention
//! against the new live holder rather than spinning.
//!
//! The PID test is a heuristic against PID reuse — a recycled PID makes a
//! stale lock look contended (safe: fails fast, operator removes the
//! file), never the reverse within one boot, because a live `/proc` entry
//! is exactly what "still running" means.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::storage::Storage;

/// Name of the lock file inside a durable map's directory.  Recovery and
/// the WAL ignore it (segment and checkpoint files are matched by name
/// pattern).
pub(crate) const LOCK_FILE: &str = "LOCK";

/// How many break-and-retry rounds an acquirer attempts before reporting
/// the directory as contended.  Each round only recurs if another process
/// re-created the lock in the window after we removed a stale one.
const MAX_ATTEMPTS: usize = 8;

/// Held directory lock; removing the lock file on drop releases it.
pub(crate) struct DirLock {
    storage: Arc<dyn Storage>,
    path: PathBuf,
}

impl std::fmt::Debug for DirLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirLock").field("path", &self.path).finish()
    }
}

impl DirLock {
    /// Take the lock for `dir`, breaking a stale one if its holder is
    /// provably dead.
    pub(crate) fn acquire(storage: Arc<dyn Storage>, dir: &Path) -> io::Result<Self> {
        let path = dir.join(LOCK_FILE);
        for _ in 0..MAX_ATTEMPTS {
            match storage.create_new(&path) {
                Ok(mut file) => {
                    file.append(format!("{}\n", std::process::id()).as_bytes())?;
                    file.sync()?;
                    return Ok(Self { storage, path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    match read_holder(&*storage, &path)? {
                        Some(pid) if process_alive(pid) => {
                            return Err(io::Error::new(
                                io::ErrorKind::WouldBlock,
                                format!(
                                    "directory {} is locked by a live durable map \
                                     (pid {pid}); a directory can host at most one \
                                     open DurableMap at a time",
                                    dir.display()
                                ),
                            ));
                        }
                        // Dead holder, or a PID-less scar: break the lock.
                        // A NotFound from the remove just means another
                        // acquirer broke it first; retry either way.
                        _ => match self::remove_ignoring_missing(&*storage, &path) {
                            Ok(()) => continue,
                            Err(e) => return Err(e),
                        },
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            format!(
                "directory {} lock did not settle after {MAX_ATTEMPTS} \
                 break-and-retry rounds",
                dir.display()
            ),
        ))
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        // Best-effort: a failed remove leaves a stale lock that the next
        // open breaks via the liveness probe.
        let _ = self.storage.remove(&self.path);
    }
}

/// The PID recorded in the lock file, or `None` when the file vanished or
/// holds no parseable PID (both mean "no provable live holder").
fn read_holder(storage: &dyn Storage, path: &Path) -> io::Result<Option<u32>> {
    let mut file = match storage.open_read(path) {
        Ok(file) => file,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut bytes = Vec::new();
    match file.read_to_vec(&mut bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    Ok(String::from_utf8_lossy(&bytes).trim().parse::<u32>().ok())
}

fn remove_ignoring_missing(storage: &dyn Storage, path: &Path) -> io::Result<()> {
    match storage.remove(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// Whether `pid` names a live process.
///
/// Linux: a `/proc/<pid>` entry exists exactly while the process (or a
/// zombie awaiting reap) does.  Elsewhere there is no portable probe the
/// storage seam can express, so every recorded holder counts as live —
/// stale locks on such platforms need manual removal, as the module docs
/// say.
fn process_alive(pid: u32) -> bool {
    #[cfg(target_os = "linux")]
    {
        Path::new("/proc").join(pid.to_string()).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn mem() -> Arc<dyn Storage> {
        Arc::new(MemStorage::new())
    }

    #[test]
    fn acquire_writes_own_pid_and_release_removes() {
        let storage = mem();
        let dir = Path::new("/db");
        let lock = DirLock::acquire(Arc::clone(&storage), dir).unwrap();
        assert_eq!(
            read_holder(&*storage, &dir.join(LOCK_FILE)).unwrap(),
            Some(std::process::id())
        );
        drop(lock);
        assert!(read_holder(&*storage, &dir.join(LOCK_FILE))
            .unwrap()
            .is_none());
        // Released: a fresh acquire succeeds.
        DirLock::acquire(storage, dir).unwrap();
    }

    #[test]
    fn contended_acquire_fails_fast_with_holder_pid() {
        let storage = mem();
        let dir = Path::new("/db");
        let _held = DirLock::acquire(Arc::clone(&storage), dir).unwrap();
        let err = DirLock::acquire(Arc::clone(&storage), dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        let message = err.to_string();
        assert!(
            message.contains(&std::process::id().to_string()),
            "error names the live holder: {message}"
        );
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn stale_lock_from_dead_pid_is_broken() {
        let storage = MemStorage::new();
        let dir = Path::new("/db");
        // PIDs are bounded by /proc/sys/kernel/pid_max (< 2^22 by default,
        // hard-capped at 2^31); u32::MAX can never be live.
        storage.put(&dir.join(LOCK_FILE), format!("{}\n", u32::MAX).into_bytes());
        let lock = DirLock::acquire(Arc::new(storage.clone()), dir).unwrap();
        assert_eq!(
            read_holder(&storage, &dir.join(LOCK_FILE)).unwrap(),
            Some(std::process::id()),
            "the broken lock was re-taken under our own pid"
        );
        drop(lock);
    }

    #[test]
    fn pidless_scar_is_broken() {
        // A process killed between create_new and the PID append leaves an
        // empty file; garbage bytes get the same treatment.
        for scar in [&b""[..], b"not a pid\n"] {
            let storage = MemStorage::new();
            let dir = Path::new("/db");
            storage.put(&dir.join(LOCK_FILE), scar.to_vec());
            DirLock::acquire(Arc::new(storage), dir).unwrap();
        }
    }
}
