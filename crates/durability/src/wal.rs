//! The group-commit write-ahead log.
//!
//! # Hot path
//!
//! A transaction that wants durability leases a [`RecordBuf`] from the log's
//! pool, encodes its effectful operations into it as the body runs, and — if
//! the attempt reaches commit — hands the buffer to
//! `Txn::on_commit_sequenced`.  The action is one word (the boxed buffer),
//! so it rides the STM's inline action slots without a heap allocation; the
//! byte buffers themselves are pooled and recycled, so the steady state
//! allocates nothing.  Aborted attempts simply drop the buffer, which
//! returns it to the pool — nothing was logged, matching the STM's
//! exactly-once commit-action contract.
//!
//! The *sequenced* hook matters: it fires at the commit's serialization
//! point, after the attempt can no longer abort but **before** its writes
//! become visible to other transactions.  Submitting there gives the queue
//! a causal order — any commit that read this commit's effects necessarily
//! submitted after it — which is what lets [`Wal::sync`]'s simple
//! "everything submitted so far" watermark cover every commit the caller
//! could have observed (see the `map` module's contract docs).
//!
//! # Group commit
//!
//! Submitted records go into a queue drained by a single writer thread.  The
//! writer accumulates a batch (up to [`WalConfig::flush_interval`] of
//! waiting, or [`WalConfig::max_batch_bytes`] of records, whichever comes
//! first), sorts it by commit stamp, CRC32-frames each record, appends the
//! whole batch with one write, and fsyncs **once**.  Only after that fsync
//! does the durable watermark advance and [`Wal::sync`] callers wake: one
//! disk flush acknowledges every commit in the batch.  When the queue holds
//! more than [`WalConfig::queue_capacity_bytes`], submitters block
//! (backpressure) until the writer drains it.
//!
//! Stamps are assigned by the STM clock at commit, so records from
//! different threads may *enqueue* out of stamp order — and consecutive
//! batches may even overlap in stamp ranges.  That is fine: recovery sorts
//! all surviving records globally by stamp before replay (see
//! [`crate::recovery`]); batch-local sorting just keeps segments mostly
//! ordered so the sort is cheap.
//!
//! # Failure policy
//!
//! The log is fail-stop: the first append or fsync error poisons it, and so
//! does a commit record larger than [`MAX_FRAME_BYTES`] (recovery treats
//! bigger length prefixes as tail corruption, so appending one would write
//! a record that is acknowledged but unreadable — the oversized record is
//! dropped *before* it reaches the file).  The error is sticky — every
//! subsequent [`Wal::sync`] returns it — and later submissions are dropped
//! (they were never acknowledged, so the durability contract is intact).
//! A log that lied about an fsync cannot be trusted to order anything after
//! it, so there is deliberately no retry.
//!
//! # On-disk format
//!
//! ```text
//! segment  := header frame*
//! header   := "SKHW" version:u8(=1) seq:u64le
//! frame    := len:u32le crc:u32le payload      (crc = CRC32(payload))
//! payload  := stamp:u64le op_count:u32le op*
//! op       := tag:u8 (1=put,2=remove) key_field [value_field if put]
//! field    := len:u32le bytes
//! ```

use std::io;
use std::mem;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};
use std::time::{Duration, Instant};

use skiphash_stm::stats;

use crate::codec::{crc32, put_field, Codec, Cursor};
use crate::storage::{Storage, StorageFile};

/// Largest frame recovery will believe.  A length prefix beyond this is
/// treated as tail corruption, bounding the damage a flipped length byte
/// can do.  Enforced at the producer too: [`RecordBuf::submit`] poisons the
/// log instead of appending a record recovery would refuse to read, so an
/// oversized commit can never be acknowledged as durable.
pub const MAX_FRAME_BYTES: u32 = 1 << 24;

/// Segment header magic + format version.
pub const SEGMENT_MAGIC: &[u8; 4] = b"SKHW";
const SEGMENT_VERSION: u8 = 1;
/// Header length: magic + version byte + segment sequence number.
pub const SEGMENT_HEADER_BYTES: usize = 4 + 1 + 8;

const TAG_PUT: u8 = 1;
const TAG_REMOVE: u8 = 2;

/// Tuning knobs for the group-commit writer.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// How long the writer waits to accumulate a batch after the first
    /// record arrives.
    pub flush_interval: Duration,
    /// Flush as soon as a pending batch reaches this many bytes.
    pub max_batch_bytes: usize,
    /// Backpressure threshold: submitters block while the queue holds more
    /// than this.
    pub queue_capacity_bytes: usize,
    /// Seal the active segment and start a new one past this size.
    pub segment_max_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            flush_interval: Duration::from_millis(2),
            max_batch_bytes: 256 << 10,
            queue_capacity_bytes: 4 << 20,
            segment_max_bytes: 32 << 20,
        }
    }
}

/// `wal-<seq>.log`, zero-padded so lexicographic order is numeric order.
pub fn segment_name(seq: u64) -> String {
    format!("wal-{seq:012}.log")
}

/// Parse a segment file name back to its sequence number.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.len() != 12 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Record buffers
// ---------------------------------------------------------------------------

/// Payload prefix reserved for `stamp` + `op_count`, patched at submit.
const RECORD_HEADER_BYTES: usize = 8 + 4;

struct RecordBufInner {
    bytes: Vec<u8>,
    ops: u32,
    shared: Weak<Shared>,
}

/// A leased, reusable commit-record buffer.
///
/// One word wide (an optional box), so the post-commit closure that
/// captures it stays within the STM's inline-action limit.  Both the box
/// and its byte vector come from (and return to) the log's pools, so the
/// steady-state hot path allocates nothing.  Dropping an unsubmitted
/// buffer returns it — the abort path logs nothing.
pub struct RecordBuf(Option<Box<RecordBufInner>>);

impl RecordBuf {
    fn inner(&mut self) -> &mut RecordBufInner {
        match &mut self.0 {
            Some(inner) => inner,
            // Unreachable by construction: `submit` consumes the buffer.
            None => unreachable!("RecordBuf used after submit"),
        }
    }

    /// Record a put of `key` → `value`.
    pub fn log_put<K: Codec, V: Codec>(&mut self, key: &K, value: &V) {
        let inner = self.inner();
        inner.bytes.push(TAG_PUT);
        put_field(&mut inner.bytes, key);
        put_field(&mut inner.bytes, value);
        inner.ops += 1;
    }

    /// Record a removal of `key`.
    pub fn log_remove<K: Codec>(&mut self, key: &K) {
        let inner = self.inner();
        inner.bytes.push(TAG_REMOVE);
        put_field(&mut inner.bytes, key);
        inner.ops += 1;
    }

    /// True when no operation has been recorded (nothing to submit).
    pub fn is_empty(&self) -> bool {
        self.op_count() == 0
    }

    /// Number of operations recorded so far.
    pub fn op_count(&self) -> u32 {
        self.0.as_ref().map_or(0, |inner| inner.ops)
    }

    /// A rewind point.  Lets a caller log an operation optimistically and
    /// un-log it when the map reports a no-op (e.g. `insert` on an
    /// existing key) — cheaper than cloning keys/values to log after the
    /// fact.
    pub fn mark(&mut self) -> (usize, u32) {
        let inner = self.inner();
        (inner.bytes.len(), inner.ops)
    }

    /// Truncate back to a [`RecordBuf::mark`].
    pub fn rewind(&mut self, mark: (usize, u32)) {
        let inner = self.inner();
        inner.bytes.truncate(mark.0);
        inner.ops = mark.1;
    }

    /// Patch the commit stamp in and hand the record to the writer.
    ///
    /// Called from the commit-sequenced hook with the stamp the clock
    /// assigned to this commit, *before* the commit's writes become visible
    /// to other transactions — that ordering is what makes [`Wal::sync`]'s
    /// watermark cover every observable commit.  Blocks briefly under
    /// backpressure.  If the log has already failed or shut down the record
    /// is dropped: it was never acknowledged, so dropping it cannot break
    /// the durability contract.  A record larger than [`MAX_FRAME_BYTES`]
    /// poisons the log instead of being appended: recovery would treat its
    /// length prefix as tail corruption, so acknowledging it would be a lie.
    pub fn submit(mut self, stamp: u64) {
        let Some(mut inner) = self.0.take() else {
            return;
        };
        let Some(shared) = inner.shared.upgrade() else {
            return; // log torn down; nowhere to recycle to either
        };
        if inner.bytes.len() > MAX_FRAME_BYTES as usize {
            let len = inner.bytes.len();
            // Drop the oversized allocation rather than pooling it.
            inner.bytes = Vec::new();
            inner.ops = 0;
            let mut st = lock(&shared.state);
            st.buf_pool.push(inner);
            if st.error.is_none() {
                st.error = Some(format!(
                    "commit record of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte \
                     frame limit; log poisoned before the record could be appended"
                ));
            }
            drop(st);
            shared.durable_cv.notify_all();
            shared.space_cv.notify_all();
            shared.work_cv.notify_one();
            return;
        }
        inner.bytes[0..8].copy_from_slice(&stamp.to_le_bytes());
        inner.bytes[8..12].copy_from_slice(&inner.ops.to_le_bytes());
        let bytes = mem::take(&mut inner.bytes);
        inner.ops = 0;
        let mut st = lock(&shared.state);
        st.buf_pool.push(inner);
        while st.queue_bytes > shared.config.queue_capacity_bytes
            && st.error.is_none()
            && !st.shutdown
        {
            st = shared
                .space_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if st.error.is_some() || st.shutdown {
            st.bytes_pool.push(bytes);
            return;
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.queue_bytes += bytes.len();
        st.queue.push(Pending { seq, stamp, bytes });
        drop(st);
        shared.work_cv.notify_one();
    }
}

impl Drop for RecordBuf {
    fn drop(&mut self) {
        let Some(mut inner) = self.0.take() else {
            return;
        };
        if let Some(shared) = inner.shared.upgrade() {
            let bytes = mem::take(&mut inner.bytes);
            inner.ops = 0;
            let mut st = lock(&shared.state);
            st.bytes_pool.push(bytes);
            st.buf_pool.push(inner);
        }
    }
}

// ---------------------------------------------------------------------------
// Shared writer state
// ---------------------------------------------------------------------------

struct Pending {
    seq: u64,
    stamp: u64,
    bytes: Vec<u8>,
}

#[derive(Default)]
struct State {
    queue: Vec<Pending>,
    queue_bytes: usize,
    /// Next submission sequence number; `durable_seq` trails it.
    next_seq: u64,
    /// Every submission with `seq <= durable_seq` has been fsynced.
    durable_seq: u64,
    /// Sticky first failure; poisons the log.
    error: Option<String>,
    shutdown: bool,
    rotate_request: bool,
    bytes_pool: Vec<Vec<u8>>,
    // The Box IS the pooled allocation: `lease` hands it out inside a
    // `RecordBuf` and `submit` returns it, so storing inners by value
    // would re-box on every lease.
    #[allow(clippy::vec_box)]
    buf_pool: Vec<Box<RecordBufInner>>,
}

struct Shared {
    state: Mutex<State>,
    /// Writer waits here for records (and for shutdown).
    work_cv: Condvar,
    /// Submitters wait here under backpressure.
    space_cv: Condvar,
    /// `sync` callers wait here for the durable watermark.
    durable_cv: Condvar,
    config: WalConfig,
}

/// A sealed (rotated) segment and the largest stamp recorded in it; a
/// checkpoint at version `>= max_stamp` makes the whole file garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SealedSegment {
    pub(crate) seq: u64,
    pub(crate) max_stamp: u64,
}

#[derive(Default)]
struct Segments {
    sealed: Vec<SealedSegment>,
}

// ---------------------------------------------------------------------------
// The log
// ---------------------------------------------------------------------------

/// The group-commit write-ahead log: leased buffers in, fsynced batches out.
pub struct Wal {
    shared: Arc<Shared>,
    segments: Arc<Mutex<Segments>>,
    storage: Arc<dyn Storage>,
    dir: PathBuf,
    writer: Option<std::thread::JoinHandle<()>>,
}

impl Wal {
    /// Open the log in `dir`, starting a fresh segment `start_seq` (which
    /// must be newer than every existing segment — recovery hands us
    /// `max_seen + 1`).  `preexisting` seeds the sealed-segment registry so
    /// checkpoints can truncate pre-crash segments too.
    pub(crate) fn open(
        storage: Arc<dyn Storage>,
        dir: &Path,
        config: WalConfig,
        start_seq: u64,
        preexisting: Vec<SealedSegment>,
    ) -> io::Result<Self> {
        storage.create_dir_all(dir)?;
        let file = create_segment(&*storage, dir, start_seq)?;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                next_seq: 1,
                ..State::default()
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            durable_cv: Condvar::new(),
            config,
        });
        let segments = Arc::new(Mutex::new(Segments {
            sealed: preexisting,
        }));
        let writer = {
            let shared = Arc::clone(&shared);
            let segments = Arc::clone(&segments);
            let storage = Arc::clone(&storage);
            let dir = dir.to_path_buf();
            std::thread::Builder::new()
                .name("skh-wal-writer".into())
                .spawn(move || writer_loop(shared, segments, storage, dir, file, start_seq))
                .map_err(|e| io::Error::other(format!("spawn wal writer: {e}")))?
        };
        Ok(Self {
            shared,
            segments,
            storage,
            dir: dir.to_path_buf(),
            writer: Some(writer),
        })
    }

    /// Lease a record buffer from the pool.
    pub fn lease(&self) -> RecordBuf {
        let mut st = lock(&self.shared.state);
        let mut inner = st.buf_pool.pop().unwrap_or_else(|| {
            Box::new(RecordBufInner {
                bytes: Vec::new(),
                ops: 0,
                shared: Weak::new(),
            })
        });
        let mut bytes = st.bytes_pool.pop().unwrap_or_default();
        drop(st);
        bytes.clear();
        bytes.resize(RECORD_HEADER_BYTES, 0);
        inner.bytes = bytes;
        inner.ops = 0;
        inner.shared = Arc::downgrade(&self.shared);
        RecordBuf(Some(inner))
    }

    /// Durability barrier: block until everything submitted before this
    /// call is fsynced, or return the log's sticky error.
    pub fn sync(&self) -> io::Result<()> {
        let shared = &self.shared;
        let mut st = lock(&shared.state);
        let target = st.next_seq - 1;
        loop {
            if let Some(msg) = &st.error {
                return Err(io::Error::other(msg.clone()));
            }
            if st.durable_seq >= target {
                return Ok(());
            }
            if st.shutdown {
                return Err(io::Error::other("wal shut down with pending records"));
            }
            st = shared
                .durable_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Ask the writer to seal the active segment at its next opportunity
    /// (checkpointing calls this so the pre-checkpoint tail becomes
    /// truncatable once covered).
    pub(crate) fn request_rotation(&self) {
        lock(&self.shared.state).rotate_request = true;
        self.shared.work_cv.notify_one();
    }

    /// Delete sealed segments entirely covered by a durable checkpoint at
    /// `covered_version`.  Best-effort: the first I/O error is returned,
    /// but every deletable segment is attempted — a half-finished
    /// truncation only leaves stale segments recovery will skip by stamp.
    pub(crate) fn truncate_covered(&self, covered_version: u64) -> io::Result<()> {
        let mut seg = lock(&self.segments);
        let mut first_err = None;
        seg.sealed.retain(|s| {
            if s.max_stamp > covered_version {
                return true;
            }
            match self.storage.remove(&self.dir.join(segment_name(s.seq))) {
                Ok(()) => false,
                Err(e) if e.kind() == io::ErrorKind::NotFound => false,
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    true
                }
            }
        });
        drop(seg);
        let sync_res = self.storage.sync_dir(&self.dir);
        match first_err {
            Some(e) => Err(e),
            None => sync_res,
        }
    }

    /// The log's sticky failure, if any (None means healthy).
    pub fn error(&self) -> Option<String> {
        lock(&self.shared.state).error.clone()
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            // Break the buffer pools' back-references so nothing keeps the
            // shared state alive once the log is gone.
            st.buf_pool.clear();
        }
        self.shared.work_cv.notify_all();
        self.shared.space_cv.notify_all();
        self.shared.durable_cv.notify_all();
        if let Some(handle) = self.writer.take() {
            let _ = handle.join();
        }
    }
}

fn create_segment(storage: &dyn Storage, dir: &Path, seq: u64) -> io::Result<Box<dyn StorageFile>> {
    let mut file = storage.create(&dir.join(segment_name(seq)))?;
    let mut header = Vec::with_capacity(SEGMENT_HEADER_BYTES);
    header.extend_from_slice(SEGMENT_MAGIC);
    header.push(SEGMENT_VERSION);
    header.extend_from_slice(&seq.to_le_bytes());
    file.append(&header)?;
    file.sync()?;
    storage.sync_dir(dir)?;
    Ok(file)
}

// ---------------------------------------------------------------------------
// Writer thread
// ---------------------------------------------------------------------------

fn writer_loop(
    shared: Arc<Shared>,
    segments: Arc<Mutex<Segments>>,
    storage: Arc<dyn Storage>,
    dir: PathBuf,
    mut active: Box<dyn StorageFile>,
    mut active_seq: u64,
) {
    let mut active_bytes = SEGMENT_HEADER_BYTES as u64;
    let mut active_max_stamp = 0u64;
    let mut batch: Vec<Pending> = Vec::new();
    let mut frame_buf: Vec<u8> = Vec::new();

    loop {
        let rotate_asked;
        {
            let mut st = lock(&shared.state);
            loop {
                if st.error.is_some() {
                    // Submit-side poison (oversized record): fail-stop like
                    // our own I/O errors — queued records were never
                    // acknowledged, so dropping them is safe.
                    st.queue.clear();
                    st.queue_bytes = 0;
                    drop(st);
                    shared.durable_cv.notify_all();
                    shared.space_cv.notify_all();
                    return;
                }
                if !st.queue.is_empty() {
                    break;
                }
                if st.shutdown {
                    return;
                }
                if st.rotate_request {
                    break; // rotate even with nothing to flush
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            // Group-commit accumulation: give other committers a chance to
            // join this batch's single fsync.
            let deadline = Instant::now() + shared.config.flush_interval;
            while !st.queue.is_empty()
                && st.queue_bytes < shared.config.max_batch_bytes
                && !st.shutdown
                && st.error.is_none()
            {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = shared
                    .work_cv
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            mem::swap(&mut batch, &mut st.queue);
            st.queue_bytes = 0;
            rotate_asked = mem::take(&mut st.rotate_request);
            shared.space_cv.notify_all();
        }

        if !batch.is_empty() {
            // Stamp order within the batch keeps segments near-sorted;
            // recovery's global sort does the rest.
            batch.sort_by_key(|p| p.stamp);
            frame_buf.clear();
            for p in &batch {
                frame_buf.extend_from_slice(&(p.bytes.len() as u32).to_le_bytes());
                frame_buf.extend_from_slice(&crc32(&p.bytes).to_le_bytes());
                frame_buf.extend_from_slice(&p.bytes);
            }
            let last_seq = batch.iter().map(|p| p.seq).max().unwrap_or(0);
            let max_stamp = batch.iter().map(|p| p.stamp).max().unwrap_or(0);
            let records = batch.len() as u64;

            let result = active.append(&frame_buf).and_then(|()| active.sync());
            let mut st = lock(&shared.state);
            match result {
                Ok(()) => {
                    active_bytes += frame_buf.len() as u64;
                    active_max_stamp = active_max_stamp.max(max_stamp);
                    st.durable_seq = st.durable_seq.max(last_seq);
                    for p in batch.drain(..) {
                        st.bytes_pool.push(p.bytes);
                    }
                    drop(st);
                    stats::note_wal_records_appended(records);
                    stats::note_group_commit_flush();
                    shared.durable_cv.notify_all();
                }
                Err(e) => {
                    st.error = Some(format!("wal append/fsync failed: {e}"));
                    batch.clear();
                    st.queue.clear();
                    st.queue_bytes = 0;
                    drop(st);
                    shared.durable_cv.notify_all();
                    shared.space_cv.notify_all();
                    return;
                }
            }
        }

        let shutdown = {
            let st = lock(&shared.state);
            st.shutdown && st.queue.is_empty()
        };
        if shutdown {
            return;
        }

        if rotate_asked || active_bytes >= shared.config.segment_max_bytes {
            match create_segment(&*storage, &dir, active_seq + 1) {
                Ok(next) => {
                    lock(&segments).sealed.push(SealedSegment {
                        seq: active_seq,
                        max_stamp: active_max_stamp,
                    });
                    active = next;
                    active_seq += 1;
                    active_bytes = SEGMENT_HEADER_BYTES as u64;
                    active_max_stamp = 0;
                }
                Err(e) => {
                    let mut st = lock(&shared.state);
                    st.error = Some(format!("wal segment rotation failed: {e}"));
                    st.queue.clear();
                    st.queue_bytes = 0;
                    drop(st);
                    shared.durable_cv.notify_all();
                    shared.space_cv.notify_all();
                    return;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing (shared with recovery and with out-of-crate test oracles)
// ---------------------------------------------------------------------------

/// One logged operation, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op<K, V> {
    Put(K, V),
    Remove(K),
}

/// Walk the frames of a segment body, stopping at the first invalid frame.
///
/// "Invalid" covers every mutilation recovery must survive: a length prefix
/// running past the end of the file (torn tail), an oversized length
/// (flipped length bits), and a CRC mismatch (payload or header
/// corruption).  [`FrameIter::truncated`] reports whether iteration ended
/// at corruption rather than a clean end-of-file.
pub struct FrameIter<'a> {
    bytes: &'a [u8],
    pos: usize,
    truncated: bool,
}

impl<'a> FrameIter<'a> {
    pub fn new(body: &'a [u8]) -> Self {
        Self {
            bytes: body,
            pos: 0,
            truncated: false,
        }
    }

    /// Bytes consumed up to the end of the last valid frame.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// True when iteration stopped at a torn/corrupt frame rather than a
    /// clean end.
    pub fn truncated(&self) -> bool {
        self.truncated
    }
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.truncated || self.pos == self.bytes.len() {
            return None;
        }
        let mut cur = Cursor::new(&self.bytes[self.pos..]);
        let header = (|| {
            let len = cur.take_u32()?;
            let crc = cur.take_u32()?;
            Some((len, crc))
        })();
        let Some((len, crc)) = header else {
            self.truncated = true;
            return None;
        };
        if len == 0 || len > MAX_FRAME_BYTES || cur.remaining() < len as usize {
            self.truncated = true;
            return None;
        }
        let start = self.pos + 8;
        let payload = &self.bytes[start..start + len as usize];
        if crc32(payload) != crc {
            self.truncated = true;
            return None;
        }
        self.pos = start + len as usize;
        Some(payload)
    }
}

/// Validate a segment's header; returns its sequence number and the frame
/// body.  `None` means the header itself is damaged — the caller treats
/// the whole segment as an invalid tail.
pub fn parse_segment_header(bytes: &[u8]) -> Option<(u64, &[u8])> {
    if bytes.len() < SEGMENT_HEADER_BYTES || &bytes[0..4] != SEGMENT_MAGIC {
        return None;
    }
    if bytes[4] != SEGMENT_VERSION {
        return None;
    }
    let seq = u64::from_le_bytes(bytes[5..13].try_into().ok()?);
    Some((seq, &bytes[SEGMENT_HEADER_BYTES..]))
}

/// Decode a frame payload into its stamp and operations.  `None` for any
/// structural damage (recovery then skips the record — by construction
/// this only happens when a CRC collision admitted corrupt bytes, but the
/// decoder stays total anyway).
pub fn decode_record<K: Codec, V: Codec>(payload: &[u8]) -> Option<(u64, Vec<Op<K, V>>)> {
    let mut cur = Cursor::new(payload);
    let stamp = cur.take_u64()?;
    let count = cur.take_u32()?;
    let mut ops = Vec::with_capacity(count.min(1024) as usize);
    for _ in 0..count {
        match cur.take_u8()? {
            TAG_PUT => {
                let key = K::decode(cur.take_bytes()?)?;
                let value = V::decode(cur.take_bytes()?)?;
                ops.push(Op::Put(key, value));
            }
            TAG_REMOVE => {
                let key = K::decode(cur.take_bytes()?)?;
                ops.push(Op::Remove(key));
            }
            _ => return None,
        }
    }
    cur.finished().then_some((stamp, ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn open_mem() -> (MemStorage, Wal) {
        let storage = MemStorage::new();
        let wal = Wal::open(
            Arc::new(storage.clone()),
            Path::new("/wal"),
            WalConfig {
                flush_interval: Duration::from_micros(100),
                ..WalConfig::default()
            },
            1,
            Vec::new(),
        )
        .unwrap();
        (storage, wal)
    }

    type Records = Vec<(u64, Vec<Op<u64, u64>>)>;

    fn parse_all(storage: &MemStorage, seq: u64) -> (Records, bool) {
        let bytes = storage
            .bytes(&Path::new("/wal").join(segment_name(seq)))
            .unwrap();
        let (parsed_seq, body) = parse_segment_header(&bytes).unwrap();
        assert_eq!(parsed_seq, seq);
        let mut frames = FrameIter::new(body);
        let mut records = Vec::new();
        for payload in &mut frames {
            records.push(decode_record::<u64, u64>(payload).unwrap());
        }
        (records, frames.truncated())
    }

    #[test]
    fn submit_sync_round_trips_records() {
        let (storage, wal) = open_mem();
        let mut buf = wal.lease();
        buf.log_put(&1u64, &10u64);
        buf.log_remove(&2u64);
        assert!(!buf.is_empty());
        buf.submit(41);
        let mut buf = wal.lease();
        buf.log_put(&3u64, &30u64);
        buf.submit(40);
        wal.sync().unwrap();
        let (records, truncated) = parse_all(&storage, 1);
        assert!(!truncated);
        // Batch-sorted by stamp when both landed in one batch; at minimum
        // both records survive intact.
        let mut stamps: Vec<u64> = records.iter().map(|r| r.0).collect();
        stamps.sort_unstable();
        assert_eq!(stamps, vec![40, 41]);
        let r41 = records.iter().find(|r| r.0 == 41).unwrap();
        assert_eq!(
            r41.1,
            vec![Op::Put(1, 10), Op::Remove(2)],
            "ops preserve intra-record order"
        );
    }

    #[test]
    fn dropped_lease_logs_nothing_and_recycles() {
        let (storage, wal) = open_mem();
        let buf = wal.lease();
        assert!(buf.is_empty());
        drop(buf);
        let pooled = lock(&wal.shared.state).bytes_pool.len();
        assert_eq!(pooled, 1, "dropped lease banks its bytes");
        wal.sync().unwrap();
        let (records, _) = parse_all(&storage, 1);
        assert!(records.is_empty());
    }

    #[test]
    fn empty_sync_is_immediate_and_drop_joins_writer() {
        let (_storage, wal) = open_mem();
        wal.sync().unwrap();
        drop(wal); // must not hang
    }

    #[test]
    fn rotation_seals_segment_with_max_stamp() {
        let (storage, wal) = open_mem();
        let mut buf = wal.lease();
        buf.log_put(&1u64, &1u64);
        buf.submit(7);
        wal.sync().unwrap();
        wal.request_rotation();
        // The request wakes the writer, which rotates even with nothing to
        // flush; poll until the seal lands.  (Submitting another record
        // here instead would race: the writer may batch it into the old
        // segment before honoring the rotation request.)
        for _ in 0..1000 {
            if !lock(&wal.segments).sealed.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        let sealed = lock(&wal.segments).sealed.clone();
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].seq, 1);
        assert_eq!(sealed[0].max_stamp, 7);
        // Records submitted after the seal land in the new segment.
        let mut buf = wal.lease();
        buf.log_put(&2u64, &2u64);
        buf.submit(8);
        wal.sync().unwrap();
        let (records, _) = parse_all(&storage, 2);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].0, 8);
        // Truncating below the sealed max keeps the file; at it, deletes.
        wal.truncate_covered(6).unwrap();
        assert!(storage
            .bytes(&Path::new("/wal").join(segment_name(1)))
            .is_some());
        wal.truncate_covered(7).unwrap();
        assert!(storage
            .bytes(&Path::new("/wal").join(segment_name(1)))
            .is_none());
        assert!(lock(&wal.segments).sealed.is_empty());
    }

    #[test]
    fn failed_fsync_poisons_the_log() {
        use crate::storage::{FaultPlan, FaultStorage};
        // Segment creation costs one sync (header) plus one dir sync
        // (no-op for MemStorage-backed FaultStorage counts only file
        // syncs... the plan counts StorageFile::sync calls): header sync
        // is call 1, first batch sync is call 2.
        let storage = FaultStorage::new(FaultPlan {
            fail_sync_at: Some(2),
            ..FaultPlan::default()
        });
        let wal = Wal::open(
            Arc::new(storage.clone()),
            Path::new("/wal"),
            WalConfig {
                flush_interval: Duration::from_micros(100),
                ..WalConfig::default()
            },
            1,
            Vec::new(),
        )
        .unwrap();
        let mut buf = wal.lease();
        buf.log_put(&1u64, &1u64);
        buf.submit(1);
        let err = wal.sync().unwrap_err();
        assert!(err.to_string().contains("fsync"), "{err}");
        assert!(wal.error().is_some());
        // Later submissions are dropped, later syncs keep failing.
        let mut buf = wal.lease();
        buf.log_put(&2u64, &2u64);
        buf.submit(2);
        assert!(wal.sync().is_err());
    }

    #[test]
    fn oversized_record_poisons_instead_of_acknowledging() {
        let (storage, wal) = open_mem();
        let mut buf = wal.lease();
        // Payload = 12-byte record header + op overhead + a value just past
        // the frame limit: recovery would refuse the frame, so the producer
        // must refuse the record.
        buf.log_put(&1u64, &vec![0u8; MAX_FRAME_BYTES as usize]);
        buf.submit(1);
        let err = wal.sync().unwrap_err();
        assert!(err.to_string().contains("frame limit"), "{err}");
        assert!(wal.error().is_some());
        // The record never reached the segment: header only, no frames.
        let bytes = storage
            .bytes(&Path::new("/wal").join(segment_name(1)))
            .unwrap();
        assert_eq!(bytes.len(), SEGMENT_HEADER_BYTES);
        // The poison is sticky; later (well-sized) submissions are dropped.
        let mut buf = wal.lease();
        buf.log_put(&2u64, &2u64);
        buf.submit(2);
        assert!(wal.sync().is_err());
        let bytes = storage
            .bytes(&Path::new("/wal").join(segment_name(1)))
            .unwrap();
        assert_eq!(bytes.len(), SEGMENT_HEADER_BYTES);
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(parse_segment_name(&segment_name(42)), Some(42));
        assert_eq!(parse_segment_name("wal-123.log"), None);
        assert_eq!(parse_segment_name("ckpt-000000000042.img"), None);
        assert_eq!(parse_segment_name("wal-00000000004x.log"), None);
    }

    #[test]
    fn frame_iter_survives_mutilation() {
        let mut body = Vec::new();
        let payload = b"record-payload".to_vec();
        body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        body.extend_from_slice(&crc32(&payload).to_le_bytes());
        body.extend_from_slice(&payload);
        // Clean parse.
        let mut it = FrameIter::new(&body);
        assert_eq!(it.next(), Some(&payload[..]));
        assert!(it.next().is_none() && !it.truncated());
        // Torn tail: drop the last byte.
        let torn = &body[..body.len() - 1];
        let mut it = FrameIter::new(torn);
        assert!(it.next().is_none());
        assert!(it.truncated());
        // Flipped CRC bit.
        let mut flipped = body.clone();
        flipped[4] ^= 1;
        let mut it = FrameIter::new(&flipped);
        assert!(it.next().is_none());
        assert!(it.truncated());
        // Absurd length prefix.
        let mut huge = body.clone();
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut it = FrameIter::new(&huge);
        assert!(it.next().is_none());
        assert!(it.truncated());
    }
}
