//! Snapshot checkpoints: consistent full-map images beside the log.
//!
//! A checkpoint is the map's contents at one clock version — exactly what
//! `SkipHash::snapshot` produces without stalling writers.  On disk it is a
//! single self-validating file:
//!
//! ```text
//! image := "SKHC" version:u8(=1) at:u64le count:u64le entry* crc:u32le
//! entry := key_field value_field          (field := len:u32le bytes)
//! ```
//!
//! The trailing CRC32 covers every preceding byte, so recovery can tell a
//! complete image from a torn one with a single pass.  Writing is
//! crash-atomic: the image is built in `ckpt-<at>.tmp`, fsynced, renamed to
//! `ckpt-<at>.img`, and the directory is fsynced — a kill at any point
//! leaves either the old checkpoint set or the old set plus one new valid
//! image, never a half image under the real name.  Recovery deletes stray
//! `.tmp` files.
//!
//! A durable checkpoint at version `p` makes every WAL record with stamp
//! `<= p` redundant, which bounds both log growth and recovery time: the
//! caller then truncates sealed segments whose max stamp is `<= p` (see
//! `Wal::truncate_covered`) and deletes older images.

use std::io;
use std::path::Path;

use skiphash_stm::stats;

use crate::codec::{crc32, put_field, Codec, Cursor};
use crate::storage::Storage;

const CKPT_MAGIC: &[u8; 4] = b"SKHC";
const CKPT_VERSION: u8 = 1;

/// `ckpt-<version>.img`, zero-padded so lexicographic order is numeric.
pub fn checkpoint_name(version: u64) -> String {
    format!("ckpt-{version:020}.img")
}

fn checkpoint_tmp_name(version: u64) -> String {
    format!("ckpt-{version:020}.tmp")
}

/// Parse a checkpoint image name back to its version.
pub fn parse_checkpoint_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("ckpt-")?.strip_suffix(".img")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// True for the temp files a crashed checkpoint writer leaves behind.
pub fn is_checkpoint_tmp(name: &str) -> bool {
    name.starts_with("ckpt-") && name.ends_with(".tmp")
}

/// Serialize `entries` as the map's image at clock version `at`.
pub fn encode_checkpoint<K: Codec, V: Codec>(entries: &[(K, V)], at: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(CKPT_MAGIC);
    buf.push(CKPT_VERSION);
    buf.extend_from_slice(&at.to_le_bytes());
    buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (key, value) in entries {
        put_field(&mut buf, key);
        put_field(&mut buf, value);
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Decode and validate a checkpoint image.  `None` for any damage: bad
/// magic, bad CRC, torn tail, or fields that fail to decode.
pub fn decode_checkpoint<K: Codec, V: Codec>(bytes: &[u8]) -> Option<(u64, Vec<(K, V)>)> {
    if bytes.len() < 4 + 1 + 8 + 8 + 4 || &bytes[0..4] != CKPT_MAGIC || bytes[4] != CKPT_VERSION {
        return None;
    }
    let (body, crc_raw) = bytes.split_at(bytes.len() - 4);
    let crc = u32::from_le_bytes(crc_raw.try_into().ok()?);
    if crc32(body) != crc {
        return None;
    }
    let mut cur = Cursor::new(&body[5..]);
    let at = cur.take_u64()?;
    let count = cur.take_u64()?;
    let mut entries = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let key = K::decode(cur.take_bytes()?)?;
        let value = V::decode(cur.take_bytes()?)?;
        entries.push((key, value));
    }
    cur.finished().then_some((at, entries))
}

/// Write a durable checkpoint of `entries` at version `at` into `dir`
/// (temp file → fsync → rename → dir fsync), then delete older images.
///
/// Returns the image's file name.  Deleting older images is best-effort:
/// a failure there leaves redundant-but-valid files recovery will ignore,
/// so only the image write itself can fail the call.
pub fn write_checkpoint<K: Codec, V: Codec>(
    storage: &dyn Storage,
    dir: &Path,
    entries: &[(K, V)],
    at: u64,
) -> io::Result<String> {
    let bytes = encode_checkpoint(entries, at);
    let tmp = dir.join(checkpoint_tmp_name(at));
    let finl = dir.join(checkpoint_name(at));
    {
        let mut file = storage.create(&tmp)?;
        file.append(&bytes)?;
        file.sync()?;
    }
    storage.rename(&tmp, &finl)?;
    storage.sync_dir(dir)?;
    stats::note_checkpoint_written();

    // The new image supersedes every older one.
    if let Ok(names) = storage.list(dir) {
        for name in names {
            if let Some(version) = parse_checkpoint_name(&name) {
                if version < at {
                    let _ = storage.remove(&dir.join(&name));
                }
            }
        }
        let _ = storage.sync_dir(dir);
    }
    Ok(checkpoint_name(at))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{MemStorage, Storage};

    #[test]
    fn names_round_trip() {
        assert_eq!(parse_checkpoint_name(&checkpoint_name(7)), Some(7));
        assert_eq!(parse_checkpoint_name("ckpt-7.img"), None);
        assert_eq!(parse_checkpoint_name("wal-000000000001.log"), None);
        assert!(is_checkpoint_tmp("ckpt-00000000000000000007.tmp"));
        assert!(!is_checkpoint_tmp(&checkpoint_name(7)));
    }

    #[test]
    fn encode_decode_round_trips() {
        let entries = vec![(1u64, "one".to_string()), (2, "two".to_string())];
        let bytes = encode_checkpoint(&entries, 99);
        let (at, decoded) = decode_checkpoint::<u64, String>(&bytes).unwrap();
        assert_eq!(at, 99);
        assert_eq!(decoded, entries);
    }

    #[test]
    fn decode_rejects_every_mutilation() {
        let entries = vec![(1u64, 10u64), (2, 20)];
        let bytes = encode_checkpoint(&entries, 5);
        // Torn at every length.
        for cut in 0..bytes.len() {
            assert!(
                decode_checkpoint::<u64, u64>(&bytes[..cut]).is_none(),
                "torn image of {cut} bytes must not decode"
            );
        }
        // Single bit flip anywhere.
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 1;
            assert!(
                decode_checkpoint::<u64, u64>(&bad).is_none(),
                "bit flip at byte {byte} must not decode"
            );
        }
    }

    #[test]
    fn write_checkpoint_replaces_older_images() {
        let storage = MemStorage::new();
        let dir = Path::new("/ck");
        write_checkpoint(&storage, dir, &[(1u64, 1u64)], 10).unwrap();
        write_checkpoint(&storage, dir, &[(1u64, 2u64)], 20).unwrap();
        let names = storage.list(dir).unwrap();
        assert_eq!(names, vec![checkpoint_name(20)]);
        let bytes = storage.bytes(&dir.join(checkpoint_name(20))).unwrap();
        let (at, entries) = decode_checkpoint::<u64, u64>(&bytes).unwrap();
        assert_eq!((at, entries), (20, vec![(1, 2)]));
    }
}
