//! MVCC time-travel snapshots: arbitrarily long reads at one pinned version.
//!
//! [`SkipHash::snapshot`](crate::SkipHash::snapshot) pins the STM clock at
//! its current version `p` and
//! returns a [`Snapshot`] that answers `get` / `range` / full-scan / `len`
//! queries *exactly as the map stood at version `p`* — no matter how many
//! writers commit while the snapshot is alive, and no matter how long the
//! caller holds it.  Writers are never blocked: they commit at full speed,
//! and the STM's [`snapshot registry`](skiphash_stm::SnapshotPin) preserves
//! each payload a live snapshot still needs (and only those) until the last
//! snapshot pinned inside its validity window is dropped.
//!
//! # How a pinned read works
//!
//! Every [`TCell`](skiphash_stm::TCell) carries an ownership record whose
//! version is the commit timestamp of its last write.  A pinned read of a
//! cell at version `p` therefore has two cases:
//!
//! * orec version `<= p`: the current payload *is* the payload at `p` — read
//!   it in place (a validated optimistic read, no clone, no allocation);
//! * orec version `> p`: the payload at `p` was displaced after the pin — it
//!   lives in the runtime's history side table, kept there precisely because
//!   this pin's window covers it.
//!
//! Structural consistency follows from per-cell exactness: a commit stamps
//! *all* of its writes with one timestamp, so either every write of that
//! commit is visible at `p` or none is.  A traversal that resolves each hop
//! at `p` walks the very linked structure that existed at `p` — nodes
//! inserted later are bypassed (their predecessors' links at `p` predate the
//! stitch), nodes unstitched later are still reachable (the pre-unstitch
//! links are preserved in history).
//!
//! # Why borrowed hops stay valid
//!
//! The traversal reuses the borrowed-`RawNode` recipe of the transactional
//! fast paths: links are read in place and only final results are upgraded
//! to counted handles.  Between hops nothing pins an epoch guard, so the
//! validity argument is different from the transactional one — it rests on
//! the pin's custody:
//!
//! * A link payload visible at `p` is either still current or preserved in
//!   the history table; either way it is not freed while this pin is live
//!   (displacing commits see the pin — published before the traversal began
//!   — and route the payload into history instead of the reclamation queue).
//! * Link payloads hold **strong** [`NodeRef`](crate::node::NodeRef)s, so
//!   every node reachable at
//!   `p` keeps a positive reference count for the snapshot's whole lifetime;
//!   the node arena cannot recycle it.
//!
//! Dropping the [`Snapshot`] releases the pin; the history entries it alone
//! kept alive are trimmed and their node references dropped, so retention is
//! bounded by live snapshots rather than leaked (see `docs/PERF.md`).
//!
//! # Example
//!
//! ```
//! use skiphash::SkipHash;
//!
//! let map: SkipHash<u64, u64> = SkipHash::new();
//! for k in [1, 2, 3] {
//!     map.insert(k, k * 10);
//! }
//! let snap = map.snapshot();
//! map.insert(4, 40);
//! map.remove(&1);
//! // The snapshot still sees the pre-mutation state...
//! assert_eq!(snap.get(&1), Some(10));
//! assert_eq!(snap.get(&4), None);
//! assert_eq!(snap.len(), 3);
//! // ...while the live map has moved on.
//! assert_eq!(map.get(&1), None);
//! assert_eq!(map.len(), 3);
//! drop(snap); // releases custody of the displaced payloads
//! ```

use std::fmt;
use std::ops::Bound as StdBound;
use std::ops::RangeBounds;
use std::sync::Arc;

use skiphash_stm::SnapshotPin;

use crate::map::Inner;
use crate::node::RawNode;
use crate::range::{bound_as_ref, clone_bound, end_allows, range_is_empty, Range};
use crate::{MapKey, MapValue};

/// A read-only view of a [`SkipHash`](crate::SkipHash) frozen at one clock
/// version, created by [`SkipHash::snapshot`](crate::SkipHash::snapshot).
///
/// Every query on this handle — [`get`](Snapshot::get),
/// [`range`](Snapshot::range), [`to_vec`](Snapshot::to_vec),
/// [`len`](Snapshot::len) — observes the map exactly as it stood at
/// [`version()`](Snapshot::version), regardless of concurrent writers and of
/// how long ago the snapshot was taken.  Two reads from the same snapshot
/// can never disagree.
///
/// Reads run outside any transaction: they cannot abort, retry, or conflict
/// with writers, and they perform no steady-state allocation beyond the
/// values they return.  The handle owns a pin on the STM's snapshot
/// registry; drop it to release custody of the superseded payloads it keeps
/// alive.  See the [module docs](self) for the mechanism.
pub struct Snapshot<K: MapKey, V: MapValue> {
    inner: Arc<Inner<K, V>>,
    pin: SnapshotPin,
}

impl<K: MapKey, V: MapValue> fmt::Debug for Snapshot<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Snapshot")
            .field("version", &self.pin.version())
            .finish()
    }
}

impl<K: MapKey, V: MapValue> Snapshot<K, V> {
    pub(crate) fn new(inner: Arc<Inner<K, V>>, pin: SnapshotPin) -> Self {
        debug_assert!(pin.belongs_to(&inner.stm));
        Self { inner, pin }
    }

    /// The clock version this snapshot is pinned at.
    ///
    /// Every commit stamped at or before this version is visible; every
    /// later commit is not.
    pub fn version(&self) -> u64 {
        self.pin.version()
    }

    /// Read `cell`'s successor link at the pinned version, as a borrowed
    /// handle.
    ///
    /// # Safety
    ///
    /// The returned handle is valid while `self` is alive: the link payload
    /// it was read from is custody-protected by `self.pin` (see the module
    /// docs), and that payload holds a strong `NodeRef` keeping the node
    /// allocated.
    fn hop(&self, node: RawNode<K, V>, level: usize) -> RawNode<K, V> {
        // SAFETY: `node` obeys this snapshot's validity contract (it is the
        // head sentinel or came out of a previous `hop`).
        unsafe { node.node() }
            .level(level)
            .succ
            .read_pinned_with(&self.pin, RawNode::from_link)
            .expect("levels are always terminated by the tail sentinel")
    }

    /// True when `node` was logically present at the pinned version.
    fn present_at(&self, node: RawNode<K, V>) -> bool {
        // SAFETY: as in `hop`.
        unsafe { node.node() }
            .r_time
            .read_pinned_with(&self.pin, Option::is_none)
    }

    /// Clone `node`'s value as of the pinned version.
    fn value_at(&self, node: RawNode<K, V>) -> V {
        // SAFETY: as in `hop`.
        unsafe { node.node() }
            .value
            .read_pinned_with(&self.pin, Clone::clone)
            .expect("a non-sentinel node always carries a value")
    }

    /// Borrowed tower descent at the pinned version: the first node at level
    /// 0 (possibly the tail sentinel) whose key is `>= key`, exactly as the
    /// list was linked at `version()`.
    fn ceil_at(&self, key: &K) -> RawNode<K, V> {
        let list = &self.inner.skiplist;
        let mut pred = RawNode::from_ref(list.head());
        for level in (1..list.max_level()).rev() {
            loop {
                let next = self.hop(pred, level);
                // SAFETY: as in `hop`.
                if unsafe { next.node() }.bound.is_before(key) {
                    pred = next;
                } else {
                    break;
                }
            }
        }
        let mut curr = self.hop(pred, 0);
        // SAFETY: as in `hop`.
        while unsafe { curr.node() }.bound.is_before(key) {
            curr = self.hop(curr, 0);
        }
        curr
    }

    /// The value under `key` at the pinned version, if the key was present.
    ///
    /// `O(log n)` — a borrowed tower descent resolved at the snapshot's
    /// version; no transaction, no retry, no allocation beyond the returned
    /// clone.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut node = self.ceil_at(key);
        // Logically deleted duplicates of `key` may linger before the live
        // node (a remove + reinsert where the old node's unstitching was
        // deferred); scan every equal-key node for the one present at `p`.
        loop {
            // SAFETY: `node` obeys this snapshot's validity contract.
            let n = unsafe { node.node() };
            if n.is_tail() || n.bound.cmp_key(key) != std::cmp::Ordering::Equal {
                return None;
            }
            if self.present_at(node) {
                return Some(self.value_at(node));
            }
            node = self.hop(node, 0);
        }
    }

    /// True if `key` was present at the pinned version.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Every `(key, value)` pair whose key lies in `range`, in ascending key
    /// order, as of the pinned version.
    ///
    /// Accepts any [`RangeBounds`] expression, like
    /// [`SkipHash::range`](crate::SkipHash::range); inverted ranges yield an
    /// empty iterator.  Unlike the live-map query there is no fast/slow path
    /// split and no abort accounting — a pinned walk cannot conflict with
    /// anything.
    pub fn range<R: RangeBounds<K>>(&self, range: R) -> Range<K, V> {
        self.range_with(range, &K::clone)
    }

    /// Collection walk shared by [`Snapshot::range`] (keys cloned out) and
    /// [`Snapshot::range_copied`] (keys copied out), hopping on borrowed
    /// handles with the same successor prefetch as the live-map scan.
    fn range_with<R: RangeBounds<K>>(&self, range: R, extract: &impl Fn(&K) -> K) -> Range<K, V> {
        let start = clone_bound(range.start_bound());
        let end = clone_bound(range.end_bound());
        if range_is_empty(&start, &end) {
            return Range::new(Vec::new());
        }
        let mut node = match bound_as_ref(&start) {
            StdBound::Unbounded => self.hop(RawNode::from_ref(self.inner.skiplist.head()), 0),
            StdBound::Included(low) => self.ceil_at(low),
            StdBound::Excluded(low) => {
                // Skip every node carrying the excluded key, including
                // logically deleted duplicates lingering before the live one.
                let mut node = self.ceil_at(low);
                // SAFETY: as in `hop`.
                while !unsafe { node.node() }.is_tail()
                    && unsafe { node.node() }.bound.cmp_key(low) == std::cmp::Ordering::Equal
                {
                    node = self.hop(node, 0);
                }
                node
            }
        };
        let mut out = Vec::new();
        loop {
            // SAFETY: as in `hop`.
            let n = unsafe { node.node() };
            if n.is_tail() || !end_allows(&n.bound, bound_as_ref(&end)) {
                break;
            }
            let next = self.hop(node, 0);
            // Overlap the successor's cache miss with this element's
            // mark/value reads, exactly as in the transactional scan
            // (docs/PERF.md, Mechanism 6).
            next.prefetch();
            if self.present_at(node) {
                out.push((extract(n.key()), self.value_at(node)));
            }
            node = next;
        }
        Range::new(out)
    }

    /// Every `(key, value)` pair at the pinned version, in ascending key
    /// order.
    pub fn to_vec(&self) -> Vec<(K, V)> {
        self.range(..).collect()
    }

    /// Number of keys present at the pinned version.
    ///
    /// `O(shards)`: sums the transactional sharded population counter at the
    /// pinned version.  Per-cell resolution at one version is exact and a
    /// commit stamps all its writes with one timestamp, so the sum is the
    /// true population at `version()` — it always equals
    /// `self.to_vec().len()` without walking the list.
    pub fn len(&self) -> usize {
        let total = self.inner.tx_population.sum_pinned(&self.pin);
        debug_assert!(total >= 0, "pinned population sum went negative: {total}");
        total.max(0) as usize
    }

    /// True when no key was present at the pinned version.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Smallest present key `>= key` at the pinned version, if any.
    pub fn ceil_key(&self, key: &K) -> Option<K> {
        let mut node = self.ceil_at(key);
        loop {
            // SAFETY: as in `hop`.
            let n = unsafe { node.node() };
            if n.is_tail() {
                return None;
            }
            if self.present_at(node) {
                return Some(n.key().clone());
            }
            node = self.hop(node, 0);
        }
    }

    /// Upgrade the first present node at or after `key` to a counted handle
    /// (test support: lets assertions hold a node across snapshot drops).
    #[cfg(test)]
    fn ceil_node(&self, key: &K) -> Option<crate::node::NodeRef<K, V>> {
        let mut node = self.ceil_at(key);
        loop {
            // SAFETY: as in `hop`; upgrading inside the snapshot's lifetime.
            let n = unsafe { node.node() };
            if n.is_tail() {
                return None;
            }
            if self.present_at(node) {
                // SAFETY: handle read under the pinned guard of this scan.
                return Some(unsafe { node.upgrade() });
            }
            node = self.hop(node, 0);
        }
    }
}

impl<K: MapKey + Copy, V: MapValue> Snapshot<K, V> {
    /// [`Snapshot::range`] for `Copy` keys: keys are copied out of the node
    /// instead of cloned (see
    /// [`SkipHash::range_copied`](crate::SkipHash::range_copied) for why
    /// this is a separate method).
    pub fn range_copied<R: RangeBounds<K>>(&self, range: R) -> Range<K, V> {
        self.range_with(range, &|k: &K| *k)
    }

    /// [`Snapshot::to_vec`] for `Copy` keys (see [`Snapshot::range_copied`]).
    pub fn to_vec_copied(&self) -> Vec<(K, V)> {
        self.range_copied(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{RemovalPolicy, SkipHashBuilder};
    use crate::SkipHash;

    fn map() -> SkipHash<u64, u64> {
        SkipHashBuilder::new().buckets(64).max_level(8).build()
    }

    #[test]
    fn snapshot_ignores_later_inserts_removes_and_updates() {
        let map = map();
        for k in [2, 4, 6] {
            assert!(map.insert(k, k * 10));
        }
        let snap = map.snapshot();
        assert!(map.insert(3, 30));
        assert!(map.remove(&4));
        assert_eq!(map.upsert(6, 6666), Some(60));

        assert_eq!(snap.get(&2), Some(20));
        assert_eq!(snap.get(&3), None, "insert after the pin is invisible");
        assert_eq!(snap.get(&4), Some(40), "remove after the pin is invisible");
        assert_eq!(snap.get(&6), Some(60), "update after the pin is invisible");
        assert_eq!(snap.to_vec(), vec![(2, 20), (4, 40), (6, 60)]);
        assert_eq!(snap.len(), 3);
        assert_eq!(map.len(), 3);
        assert_eq!(map.get(&6), Some(6666));
    }

    #[test]
    fn snapshot_range_bounds_match_btreemap_at_the_pin() {
        use std::collections::BTreeMap;
        use std::ops::Bound::*;
        let map = map();
        for k in [1u64, 3, 5, 7, 9] {
            assert!(map.insert(k, k * 10));
        }
        let reference: BTreeMap<u64, u64> = [1u64, 3, 5, 7, 9].map(|k| (k, k * 10)).into();
        let snap = map.snapshot();
        // Mutate heavily after the pin; the snapshot must not notice.
        map.clear();
        for k in 0..20u64 {
            map.insert(k, k + 1000);
        }
        let cases = [
            (Unbounded, Unbounded),
            (Unbounded, Included(5)),
            (Included(3), Excluded(7)),
            (Excluded(3), Included(7)),
            (Excluded(0), Excluded(100)),
        ];
        for (start, end) in cases {
            let expected: Vec<(u64, u64)> = reference
                .range((start, end))
                .map(|(k, v)| (*k, *v))
                .collect();
            assert_eq!(
                snap.range((start, end)).collect::<Vec<_>>(),
                expected,
                "bounds ({start:?}, {end:?})"
            );
        }
        #[allow(clippy::reversed_empty_ranges)] // inverted ranges ARE the subject
        let inverted = snap.range(5..2).count();
        assert_eq!(inverted, 0, "inverted range is empty");
    }

    #[test]
    fn snapshot_sees_through_remove_reinsert_of_the_same_key() {
        let map = map();
        assert!(map.insert(5, 50));
        let before = map.snapshot();
        assert!(map.remove(&5));
        let between = map.snapshot();
        assert!(map.insert(5, 5555));

        assert_eq!(before.get(&5), Some(50));
        assert_eq!(between.get(&5), None);
        assert_eq!(map.get(&5), Some(5555));
        assert_eq!(before.len(), 1);
        assert_eq!(between.len(), 0);
        assert!(between.is_empty());
    }

    #[test]
    fn snapshot_survives_unstitch_deferral_policies() {
        // Buffered removal defers unstitching, so deleted duplicates linger
        // at level 0 — the snapshot walk must skip them at its version.
        let map: SkipHash<u64, u64> = SkipHashBuilder::new()
            .buckets(64)
            .max_level(8)
            .removal_policy(RemovalPolicy::Buffered(16))
            .build();
        for k in 0..32u64 {
            assert!(map.insert(k, k));
        }
        let snap = map.snapshot();
        for k in 0..32u64 {
            assert!(map.remove(&k));
        }
        for k in 0..32u64 {
            assert!(map.insert(k, k + 100));
        }
        assert_eq!(snap.len(), 32);
        let pairs = snap.to_vec();
        assert_eq!(pairs, (0..32u64).map(|k| (k, k)).collect::<Vec<_>>());
        assert_eq!(snap.ceil_key(&10), Some(10));
        assert!(map.check_invariants().is_ok());
    }

    #[test]
    fn node_handle_upgraded_from_snapshot_outlives_it() {
        let map = map();
        assert!(map.insert(7, 70));
        let snap = map.snapshot();
        assert!(map.remove(&7));
        let node = snap.ceil_node(&7).expect("present at the pin");
        drop(snap);
        // The counted handle keeps the node alive past the pin's custody.
        assert_eq!(*node.key(), 7);
    }

    #[test]
    fn snapshot_debug_names_its_version() {
        let map = map();
        map.insert(1, 1);
        let snap = map.snapshot();
        let dbg = format!("{snap:?}");
        assert!(dbg.contains("Snapshot"), "{dbg}");
        assert!(dbg.contains("version"), "{dbg}");
    }
}
