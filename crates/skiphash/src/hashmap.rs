//! A transactional closed-addressing hash map.
//!
//! The skip hash uses this map to route from a key directly to its skip list
//! node, which is what makes `lookup`, successful `remove`, and point queries
//! on present keys `O(1)`.  It is also exposed publicly because the paper's
//! evaluation includes a plain "STM hash map" baseline for workloads without
//! range queries.
//!
//! The table is a fixed array of buckets; each bucket is a single [`TCell`]
//! holding the bucket's chain.  Updates copy the (short) chain, which keeps
//! conflicts at bucket granularity — two updates conflict only when they hash
//! to the same bucket.
//!
//! Chains are `Chain`s (see the private `chain` module), not `Vec`s: the
//! copy-on-write
//! discipline clones a chain on every read and retires the displaced one on
//! every update, and with `Vec` buffers each of those paid the global
//! allocator.  `Chain` buffers come from the structure arena's size-classed
//! pools, so steady-state map operations recycle the same blocks instead
//! (`chain_recycle_hits` in `Stm::stats()` shows the effect).

use std::collections::hash_map::RandomState;
use std::fmt;
use std::hash::{BuildHasher, Hash};

use skiphash_stm::{TCell, TxResult, Txn};

use crate::chain::Chain;
use crate::MapValue;

/// A fixed-capacity, closed-addressing (chained) transactional hash map.
pub struct TxHashMap<K, T> {
    buckets: Vec<TCell<Chain<K, T>>>,
    hasher: RandomState,
}

impl<K, T> fmt::Debug for TxHashMap<K, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxHashMap")
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

impl<K, T> TxHashMap<K, T>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    T: MapValue,
{
    /// Create a map with `bucket_count` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_count` is zero.
    pub fn new(bucket_count: usize) -> Self {
        assert!(bucket_count > 0, "bucket count must be positive");
        Self {
            buckets: (0..bucket_count)
                .map(|_| TCell::new(Chain::new()))
                .collect(),
            hasher: RandomState::new(),
        }
    }

    /// Number of buckets (fixed at construction).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn bucket_for(&self, key: &K) -> &TCell<Chain<K, T>> {
        let hash = self.hasher.hash_one(key);
        let index = (hash % self.buckets.len() as u64) as usize;
        &self.buckets[index]
    }

    /// Transactionally look up `key`.
    ///
    /// Reads the bucket through `read_with`, so only the matching value is
    /// cloned — never the chain buffer.
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn get(&self, tx: &mut Txn<'_>, key: &K) -> TxResult<Option<T>> {
        self.bucket_for(key).read_with(tx, |chain| {
            chain
                .probe(key)
                .map(|index| chain.as_slice()[index].1.clone())
        })
    }

    /// Transactionally check for `key` without cloning anything.
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn contains(&self, tx: &mut Txn<'_>, key: &K) -> TxResult<bool> {
        self.bucket_for(key)
            .read_with(tx, |chain| chain.probe(key).is_some())
    }

    /// Transactionally collect every key (test helper; `O(buckets + n)`).
    pub fn keys(&self, tx: &mut Txn<'_>) -> TxResult<Vec<K>> {
        let mut out = Vec::new();
        for bucket in &self.buckets {
            let keys: Vec<K> =
                bucket.read_with(tx, |chain| chain.iter().map(|(k, _)| k.clone()).collect())?;
            out.extend(keys);
        }
        Ok(out)
    }

    /// Transactionally insert `key -> value` **only if `key` is absent**,
    /// returning whether the insertion happened.
    ///
    /// # This never overwrites
    ///
    /// Consistent with [`crate::SkipHash::insert`]'s set-style contract: a
    /// present key makes this return `false` and drop `value`, leaving the
    /// stored value untouched.  Use [`TxHashMap::upsert`] for the
    /// `std`-style overwrite-and-return-displaced behaviour.
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn insert(&self, tx: &mut Txn<'_>, key: K, value: T) -> TxResult<bool> {
        let cell = self.bucket_for(&key);
        let mut chain = cell.read(tx)?;
        if chain.probe(&key).is_some() {
            return Ok(false);
        }
        chain.push((key, value));
        cell.write(tx, chain)?;
        Ok(true)
    }

    /// Transactionally insert or overwrite `key -> value`, returning the
    /// displaced value if the key was already present (`std`-style
    /// semantics; contrast with the set-style [`TxHashMap::insert`]).
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn upsert(&self, tx: &mut Txn<'_>, key: K, value: T) -> TxResult<Option<T>> {
        let cell = self.bucket_for(&key);
        let mut chain = cell.read(tx)?;
        let previous = if let Some(index) = chain.probe(&key) {
            Some(std::mem::replace(chain.value_mut(index), value))
        } else {
            chain.push((key, value));
            None
        };
        cell.write(tx, chain)?;
        Ok(previous)
    }

    /// Transactionally remove `key`, returning its value if it was present.
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn remove(&self, tx: &mut Txn<'_>, key: &K) -> TxResult<Option<T>> {
        let cell = self.bucket_for(key);
        let mut chain = cell.read(tx)?;
        match chain.probe(key) {
            None => Ok(None),
            Some(index) => {
                let (_, value) = chain.swap_remove(index);
                cell.write(tx, chain)?;
                Ok(Some(value))
            }
        }
    }

    /// Transactionally count entries by scanning every bucket.
    ///
    /// This is `O(buckets)` and intended for tests and reporting.
    pub fn len(&self, tx: &mut Txn<'_>) -> TxResult<usize> {
        let mut total = 0;
        for bucket in &self.buckets {
            total += bucket.read(tx)?.len();
        }
        Ok(total)
    }

    /// Average chain length over non-empty buckets (reporting helper used to
    /// sanity-check the 70%-utilization guidance the paper follows).
    pub fn load_factor(&self, tx: &mut Txn<'_>) -> TxResult<f64> {
        Ok(self.len(tx)? as f64 / self.buckets.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skiphash_stm::Stm;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn insert_get_remove_round_trip() {
        let stm = Stm::new();
        let map: TxHashMap<u64, String> = TxHashMap::new(16);
        assert!(stm.run(|tx| map.insert(tx, 1, "one".to_string())));
        assert_eq!(stm.run(|tx| map.get(tx, &1)), Some("one".to_string()));
        assert!(stm.run(|tx| map.contains(tx, &1)));
        assert!(!stm.run(|tx| map.contains(tx, &2)));
        // Set-style: a second insert refuses to overwrite...
        assert!(!stm.run(|tx| map.insert(tx, 1, "uno".to_string())));
        assert_eq!(stm.run(|tx| map.get(tx, &1)), Some("one".to_string()));
        // ...while upsert overwrites and reports what it displaced.
        let prev = stm.run(|tx| map.upsert(tx, 1, "uno".to_string()));
        assert_eq!(prev, Some("one".to_string()));
        let fresh = stm.run(|tx| map.upsert(tx, 2, "two".to_string()));
        assert_eq!(fresh, None);
        assert_eq!(stm.run(|tx| map.remove(tx, &1)), Some("uno".to_string()));
        assert_eq!(stm.run(|tx| map.get(tx, &1)), None);
        assert_eq!(stm.run(|tx| map.remove(tx, &1)), None);
    }

    #[test]
    fn many_keys_in_few_buckets_chain_correctly() {
        let stm = Stm::new();
        let map: TxHashMap<u64, u64> = TxHashMap::new(3);
        for k in 0..100 {
            stm.run(|tx| map.insert(tx, k, k * 2).map(|_| ()));
        }
        assert_eq!(stm.run(|tx| map.len(tx)), 100);
        for k in 0..100 {
            assert_eq!(stm.run(|tx| map.get(tx, &k)), Some(k * 2));
        }
        let mut keys = stm.run(|tx| map.keys(tx));
        keys.sort_unstable();
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
        assert!(stm.run(|tx| map.load_factor(tx)) > 30.0);
    }

    #[test]
    fn len_matches_operations() {
        let stm = Stm::new();
        let map: TxHashMap<u64, u64> = TxHashMap::new(8);
        stm.run(|tx| map.insert(tx, 1, 1).map(|_| ()));
        stm.run(|tx| map.insert(tx, 2, 2).map(|_| ()));
        stm.run(|tx| map.remove(tx, &1).map(|_| ()));
        assert_eq!(stm.run(|tx| map.len(tx)), 1);
    }

    #[test]
    #[should_panic(expected = "bucket count")]
    fn zero_buckets_panics() {
        let _: TxHashMap<u64, u64> = TxHashMap::new(0);
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let stm = Arc::new(Stm::new());
        let map: Arc<TxHashMap<u64, u64>> = Arc::new(TxHashMap::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let stm = Arc::clone(&stm);
            let map = Arc::clone(&map);
            handles.push(thread::spawn(move || {
                for i in 0..200u64 {
                    let key = t * 1000 + i;
                    stm.run(|tx| map.insert(tx, key, key).map(|_| ()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stm.run(|tx| map.len(tx)), 800);
    }

    #[test]
    fn atomic_transfer_between_keys() {
        // Exercises multi-bucket transactions: move a value from one key to
        // another atomically and assert no intermediate state is observable.
        let stm = Arc::new(Stm::new());
        let map: Arc<TxHashMap<u64, u64>> = Arc::new(TxHashMap::new(32));
        stm.run(|tx| map.insert(tx, 0, 1000).map(|_| ()));
        let writer = {
            let stm = Arc::clone(&stm);
            let map = Arc::clone(&map);
            thread::spawn(move || {
                for i in 0..200u64 {
                    stm.run(|tx| {
                        let v = map.remove(tx, &i)?.expect("source key present");
                        map.insert(tx, i + 1, v)?;
                        Ok(())
                    });
                }
            })
        };
        let reader = {
            let stm = Arc::clone(&stm);
            let map = Arc::clone(&map);
            thread::spawn(move || {
                for _ in 0..500 {
                    let total = stm.run(|tx| {
                        let mut sum = 0;
                        for k in 0..=200u64 {
                            if let Some(v) = map.get(tx, &k)? {
                                sum += v;
                            }
                        }
                        Ok(sum)
                    });
                    assert_eq!(total, 1000, "value must never be duplicated or lost");
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(stm.run(|tx| map.get(tx, &200)), Some(1000));
    }
}
