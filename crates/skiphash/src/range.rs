//! Linearizable range queries.
//!
//! Implements §4.4 of the paper: a **fast path** that runs the whole range
//! query as a single `try_once` transaction, and a **slow path** that
//! registers with the [range query coordinator](crate::rqc::Rqc), acquires a
//! version number, and walks the range in many small transactions, pausing
//! only on *safe nodes* — nodes guaranteed not to be unstitched before the
//! query finishes.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use skiphash_stm::{TxResult, Txn};

use crate::config::RangePolicy;
use crate::map::SkipHash;
use crate::node::Node;
use crate::{MapKey, MapValue};

impl<K: MapKey, V: MapValue> SkipHash<K, V> {
    /// Collect every `(key, value)` pair with `low <= key <= high`, in
    /// ascending key order, as of a single linearization point.
    ///
    /// The execution strategy (fast path, slow path, or fast-then-slow) is
    /// chosen by the configured [`RangePolicy`].
    pub fn range(&self, low: &K, high: &K) -> Vec<(K, V)> {
        match self.config.range_policy {
            RangePolicy::FastOnly => loop {
                if let Some(result) = self.range_fast(low, high) {
                    return result;
                }
            },
            RangePolicy::SlowOnly => self.range_slow(low, high),
            RangePolicy::TwoPath { tries } => {
                for _ in 0..tries.max(1) {
                    if let Some(result) = self.range_fast(low, high) {
                        return result;
                    }
                }
                self.range_slow(low, high)
            }
        }
    }

    /// Perform exactly one fast-path attempt of a range query, returning
    /// `None` if the single transaction aborted.
    ///
    /// This exposes the building block [`SkipHash::range`] uses so callers
    /// (and the Table 1 benchmark) can implement custom fallback policies or
    /// measure abort behaviour directly.
    pub fn range_attempt_fast(&self, low: &K, high: &K) -> Option<Vec<(K, V)>> {
        self.range_fast(low, high)
    }

    /// One fast-path attempt: the entire query as a single transaction that
    /// does not retry on conflict.  Returns `None` if the attempt aborted.
    pub(crate) fn range_fast(&self, low: &K, high: &K) -> Option<Vec<(K, V)>> {
        let attempt = self.stm.try_once(|tx| {
            let mut out = Vec::new();
            let mut node = self.skiplist.ceil_raw(tx, low)?;
            while !node.is_tail() && node.bound.is_at_most(high) {
                if !node.is_logically_deleted(tx)? {
                    out.push((node.key().clone(), node.read_value(tx)?));
                }
                node = node.succ0(tx)?;
            }
            Ok(out)
        });
        match attempt {
            Ok(result) => {
                self.range_counters
                    .fast_success
                    .fetch_add(1, Ordering::Relaxed);
                Some(result)
            }
            Err(_) => {
                self.range_counters
                    .fast_abort
                    .fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The slow path: register with the RQC, then gather the range across
    /// several transactions, pausing only on safe nodes.
    pub(crate) fn range_slow(&self, low: &K, high: &K) -> Vec<(K, V)> {
        // Setup transaction: find the starting node and acquire a version
        // number atomically, so the start node is a safe node for this query.
        // This commit is the query's linearization point.
        let (start, version) = self.stm.run(|tx| {
            let start = self.skiplist.ceil_present(tx, low)?;
            let version = self.rqc.on_range(tx)?;
            Ok((start, version))
        });

        // Collection phase.  `collected` and `node` are plain locals captured
        // by the closure (`no_local_undo`): when an attempt aborts, all pairs
        // gathered so far and the current safe node are retained, so the next
        // attempt resumes exactly where the previous one stopped.
        let mut collected: Vec<(K, V)> = Vec::new();
        let mut node: Arc<Node<K, V>> = start;
        self.stm.run(|tx| {
            while !node.is_tail() && node.bound.is_at_most(high) {
                let value = node.read_value(tx)?;
                let next = self.next_safe(tx, &node, version)?;
                // Only update the locals once everything read for this node
                // is known to be consistent, so an abort never records a
                // partially processed node (and never records it twice).
                collected.push((node.key().clone(), value));
                node = next;
            }
            Ok(())
        });

        // Finalization: deregister from the RQC and unstitch any nodes whose
        // removal was deferred onto this query.
        let removals = self.stm.run(|tx| self.rqc.after_range(tx, version));
        for removed in &removals {
            self.stm.run(|tx| self.skiplist.unstitch(tx, removed));
        }
        self.range_counters
            .slow_complete
            .fetch_add(1, Ordering::Relaxed);
        collected
    }

    /// Find the next safe node after `node` for a query with version
    /// `version` by walking the bottom level.  The tail sentinel is always
    /// safe, so this always terminates.
    fn next_safe(
        &self,
        tx: &mut Txn<'_>,
        node: &Arc<Node<K, V>>,
        version: u64,
    ) -> TxResult<Arc<Node<K, V>>> {
        let mut candidate = node.succ0(tx)?;
        while !Self::is_safe(tx, &candidate, version)? {
            candidate = candidate.succ0(tx)?;
        }
        Ok(candidate)
    }

    /// §4.3's safety test: sentinels are always safe; a node is safe for a
    /// query with version `version` iff it was inserted before the query
    /// began and was not logically deleted before the query began.
    fn is_safe(tx: &mut Txn<'_>, node: &Arc<Node<K, V>>, version: u64) -> TxResult<bool> {
        if node.is_sentinel() {
            return Ok(true);
        }
        if node.i_time.read(tx)? >= version {
            return Ok(false);
        }
        Ok(match node.r_time.read(tx)? {
            None => true,
            Some(removed_at) => removed_at >= version,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RemovalPolicy, SkipHashBuilder};

    fn map_with_policy(policy: RangePolicy) -> SkipHash<u64, u64> {
        SkipHashBuilder::new()
            .buckets(512)
            .max_level(12)
            .range_policy(policy)
            .build()
    }

    fn fill(map: &SkipHash<u64, u64>, keys: impl IntoIterator<Item = u64>) {
        for k in keys {
            assert!(map.insert(k, k * 10));
        }
    }

    #[test]
    fn fast_path_range_collects_inclusive_bounds() {
        let map = map_with_policy(RangePolicy::FastOnly);
        fill(&map, [1, 3, 5, 7, 9]);
        assert_eq!(map.range(&3, &7), vec![(3, 30), (5, 50), (7, 70)]);
        assert_eq!(map.range(&0, &100).len(), 5);
        assert_eq!(map.range(&4, &4), vec![]);
        let stats = map.range_stats();
        assert!(stats.fast_path_successes >= 3);
        assert_eq!(stats.slow_path_completions, 0);
    }

    #[test]
    fn slow_path_range_matches_fast_path() {
        let slow = map_with_policy(RangePolicy::SlowOnly);
        fill(&slow, 0..200);
        let result = slow.range(&10, &20);
        let expected: Vec<(u64, u64)> = (10..=20).map(|k| (k, k * 10)).collect();
        assert_eq!(result, expected);
        assert_eq!(slow.range_stats().slow_path_completions, 1);
        assert_eq!(slow.range_stats().fast_path_successes, 0);
        // The RQC must be left empty after the query finishes.
        assert_eq!(slow.rqc.active_queries(), 0);
        assert!(slow.check_invariants().is_ok());
    }

    #[test]
    fn two_path_policy_uses_fast_path_when_uncontended() {
        let map = map_with_policy(RangePolicy::TwoPath { tries: 3 });
        fill(&map, [2, 4, 6]);
        assert_eq!(map.range(&1, &7), vec![(2, 20), (4, 40), (6, 60)]);
        let stats = map.range_stats();
        assert_eq!(stats.fast_path_successes, 1);
        assert_eq!(stats.slow_path_completions, 0);
    }

    #[test]
    fn empty_range_and_empty_map() {
        let map = map_with_policy(RangePolicy::TwoPath { tries: 3 });
        assert_eq!(map.range(&0, &1000), vec![]);
        fill(&map, [100]);
        assert_eq!(map.range(&0, &99), vec![]);
        assert_eq!(map.range(&101, &1000), vec![]);
        assert_eq!(map.range(&100, &100), vec![(100, 1000)]);
    }

    #[test]
    fn slow_path_skips_nodes_logically_deleted_before_it_started() {
        let map = map_with_policy(RangePolicy::SlowOnly);
        fill(&map, [1, 2, 3, 4, 5]);
        assert!(map.remove(&3));
        assert_eq!(map.range(&1, &5), vec![(1, 10), (2, 20), (4, 40), (5, 50)]);
        assert!(map.check_invariants().is_ok());
    }

    #[test]
    fn deferred_nodes_are_unstitched_after_the_query() {
        // Use the Immediate removal policy so deferral goes straight to the
        // RQC (no per-thread buffer), making the effect observable from a
        // single thread.
        let map: SkipHash<u64, u64> = SkipHashBuilder::new()
            .buckets(256)
            .range_policy(RangePolicy::SlowOnly)
            .removal_policy(RemovalPolicy::Immediate)
            .build();
        fill(&map, 0..50);

        // Register a slow-path query manually (setup phase only) by starting
        // a range over everything, which finishes immediately...
        // Instead, drive the scenario through the public API: a removal that
        // happens while a query is registered must be deferred.  We simulate
        // the interleaving by registering the query through the RQC directly.
        let version = map.stm.run(|tx| map.rqc.on_range(tx));
        assert!(map.remove(&25));
        // The node is logically gone immediately...
        assert_eq!(map.get(&25), None);
        assert_eq!(map.len(), 49);
        // ...but physically deferred while the query is active.
        assert_eq!(map.rqc.active_queries(), 1);
        let removals = map.stm.run(|tx| map.rqc.after_range(tx, version));
        assert_eq!(removals.len(), 1, "removal must have been deferred");
        for node in &removals {
            map.stm.run(|tx| map.skiplist.unstitch(tx, node));
        }
        assert!(map.check_invariants().is_ok());
    }

    #[test]
    fn reinserted_key_after_remove_is_visible_to_new_ranges() {
        let map = map_with_policy(RangePolicy::TwoPath { tries: 3 });
        fill(&map, [1, 2, 3]);
        assert!(map.remove(&2));
        assert!(map.insert(2, 2222));
        assert_eq!(map.range(&1, &3), vec![(1, 10), (2, 2222), (3, 30)]);
        assert_eq!(map.get(&2), Some(2222));
        assert!(map.check_invariants().is_ok());
    }
}
