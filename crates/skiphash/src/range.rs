//! Linearizable range queries, with std-style [`RangeBounds`] arguments.
//!
//! Implements §4.4 of the paper: a **fast path** that runs the whole range
//! query as a single `try_once` transaction, and a **slow path** that
//! registers with the [range query coordinator](crate::rqc::Rqc), acquires a
//! version number, and walks the range in many small transactions, pausing
//! only on *safe nodes* — nodes guaranteed not to be unstitched before the
//! query finishes.
//!
//! [`SkipHash::range`] accepts any `RangeBounds<K>` (`1..=5`, `..`, `3..`,
//! `(Bound::Excluded(a), Bound::Included(b))`, …) and returns an owned
//! [`Range`] iterator over the snapshot.  An inverted range (start above
//! end) yields an empty iterator rather than panicking like
//! `BTreeMap::range` — a concurrent map should not turn a stale bound pair
//! into a crash.

use skiphash_stm::sync::Ordering;
use std::cmp::Ordering as CmpOrdering;
use std::fmt;
use std::iter::FusedIterator;
use std::ops::Bound as StdBound;
use std::ops::RangeBounds;

use skiphash_stm::{TxResult, Txn};

use crate::config::RangePolicy;
use crate::map::{Inner, SkipHash};
use crate::node::{Bound as NodeBound, NodeRef, RawNode};
use crate::{MapKey, MapValue};

/// Collection vectors are pre-sized from the sharded population estimate,
/// clamped to this many pairs so a huge map does not turn a short range
/// query into a huge allocation.  The estimate only sizes the first
/// allocation; results longer than the clamp simply grow normally.
const RANGE_PRESIZE_CAP: usize = 1_024;

/// An owned iterator over one linearizable range-query snapshot, in key
/// order — ascending from [`SkipHash::range`], descending from
/// [`SkipHash::range_rev`].
///
/// Returned by [`SkipHash::range`], [`SkipHash::range_rev`],
/// [`SkipHash::range_attempt_fast`], and
/// [`TxView::range`](crate::TxView::range).  The snapshot is materialized at
/// the query's linearization point; iterating it performs no further
/// synchronization.
#[derive(Clone)]
pub struct Range<K, V> {
    pairs: std::vec::IntoIter<(K, V)>,
}

impl<K, V> Range<K, V> {
    pub(crate) fn new(pairs: Vec<(K, V)>) -> Self {
        Self {
            pairs: pairs.into_iter(),
        }
    }

    /// The pairs not yet yielded, as a slice (in ascending key order).
    pub fn as_slice(&self) -> &[(K, V)] {
        self.pairs.as_slice()
    }
}

impl<K, V> Iterator for Range<K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        self.pairs.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.pairs.size_hint()
    }
}

impl<K, V> DoubleEndedIterator for Range<K, V> {
    fn next_back(&mut self) -> Option<(K, V)> {
        self.pairs.next_back()
    }
}

impl<K, V> ExactSizeIterator for Range<K, V> {}
impl<K, V> FusedIterator for Range<K, V> {}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for Range<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Range")
            .field("remaining", &self.pairs.as_slice())
            .finish()
    }
}

/// `Bound<&K> -> Bound<K>` (we hold owned bounds so retry loops can re-borrow
/// them without lifetime gymnastics; `Bound::cloned` needs K: Clone anyway).
pub(crate) fn clone_bound<K: Clone>(bound: StdBound<&K>) -> StdBound<K> {
    match bound {
        StdBound::Included(k) => StdBound::Included(k.clone()),
        StdBound::Excluded(k) => StdBound::Excluded(k.clone()),
        StdBound::Unbounded => StdBound::Unbounded,
    }
}

pub(crate) fn bound_as_ref<K>(bound: &StdBound<K>) -> StdBound<&K> {
    match bound {
        StdBound::Included(k) => StdBound::Included(k),
        StdBound::Excluded(k) => StdBound::Excluded(k),
        StdBound::Unbounded => StdBound::Unbounded,
    }
}

/// True when no key can satisfy the pair of bounds (start above end).
/// `BTreeMap::range` panics here; a concurrent map yields emptiness instead.
pub(crate) fn range_is_empty<K: Ord>(start: &StdBound<K>, end: &StdBound<K>) -> bool {
    match (start, end) {
        (StdBound::Included(l), StdBound::Included(h)) => l > h,
        (StdBound::Included(l), StdBound::Excluded(h))
        | (StdBound::Excluded(l), StdBound::Included(h))
        | (StdBound::Excluded(l), StdBound::Excluded(h)) => l >= h,
        (StdBound::Unbounded, _) | (_, StdBound::Unbounded) => false,
    }
}

/// True when a node at `position` still lies at or below the end bound.
pub(crate) fn end_allows<K: Ord>(position: &NodeBound<K>, end: StdBound<&K>) -> bool {
    match end {
        StdBound::Unbounded => true,
        StdBound::Included(h) => position.is_at_most(h),
        StdBound::Excluded(h) => position.is_before(h),
    }
}

/// True when a node at `position` still lies at or above the start bound
/// (the back-walk's mirror of [`end_allows`]).
pub(crate) fn start_allows<K: Ord>(position: &NodeBound<K>, start: StdBound<&K>) -> bool {
    match start {
        StdBound::Unbounded => true,
        StdBound::Included(l) => !position.is_before(l),
        StdBound::Excluded(l) => position.cmp_key(l) == CmpOrdering::Greater,
    }
}

impl<K: MapKey, V: MapValue> Inner<K, V> {
    /// How many pairs to reserve before a collection walk: the sharded
    /// population estimate, clamped (see [`RANGE_PRESIZE_CAP`]).
    fn collect_capacity(&self) -> usize {
        self.population.total().min(RANGE_PRESIZE_CAP)
    }

    /// Walk the range inside `tx` (fast-path style: one transaction sees the
    /// whole snapshot).  Shared by the fast path and by
    /// [`TxView::range`](crate::TxView::range).
    pub(crate) fn collect_range(
        &self,
        tx: &mut Txn<'_>,
        start: StdBound<&K>,
        end: StdBound<&K>,
    ) -> TxResult<Vec<(K, V)>> {
        self.collect_range_with(tx, start, end, &K::clone)
    }

    /// [`Inner::collect_range`] with a caller-chosen key extractor (`|k| *k`
    /// for `Copy` keys, `K::clone` otherwise), hopping on borrowed
    /// [`RawNode`] handles: zero refcount traffic per link, one software
    /// prefetch of the successor per element (docs/PERF.md, Mechanism 6).
    pub(crate) fn collect_range_with(
        &self,
        tx: &mut Txn<'_>,
        start: StdBound<&K>,
        end: StdBound<&K>,
        extract: &impl Fn(&K) -> K,
    ) -> TxResult<Vec<(K, V)>> {
        let mut out = Vec::new();
        if range_is_empty(&start, &end) {
            return Ok(out);
        }
        out.reserve(self.collect_capacity());
        // SAFETY (for every `node()` below): each handle was read through a
        // link cell inside this same attempt `tx`, whose epoch guard stays
        // pinned for the whole call — the RawNode validity contract.
        let head = RawNode::from_ref(self.skiplist.head());
        let mut node = match start {
            // SAFETY: head handle; the attempt's guard is pinned (note above).
            StdBound::Unbounded => unsafe { head.node() }
                .level(0)
                .succ
                .read_with(tx, RawNode::from_link)?
                .expect("levels are always terminated by the tail sentinel"),
            StdBound::Included(low) => self.skiplist.ceil_raw_borrowed(tx, low)?,
            StdBound::Excluded(low) => {
                // Skip *every* node carrying the excluded key, including
                // logically deleted duplicates lingering before the live one.
                let mut node = self.skiplist.ceil_raw_borrowed(tx, low)?;
                while {
                    // SAFETY: same contract — read under this attempt.
                    let n = unsafe { node.node() };
                    !n.is_tail() && n.bound.cmp_key(low) == CmpOrdering::Equal
                } {
                    // SAFETY: same contract — read under this attempt.
                    node = unsafe { node.node() }
                        .level(0)
                        .succ
                        .read_with(tx, RawNode::from_link)?
                        .expect("levels are always terminated by the tail sentinel");
                }
                node
            }
        };
        loop {
            // SAFETY: same contract — read under this attempt.
            let n = unsafe { node.node() };
            if n.is_tail() || !end_allows(&n.bound, end) {
                break;
            }
            let next = n
                .level(0)
                .succ
                .read_with(tx, RawNode::from_link)?
                .expect("levels are always terminated by the tail sentinel");
            // Overlap the successor's cache miss with this element's
            // mark/value reads — the level-0 scan's dominant stall.
            next.prefetch();
            if !n.r_time.read_with(tx, Option::is_some)? {
                let value = n
                    .value
                    .read_with(tx, Option::clone)?
                    .expect("regular nodes always carry a value");
                out.push((extract(n.key()), value));
            }
            node = next;
        }
        Ok(out)
    }

    /// Walk the range *backwards* inside `tx` via the predecessor links,
    /// yielding pairs in descending key order — the borrowed back-walk
    /// behind [`SkipHash::range_rev`].
    pub(crate) fn collect_range_rev_with(
        &self,
        tx: &mut Txn<'_>,
        start: StdBound<&K>,
        end: StdBound<&K>,
        extract: &impl Fn(&K) -> K,
    ) -> TxResult<Vec<(K, V)>> {
        let mut out = Vec::new();
        if range_is_empty(&start, &end) {
            return Ok(out);
        }
        out.reserve(self.collect_capacity());
        // SAFETY (for every `node()` below): each handle was read through a
        // link cell inside this same attempt `tx`, whose epoch guard stays
        // pinned for the whole call — the RawNode validity contract.
        //
        // Position on the first node strictly *beyond* the end bound (the
        // tail for an unbounded end), then step back once: its level-0
        // predecessor is the last node the end bound allows.
        let after_end = match end {
            StdBound::Unbounded => RawNode::from_ref(self.skiplist.tail()),
            StdBound::Excluded(high) => self.skiplist.ceil_raw_borrowed(tx, high)?,
            StdBound::Included(high) => {
                let mut node = self.skiplist.ceil_raw_borrowed(tx, high)?;
                while {
                    // SAFETY: same contract — read under this attempt.
                    let n = unsafe { node.node() };
                    !n.is_tail() && n.bound.cmp_key(high) == CmpOrdering::Equal
                } {
                    // SAFETY: same contract — read under this attempt.
                    node = unsafe { node.node() }
                        .level(0)
                        .succ
                        .read_with(tx, RawNode::from_link)?
                        .expect("levels are always terminated by the tail sentinel");
                }
                node
            }
        };
        // SAFETY: same contract — read under this attempt.
        let mut node = unsafe { after_end.node() }
            .level(0)
            .pred
            .read_with(tx, RawNode::from_link)?
            .expect("interior nodes always have a level-0 predecessor");
        loop {
            // SAFETY: same contract — read under this attempt.
            let n = unsafe { node.node() };
            if n.is_head() || !start_allows(&n.bound, start) {
                break;
            }
            let prev = n
                .level(0)
                .pred
                .read_with(tx, RawNode::from_link)?
                .expect("interior nodes always have a level-0 predecessor");
            // Overlap the predecessor's cache miss with this element's
            // mark/value reads, mirroring the forward scan.
            prev.prefetch();
            if !n.r_time.read_with(tx, Option::is_some)? {
                let value = n
                    .value
                    .read_with(tx, Option::clone)?
                    .expect("regular nodes always carry a value");
                out.push((extract(n.key()), value));
            }
            node = prev;
        }
        Ok(out)
    }
}

impl<K: MapKey, V: MapValue> SkipHash<K, V> {
    /// Collect every `(key, value)` pair whose key lies in `range`, in
    /// ascending key order, as of a single linearization point.
    ///
    /// Accepts any [`RangeBounds`] expression, like `BTreeMap::range`:
    ///
    /// ```
    /// use skiphash::SkipHash;
    ///
    /// let map: SkipHash<u64, u64> = SkipHash::new();
    /// for k in [1, 3, 5, 7] {
    ///     map.insert(k, k * 10);
    /// }
    /// assert_eq!(map.range(3..=7).collect::<Vec<_>>(), vec![(3, 30), (5, 50), (7, 70)]);
    /// assert_eq!(map.range(..4).count(), 2);
    /// assert_eq!(map.range(..).count(), 4);
    /// assert_eq!(map.range(5..2).count(), 0, "inverted ranges are empty, not a panic");
    /// ```
    ///
    /// The execution strategy (fast path, slow path, or fast-then-slow) is
    /// chosen by the configured [`RangePolicy`].
    pub fn range<R: RangeBounds<K>>(&self, range: R) -> Range<K, V> {
        self.range_with(range, &K::clone)
    }

    /// Policy dispatch shared by [`SkipHash::range`] (keys cloned out) and
    /// [`SkipHash::range_copied`] (keys copied out).
    fn range_with<R: RangeBounds<K>>(&self, range: R, extract: &impl Fn(&K) -> K) -> Range<K, V> {
        let start = clone_bound(range.start_bound());
        let end = clone_bound(range.end_bound());
        if range_is_empty(&start, &end) {
            return Range::new(Vec::new());
        }
        let pairs = match self.inner.config.range_policy {
            RangePolicy::FastOnly => loop {
                if let Some(result) =
                    self.range_fast_with(bound_as_ref(&start), bound_as_ref(&end), extract)
                {
                    break result;
                }
            },
            RangePolicy::SlowOnly => {
                self.range_slow_with(bound_as_ref(&start), bound_as_ref(&end), extract)
            }
            RangePolicy::TwoPath { tries } => 'outer: {
                for _ in 0..tries.max(1) {
                    if let Some(result) =
                        self.range_fast_with(bound_as_ref(&start), bound_as_ref(&end), extract)
                    {
                        break 'outer result;
                    }
                }
                self.range_slow_with(bound_as_ref(&start), bound_as_ref(&end), extract)
            }
        };
        Range::new(pairs)
    }

    /// Collect every `(key, value)` pair whose key lies in `range`, in
    /// **descending** key order, as one atomic (fast-path style)
    /// transaction.
    ///
    /// The walk itself runs backwards over the predecessor links (this is
    /// where the doubly linked tower pays off for reverse iteration): no
    /// forward pass plus reverse, just one borrowed back-walk from the end
    /// bound.  Unlike [`SkipHash::range`] this always uses the coherent
    /// full-transaction path — the RQC slow path's safe-node argument is
    /// forward-oriented and does not apply to a backwards traversal.
    ///
    /// ```
    /// use skiphash::SkipHash;
    ///
    /// let map: SkipHash<u64, u64> = SkipHash::new();
    /// for k in [1, 3, 5, 7] {
    ///     map.insert(k, k * 10);
    /// }
    /// assert_eq!(map.range_rev(3..=7).collect::<Vec<_>>(), vec![(7, 70), (5, 50), (3, 30)]);
    /// assert_eq!(map.range_rev(5..2).count(), 0, "inverted ranges are empty, not a panic");
    /// ```
    pub fn range_rev<R: RangeBounds<K>>(&self, range: R) -> Range<K, V> {
        self.range_rev_with(range, &K::clone)
    }

    fn range_rev_with<R: RangeBounds<K>>(
        &self,
        range: R,
        extract: &impl Fn(&K) -> K,
    ) -> Range<K, V> {
        let start = clone_bound(range.start_bound());
        let end = clone_bound(range.end_bound());
        if range_is_empty(&start, &end) {
            return Range::new(Vec::new());
        }
        let pairs = self.inner.stm.run(|tx| {
            self.inner
                .collect_range_rev_with(tx, bound_as_ref(&start), bound_as_ref(&end), extract)
        });
        Range::new(pairs)
    }

    /// Perform exactly one fast-path attempt of a range query, returning
    /// `None` if the single transaction aborted.
    ///
    /// This exposes the building block [`SkipHash::range`] uses so callers
    /// (and the Table 1 benchmark) can implement custom fallback policies or
    /// measure abort behaviour directly.
    pub fn range_attempt_fast<R: RangeBounds<K>>(&self, range: R) -> Option<Range<K, V>> {
        let start = range.start_bound();
        let end = range.end_bound();
        if range_is_empty(&start, &end) {
            return Some(Range::new(Vec::new()));
        }
        self.range_fast(start, end).map(Range::new)
    }

    /// One fast-path attempt: the entire query as a single transaction that
    /// does not retry on conflict.  Returns `None` if the attempt aborted.
    pub(crate) fn range_fast(&self, start: StdBound<&K>, end: StdBound<&K>) -> Option<Vec<(K, V)>> {
        self.range_fast_with(start, end, &K::clone)
    }

    /// [`SkipHash::range_fast`] with a caller-chosen key extractor.
    fn range_fast_with(
        &self,
        start: StdBound<&K>,
        end: StdBound<&K>,
        extract: &impl Fn(&K) -> K,
    ) -> Option<Vec<(K, V)>> {
        let attempt = self
            .inner
            .stm
            .try_once(|tx| self.inner.collect_range_with(tx, start, end, extract));
        match attempt {
            Ok(result) => {
                self.inner
                    .range_counters
                    .fast_success
                    .fetch_add(1, Ordering::Relaxed);
                Some(result)
            }
            Err(_) => {
                self.inner
                    .range_counters
                    .fast_abort
                    .fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The slow path: register with the RQC, then gather the range across
    /// several transactions, pausing only on safe nodes.  `extract` is the
    /// key extractor ([`Clone::clone`] or a copy-out for `Copy` keys).
    fn range_slow_with(
        &self,
        start: StdBound<&K>,
        end: StdBound<&K>,
        extract: &impl Fn(&K) -> K,
    ) -> Vec<(K, V)> {
        let inner = &self.inner;
        // Unsatisfiable bounds never register with the RQC or descend the
        // tower (defense in depth: public entry points guard too).
        if range_is_empty(&start, &end) {
            return Vec::new();
        }
        // Setup transaction: find the starting node and acquire a version
        // number atomically, so the start node is a safe node for this query.
        // This commit is the query's linearization point.
        let (start_node, version) = inner.stm.run(|tx| {
            let start_node = match start {
                StdBound::Unbounded => inner.skiplist.first_present(tx)?,
                StdBound::Included(low) => inner.skiplist.ceil_present(tx, low)?,
                StdBound::Excluded(low) => inner.skiplist.succ_present(tx, low)?,
            };
            let version = inner.rqc.on_range(tx)?;
            Ok((start_node, version))
        });

        // Collection phase.  `collected` and `node` are plain locals captured
        // by the closure (`no_local_undo`): when an attempt aborts, all pairs
        // gathered so far and the current safe node are retained, so the next
        // attempt resumes exactly where the previous one stopped.
        //
        // Inside one attempt the walk hops on borrowed handles; the counted
        // local is only written back at each element boundary (the custody
        // handoff point — the node the next attempt must resume from), so
        // the safe-node search between elements pays no refcount traffic.
        let mut collected: Vec<(K, V)> = Vec::with_capacity(inner.collect_capacity());
        let mut node: NodeRef<K, V> = start_node;
        inner.stm.run(|tx| {
            loop {
                let raw = RawNode::from_ref(&node);
                // SAFETY: (this and every `node()` below) the handle is
                // rooted in the counted local `node` or was read through a
                // link cell inside this same attempt, whose epoch guard
                // stays pinned — the RawNode validity contract.
                let n = unsafe { raw.node() };
                if n.is_tail() || !end_allows(&n.bound, end) {
                    break;
                }
                let value = n
                    .value
                    .read_with(tx, Option::clone)?
                    .expect("regular nodes always carry a value");
                let next = self.next_safe(tx, raw, version)?;
                // Only update the locals once everything read for this node
                // is known to be consistent, so an abort never records a
                // partially processed node (and never records it twice).
                collected.push((extract(n.key()), value));
                // SAFETY: obtained under the still-running attempt `tx`.
                node = unsafe { next.upgrade() };
            }
            Ok(())
        });

        // Finalization: deregister from the RQC and unstitch any nodes whose
        // removal was deferred onto this query.
        let removals = inner.stm.run(|tx| inner.rqc.after_range(tx, version));
        for removed in &removals {
            inner.stm.run(|tx| inner.skiplist.unstitch(tx, removed));
        }
        inner
            .range_counters
            .slow_complete
            .fetch_add(1, Ordering::Relaxed);
        collected
    }

    /// Find the next safe node after `node` for a query with version
    /// `version` by walking the bottom level on borrowed handles.  The tail
    /// sentinel is always safe, so this always terminates.
    fn next_safe(
        &self,
        tx: &mut Txn<'_>,
        node: RawNode<K, V>,
        version: u64,
    ) -> TxResult<RawNode<K, V>> {
        // SAFETY: (every `node()` below) each handle was read through a
        // link cell inside this same attempt, whose epoch guard stays pinned
        // for the whole call.
        let mut candidate = unsafe { node.node() }
            .level(0)
            .succ
            .read_with(tx, RawNode::from_link)?
            .expect("levels are always terminated by the tail sentinel");
        // Warm the candidate's header line ahead of the safety test's
        // timestamp reads.
        candidate.prefetch();
        while !Self::is_safe(tx, candidate, version)? {
            // SAFETY: same contract — read under this attempt.
            candidate = unsafe { candidate.node() }
                .level(0)
                .succ
                .read_with(tx, RawNode::from_link)?
                .expect("levels are always terminated by the tail sentinel");
            candidate.prefetch();
        }
        Ok(candidate)
    }

    /// §4.3's safety test: sentinels are always safe; a node is safe for a
    /// query with version `version` iff it was inserted before the query
    /// began and was not logically deleted before the query began.
    fn is_safe(tx: &mut Txn<'_>, node: RawNode<K, V>, version: u64) -> TxResult<bool> {
        // SAFETY: the handle was obtained inside this same attempt, whose
        // epoch guard stays pinned — the RawNode validity contract.
        let n = unsafe { node.node() };
        if n.is_sentinel() {
            return Ok(true);
        }
        if n.i_time.read_with(tx, |t| *t)? >= version {
            return Ok(false);
        }
        Ok(match n.r_time.read_with(tx, |t| *t)? {
            None => true,
            Some(removed_at) => removed_at >= version,
        })
    }
}

impl<K: MapKey + Copy, V: MapValue> SkipHash<K, V> {
    /// [`SkipHash::range`] for `Copy` keys: keys are copied out of the node
    /// instead of cloned.
    ///
    /// Rust has no specialization, so the generic path must call `K::clone`
    /// even when `K` is a plain integer; this method (same policy dispatch,
    /// same linearization guarantees) is the explicit opt-in the benchmark
    /// adapters use.  For `Copy` keys the compiler reduces the copy-out to a
    /// load, where the clone call was an opaque per-element function edge.
    pub fn range_copied<R: RangeBounds<K>>(&self, range: R) -> Range<K, V> {
        self.range_with(range, &|k: &K| *k)
    }

    /// [`SkipHash::range_rev`] for `Copy` keys (see
    /// [`SkipHash::range_copied`]).
    pub fn range_rev_copied<R: RangeBounds<K>>(&self, range: R) -> Range<K, V> {
        self.range_rev_with(range, &|k: &K| *k)
    }

    /// [`SkipHash::to_vec`](crate::SkipHash::to_vec) for `Copy` keys (see
    /// [`SkipHash::range_copied`]).
    pub fn to_vec_copied(&self) -> Vec<(K, V)> {
        self.inner
            .stm
            .run(|tx| self.inner.skiplist.collect_present_with(tx, &|k: &K| *k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RemovalPolicy, SkipHashBuilder};

    fn map_with_policy(policy: RangePolicy) -> SkipHash<u64, u64> {
        SkipHashBuilder::new()
            .buckets(512)
            .max_level(12)
            .range_policy(policy)
            .build()
    }

    fn fill(map: &SkipHash<u64, u64>, keys: impl IntoIterator<Item = u64>) {
        for k in keys {
            assert!(map.insert(k, k * 10));
        }
    }

    fn collect(map: &SkipHash<u64, u64>, r: impl RangeBounds<u64>) -> Vec<(u64, u64)> {
        map.range(r).collect()
    }

    #[test]
    fn fast_path_range_collects_inclusive_bounds() {
        let map = map_with_policy(RangePolicy::FastOnly);
        fill(&map, [1, 3, 5, 7, 9]);
        assert_eq!(collect(&map, 3..=7), vec![(3, 30), (5, 50), (7, 70)]);
        assert_eq!(collect(&map, 0..=100).len(), 5);
        assert_eq!(collect(&map, 4..=4), vec![]);
        let stats = map.range_stats();
        assert!(stats.fast_path_successes >= 3);
        assert_eq!(stats.slow_path_completions, 0);
    }

    #[test]
    fn all_bound_shapes_agree_with_btreemap() {
        use std::collections::BTreeMap;
        use std::ops::Bound::*;
        let map = map_with_policy(RangePolicy::TwoPath { tries: 3 });
        fill(&map, [1, 3, 5, 7, 9]);
        let reference: BTreeMap<u64, u64> = [1, 3, 5, 7, 9].map(|k| (k, k * 10)).into();
        let cases: Vec<(StdBound<u64>, StdBound<u64>)> = vec![
            (Unbounded, Unbounded),
            (Unbounded, Included(5)),
            (Unbounded, Excluded(5)),
            (Included(3), Unbounded),
            (Excluded(3), Unbounded),
            (Included(3), Included(7)),
            (Included(3), Excluded(7)),
            (Excluded(3), Included(7)),
            (Excluded(3), Excluded(7)),
            (Excluded(0), Excluded(100)),
        ];
        for (start, end) in cases {
            let expected: Vec<(u64, u64)> = reference
                .range((start, end))
                .map(|(k, v)| (*k, *v))
                .collect();
            assert_eq!(
                collect(&map, (start, end)),
                expected,
                "bounds ({start:?}, {end:?})"
            );
        }
    }

    #[test]
    fn half_open_and_unbounded_sugar() {
        let map = map_with_policy(RangePolicy::TwoPath { tries: 3 });
        fill(&map, [2, 4, 6, 8]);
        assert_eq!(collect(&map, ..), vec![(2, 20), (4, 40), (6, 60), (8, 80)]);
        assert_eq!(collect(&map, 4..), vec![(4, 40), (6, 60), (8, 80)]);
        assert_eq!(collect(&map, ..6), vec![(2, 20), (4, 40)]);
        assert_eq!(collect(&map, 4..8), vec![(4, 40), (6, 60)]);
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // inverted ranges ARE the subject
    fn inverted_ranges_are_empty_not_a_panic() {
        let map = map_with_policy(RangePolicy::TwoPath { tries: 3 });
        fill(&map, [1, 2, 3]);
        assert_eq!(collect(&map, 3..1), vec![]);
        assert_eq!(map.range(3..3).count(), 0);
        assert_eq!(map.range(5..=1).count(), 0);
        // Empty ranges never touch the counters.
        assert_eq!(map.range_stats().fast_path_successes, 0);
    }

    #[test]
    fn range_iterator_is_double_ended_and_exact() {
        let map = map_with_policy(RangePolicy::FastOnly);
        fill(&map, [1, 2, 3, 4]);
        let mut iter = map.range(1..=4);
        assert_eq!(iter.len(), 4);
        assert_eq!(iter.next(), Some((1, 10)));
        assert_eq!(iter.next_back(), Some((4, 40)));
        assert_eq!(iter.as_slice(), &[(2, 20), (3, 30)]);
        assert_eq!(iter.len(), 2);
    }

    #[test]
    fn slow_path_range_matches_fast_path() {
        let slow = map_with_policy(RangePolicy::SlowOnly);
        fill(&slow, 0..200);
        let result = collect(&slow, 10..=20);
        let expected: Vec<(u64, u64)> = (10..=20).map(|k| (k, k * 10)).collect();
        assert_eq!(result, expected);
        assert_eq!(slow.range_stats().slow_path_completions, 1);
        assert_eq!(slow.range_stats().fast_path_successes, 0);
        // The RQC must be left empty after the query finishes.
        assert_eq!(slow.inner.rqc.active_queries(), 0);
        assert!(slow.check_invariants().is_ok());
    }

    #[test]
    fn slow_path_handles_exclusive_and_unbounded_bounds() {
        let slow = map_with_policy(RangePolicy::SlowOnly);
        fill(&slow, [10, 20, 30, 40]);
        assert_eq!(
            collect(&slow, (StdBound::Excluded(10), StdBound::Excluded(40))),
            vec![(20, 200), (30, 300)]
        );
        assert_eq!(collect(&slow, ..).len(), 4);
        assert_eq!(collect(&slow, 21..), vec![(30, 300), (40, 400)]);
        assert_eq!(slow.inner.rqc.active_queries(), 0);
    }

    #[test]
    fn two_path_policy_uses_fast_path_when_uncontended() {
        let map = map_with_policy(RangePolicy::TwoPath { tries: 3 });
        fill(&map, [2, 4, 6]);
        assert_eq!(collect(&map, 1..=7), vec![(2, 20), (4, 40), (6, 60)]);
        let stats = map.range_stats();
        assert_eq!(stats.fast_path_successes, 1);
        assert_eq!(stats.slow_path_completions, 0);
    }

    #[test]
    fn empty_range_and_empty_map() {
        let map = map_with_policy(RangePolicy::TwoPath { tries: 3 });
        assert_eq!(collect(&map, 0..=1000), vec![]);
        fill(&map, [100]);
        assert_eq!(collect(&map, 0..=99), vec![]);
        assert_eq!(collect(&map, 101..=1000), vec![]);
        assert_eq!(collect(&map, 100..=100), vec![(100, 1000)]);
    }

    #[test]
    fn slow_path_skips_nodes_logically_deleted_before_it_started() {
        let map = map_with_policy(RangePolicy::SlowOnly);
        fill(&map, [1, 2, 3, 4, 5]);
        assert!(map.remove(&3));
        assert_eq!(
            collect(&map, 1..=5),
            vec![(1, 10), (2, 20), (4, 40), (5, 50)]
        );
        assert!(map.check_invariants().is_ok());
    }

    #[test]
    fn deferred_nodes_are_unstitched_after_the_query() {
        // Use the Immediate removal policy so deferral goes straight to the
        // RQC (no per-thread buffer), making the effect observable from a
        // single thread.
        let map: SkipHash<u64, u64> = SkipHashBuilder::new()
            .buckets(256)
            .range_policy(RangePolicy::SlowOnly)
            .removal_policy(RemovalPolicy::Immediate)
            .build();
        fill(&map, 0..50);

        // Register a slow-path query manually (setup phase only): a removal
        // that happens while a query is registered must be deferred.
        let inner = &map.inner;
        let version = inner.stm.run(|tx| inner.rqc.on_range(tx));
        assert!(map.remove(&25));
        // The node is logically gone immediately...
        assert_eq!(map.get(&25), None);
        assert_eq!(map.len(), 49);
        // ...but physically deferred while the query is active.
        assert_eq!(inner.rqc.active_queries(), 1);
        let removals = inner.stm.run(|tx| inner.rqc.after_range(tx, version));
        assert_eq!(removals.len(), 1, "removal must have been deferred");
        for node in &removals {
            inner.stm.run(|tx| inner.skiplist.unstitch(tx, node));
        }
        assert!(map.check_invariants().is_ok());
    }

    #[test]
    fn reinserted_key_after_remove_is_visible_to_new_ranges() {
        let map = map_with_policy(RangePolicy::TwoPath { tries: 3 });
        fill(&map, [1, 2, 3]);
        assert!(map.remove(&2));
        assert!(map.insert(2, 2222));
        assert_eq!(collect(&map, 1..=3), vec![(1, 10), (2, 2222), (3, 30)]);
        assert_eq!(map.get(&2), Some(2222));
        assert!(map.check_invariants().is_ok());
    }

    #[test]
    fn excluded_start_skips_deleted_duplicates() {
        // A logically deleted node for key 5 lingers before the live one;
        // `Excluded(5)` must skip both.
        let map = map_with_policy(RangePolicy::FastOnly);
        fill(&map, [4, 5, 6]);
        assert!(map.remove(&5));
        assert!(map.insert(5, 5555));
        assert_eq!(
            collect(&map, (StdBound::Excluded(5), StdBound::Unbounded)),
            vec![(6, 60)]
        );
        assert_eq!(
            collect(&map, (StdBound::Included(5), StdBound::Unbounded)),
            vec![(5, 5555), (6, 60)]
        );
    }
}
