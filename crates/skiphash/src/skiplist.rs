//! The doubly linked, transactional skip list half of the skip hash.
//!
//! Unlike lock-free skip lists, every structural change here happens inside
//! an STM transaction, so the list can be doubly linked: each node knows its
//! predecessor and successor at every level, which is what lets `remove`
//! unstitch a node in `O(height)` without re-traversing from the head.
//!
//! Nodes are arena-pooled [`NodeRef`]s (see [`crate::node`]); traversals use
//! the stack-allocated [`LevelNodes`] scratch, so neither inserting a node
//! nor locating one touches the global allocator in the steady state.

use std::cmp::Ordering;
use std::fmt;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};

use rand::Rng;
use skiphash_stm::{TxResult, Txn};

use crate::node::{Bound, Node, NodeRef, RawNode};
use crate::{MapKey, MapValue};

/// Upper bound on tower heights, and the inline capacity of [`LevelNodes`]
/// ([`crate::SkipHashBuilder::max_level`] rejects anything at or above it).
pub const MAX_LEVEL_LIMIT: usize = 64;

/// One node per level, indexed by level (as returned by
/// [`SkipList::find_position`]).
///
/// A fixed-capacity inline array rather than a `Vec`: `find_position` runs
/// on every insert and ordered point query, and two heap-allocated vectors
/// per traversal would put the allocator right back on the paths the arena
/// just took it off.  Capacity is [`MAX_LEVEL_LIMIT`]; the live prefix is
/// `max_level` entries.  Dereferences to `[NodeRef<K, V>]`.
pub struct LevelNodes<K, V> {
    slots: [MaybeUninit<NodeRef<K, V>>; MAX_LEVEL_LIMIT],
    len: usize,
}

impl<K, V> LevelNodes<K, V> {
    /// Build by upgrading one borrowed handle per level.
    ///
    /// # Safety
    ///
    /// Every handle must satisfy the [`RawNode`] validity contract (obtained
    /// under the still-running transaction attempt).
    unsafe fn from_raw(raw: &[Option<RawNode<K, V>>]) -> Self {
        assert!(raw.len() <= MAX_LEVEL_LIMIT);
        let mut out = Self {
            slots: [const { MaybeUninit::uninit() }; MAX_LEVEL_LIMIT],
            len: 0,
        };
        for handle in raw {
            let handle = handle.expect("every level was resolved by the search");
            // SAFETY: forwarded from this function's contract; `len` tracks
            // initialization so a panic drops exactly the written prefix.
            out.slots[out.len].write(unsafe { handle.upgrade() });
            out.len += 1;
        }
        out
    }
}

impl<K, V> Deref for LevelNodes<K, V> {
    type Target = [NodeRef<K, V>];

    fn deref(&self) -> &[NodeRef<K, V>] {
        // SAFETY: the first `len` slots are always initialized.
        unsafe { &*(std::ptr::from_ref(&self.slots[..self.len]) as *const [NodeRef<K, V>]) }
    }
}

impl<K, V> DerefMut for LevelNodes<K, V> {
    fn deref_mut(&mut self) -> &mut [NodeRef<K, V>] {
        // SAFETY: as `deref`, plus exclusivity from `&mut self`.
        unsafe { &mut *(std::ptr::from_mut(&mut self.slots[..self.len]) as *mut [NodeRef<K, V>]) }
    }
}

impl<K, V> Drop for LevelNodes<K, V> {
    fn drop(&mut self) {
        for slot in &mut self.slots[..self.len] {
            // SAFETY: the live prefix is initialized and dropped exactly once.
            unsafe { slot.assume_init_drop() };
        }
    }
}

impl<K, V> fmt::Debug for LevelNodes<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LevelNodes")
            .field("len", &self.len)
            .finish()
    }
}

/// A doubly linked skip list whose nodes map keys to values.
///
/// All methods must be called inside a transaction; the enclosing
/// [`crate::SkipHash`] drives them.
pub struct SkipList<K, V> {
    head: NodeRef<K, V>,
    tail: NodeRef<K, V>,
    max_level: usize,
}

impl<K, V> fmt::Debug for SkipList<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SkipList")
            .field("max_level", &self.max_level)
            .finish()
    }
}

impl<K: MapKey, V: MapValue> SkipList<K, V> {
    /// Create an empty skip list with `max_level` levels; the sentinels are
    /// stitched together at every level.
    pub fn new(max_level: usize) -> Self {
        assert!(max_level >= 1, "skip list needs at least one level");
        assert!(
            max_level <= MAX_LEVEL_LIMIT,
            "skip list supports at most {MAX_LEVEL_LIMIT} levels"
        );
        let head = Node::sentinel(Bound::NegInf, max_level);
        let tail = Node::sentinel(Bound::PosInf, max_level);
        for level in 0..max_level {
            head.level(level).succ.store_atomic(Some(tail.clone()));
            tail.level(level).pred.store_atomic(Some(head.clone()));
        }
        Self {
            head,
            tail,
            max_level,
        }
    }

    /// The head sentinel.
    pub fn head(&self) -> &NodeRef<K, V> {
        &self.head
    }

    /// The tail sentinel.
    pub fn tail(&self) -> &NodeRef<K, V> {
        &self.tail
    }

    /// Number of levels.
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// Sample a tower height from the geometric distribution with p = 1/2,
    /// capped at the list's level count.
    pub fn random_height<R: Rng>(&self, rng: &mut R) -> usize {
        let mut height = 1;
        while height < self.max_level && rng.gen::<bool>() {
            height += 1;
        }
        height
    }

    /// Find, at every level, the last node whose key is strictly less than
    /// `key` (the "predecessor") and its successor at that level.
    ///
    /// Returned scratches are indexed by level and have `max_level` entries.
    pub fn find_position(
        &self,
        tx: &mut Txn<'_>,
        key: &K,
    ) -> TxResult<(LevelNodes<K, V>, LevelNodes<K, V>)> {
        // Hop with borrowed handles: a search crosses dozens of links, and
        // cloning a counted handle per hop (increment now, decrement next
        // hop) made refcount traffic the dominant traversal cost.  Links are
        // read through `read_with` (no payload clone) into `RawNode`s, and
        // only the two per-level results are upgraded to counted handles.
        //
        // SAFETY (for every `node()` and the final `from_raw`): each handle
        // was read through a cell inside this same attempt `tx`, whose epoch
        // guard stays pinned for the whole function — the RawNode validity
        // contract.
        let mut raw_preds: [Option<RawNode<K, V>>; MAX_LEVEL_LIMIT] = [None; MAX_LEVEL_LIMIT];
        let mut raw_succs: [Option<RawNode<K, V>>; MAX_LEVEL_LIMIT] = [None; MAX_LEVEL_LIMIT];

        let mut pred = RawNode::from_ref(&self.head);
        for level in (0..self.max_level).rev() {
            // SAFETY: handle read under this attempt; guard pinned (blanket note above).
            let mut curr = unsafe { pred.node() }
                .level(level)
                .succ
                .read_with(tx, RawNode::from_link)?
                .expect("levels are always terminated by the tail sentinel");
            // SAFETY: same contract — read under this attempt.
            while unsafe { curr.node() }.bound.is_before(key) {
                pred = curr;
                // SAFETY: same contract — read under this attempt.
                curr = unsafe { curr.node() }
                    .level(level)
                    .succ
                    .read_with(tx, RawNode::from_link)?
                    .expect("levels are always terminated by the tail sentinel");
            }
            raw_preds[level] = Some(pred);
            raw_succs[level] = Some(curr);
        }
        // SAFETY: as above — the attempt is still running.
        unsafe {
            Ok((
                LevelNodes::from_raw(&raw_preds[..self.max_level]),
                LevelNodes::from_raw(&raw_succs[..self.max_level]),
            ))
        }
    }

    /// First node (logically present *or* deleted) whose key is `>= key`,
    /// possibly the tail sentinel.
    pub fn ceil_raw(&self, tx: &mut Txn<'_>, key: &K) -> TxResult<NodeRef<K, V>> {
        let raw = self.ceil_raw_borrowed(tx, key)?;
        // SAFETY: obtained under the still-running attempt `tx`.
        Ok(unsafe { raw.upgrade() })
    }

    /// Borrowed-handle tower descent: the first node at level 0 whose key is
    /// `>= key` (possibly the tail sentinel), with zero refcount traffic —
    /// the point-query sibling of [`SkipList::find_position`]'s hop recipe.
    ///
    /// The returned handle obeys the [`RawNode`] validity contract (valid
    /// within the attempt `tx`).
    pub(crate) fn ceil_raw_borrowed(&self, tx: &mut Txn<'_>, key: &K) -> TxResult<RawNode<K, V>> {
        // SAFETY (for every `node()` below): each handle was read through a
        // link cell inside this same attempt, whose epoch guard stays pinned
        // for the whole call.
        let mut pred = RawNode::from_ref(&self.head);
        for level in (1..self.max_level).rev() {
            loop {
                // SAFETY: handle read under this attempt; guard pinned (blanket note above).
                let next = unsafe { pred.node() }
                    .level(level)
                    .succ
                    .read_with(tx, RawNode::from_link)?
                    .expect("levels are always terminated by the tail sentinel");
                // Warm the candidate's header and tower lines while the
                // bound comparison below resolves (docs/PERF.md, Mechanism
                // 6: the tower line is the next dependent load on the
                // continue-at-this-level path).
                next.prefetch();
                // SAFETY: same contract — read under this attempt.
                if unsafe { next.node() }.bound.is_before(key) {
                    pred = next;
                } else {
                    break;
                }
            }
        }
        // SAFETY: same contract — read under this attempt.
        let mut curr = unsafe { pred.node() }
            .level(0)
            .succ
            .read_with(tx, RawNode::from_link)?
            .expect("levels are always terminated by the tail sentinel");
        // SAFETY: same contract — read under this attempt.
        while unsafe { curr.node() }.bound.is_before(key) {
            // SAFETY: same contract — read under this attempt.
            curr = unsafe { curr.node() }
                .level(0)
                .succ
                .read_with(tx, RawNode::from_link)?
                .expect("levels are always terminated by the tail sentinel");
            curr.prefetch();
        }
        Ok(curr)
    }

    /// Hop forward (level 0) over logically deleted nodes, borrowed.
    pub(crate) fn skip_deleted_forward(
        &self,
        tx: &mut Txn<'_>,
        mut node: RawNode<K, V>,
    ) -> TxResult<RawNode<K, V>> {
        // SAFETY: as in `ceil_raw_borrowed` — same attempt, guard pinned.
        while !unsafe { node.node() }.is_tail()
            && unsafe { node.node() }
                .r_time
                .read_with(tx, Option::is_some)?
        {
            // SAFETY: same contract — read under this attempt.
            node = unsafe { node.node() }
                .level(0)
                .succ
                .read_with(tx, RawNode::from_link)?
                .expect("levels are always terminated by the tail sentinel");
        }
        Ok(node)
    }

    /// First *logically present* node whose key is `>= key`, possibly the
    /// tail sentinel.
    pub fn ceil_present(&self, tx: &mut Txn<'_>, key: &K) -> TxResult<NodeRef<K, V>> {
        let raw = self.ceil_raw_borrowed(tx, key)?;
        let node = self.skip_deleted_forward(tx, raw)?;
        // SAFETY: obtained under the still-running attempt `tx`.
        Ok(unsafe { node.upgrade() })
    }

    /// First logically present node whose key is strictly `> key`, possibly
    /// the tail sentinel.
    pub fn succ_present(&self, tx: &mut Txn<'_>, key: &K) -> TxResult<NodeRef<K, V>> {
        let mut node = self.ceil_raw_borrowed(tx, key)?;
        // SAFETY: as in `ceil_raw_borrowed` — same attempt, guard pinned.
        while !unsafe { node.node() }.is_tail()
            && (unsafe { node.node() }
                .r_time
                .read_with(tx, Option::is_some)?
                // SAFETY: same contract — read under this attempt.
                || unsafe { node.node() }.bound.cmp_key(key) == Ordering::Equal)
        {
            // SAFETY: same contract — read under this attempt.
            node = unsafe { node.node() }
                .level(0)
                .succ
                .read_with(tx, RawNode::from_link)?
                .expect("levels are always terminated by the tail sentinel");
        }
        // SAFETY: obtained under the still-running attempt `tx`.
        Ok(unsafe { node.upgrade() })
    }

    /// Last logically present node whose key is `<= key`, possibly the head
    /// sentinel.  Uses the predecessor links (this is where double linking
    /// pays off for `floor`/`pred` point queries).
    pub fn floor_present(&self, tx: &mut Txn<'_>, key: &K) -> TxResult<NodeRef<K, V>> {
        // A logically present node with this exact key may sit *after*
        // logically deleted nodes with the same key, so resolve equality via
        // `ceil_present` before falling back to the strict predecessor.
        let node = self.ceil_present(tx, key)?;
        if !node.is_tail() && node.bound.cmp_key(key) == Ordering::Equal {
            return Ok(node);
        }
        self.pred_present(tx, key)
    }

    /// Last logically present node whose key is strictly `< key`, possibly
    /// the head sentinel.
    pub fn pred_present(&self, tx: &mut Txn<'_>, key: &K) -> TxResult<NodeRef<K, V>> {
        let raw = self.ceil_raw_borrowed(tx, key)?;
        // SAFETY: as in `ceil_raw_borrowed` — same attempt, guard pinned.
        let mut node = unsafe { raw.node() }
            .level(0)
            .pred
            .read_with(tx, RawNode::from_link)?
            .expect("interior nodes always have a level-0 predecessor");
        // SAFETY: handle read under this attempt; guard pinned (note above).
        while !unsafe { node.node() }.is_head()
            // SAFETY: same contract — read under this attempt.
            && unsafe { node.node() }
                .r_time
                .read_with(tx, Option::is_some)?
        {
            // SAFETY: same contract — read under this attempt.
            node = unsafe { node.node() }
                .level(0)
                .pred
                .read_with(tx, RawNode::from_link)?
                .expect("interior nodes always have a level-0 predecessor");
        }
        // SAFETY: obtained under the still-running attempt `tx`.
        Ok(unsafe { node.upgrade() })
    }

    /// First logically present node in the list (possibly the tail sentinel).
    pub fn first_present(&self, tx: &mut Txn<'_>) -> TxResult<NodeRef<K, V>> {
        // SAFETY: as in `ceil_raw_borrowed` — same attempt, guard pinned.
        let raw = RawNode::from_ref(&self.head);
        // SAFETY: head handle; the attempt's guard is pinned (note above).
        let first = unsafe { raw.node() }
            .level(0)
            .succ
            .read_with(tx, RawNode::from_link)?
            .expect("levels are always terminated by the tail sentinel");
        let node = self.skip_deleted_forward(tx, first)?;
        // SAFETY: obtained under the still-running attempt `tx`.
        Ok(unsafe { node.upgrade() })
    }

    /// Insert a new node for `key`.
    ///
    /// The caller (the skip hash) guarantees that no *logically present* node
    /// with this key exists; however, logically deleted nodes with the same
    /// key may still be physically linked, in which case the new node is
    /// inserted after all of them (the paper's
    /// `insert_after_logical_deletes`).
    pub fn insert_after_logical_deletes(
        &self,
        tx: &mut Txn<'_>,
        key: K,
        value: V,
        height: usize,
        i_time: u64,
    ) -> TxResult<NodeRef<K, V>> {
        debug_assert!(height >= 1 && height <= self.max_level);
        let (mut preds, mut succs) = self.find_position(tx, &key)?;

        // Advance past any logically deleted nodes that share the key so the
        // new node lands after them.
        for level in 0..height {
            loop {
                if succs[level].is_tail() || succs[level].bound.cmp_key(&key) != Ordering::Equal {
                    break;
                }
                let next = succs[level]
                    .level(level)
                    .succ
                    .read(tx)?
                    .expect("levels are always terminated by the tail sentinel");
                preds[level] = std::mem::replace(&mut succs[level], next);
            }
        }

        // The node's own cells are written below while nothing else
        // references it.  No `Txn::keep_alive` registration is needed (the
        // `Arc` design required one): if this attempt aborts after the link
        // writes, the handle dropped at the end of the body retires the
        // block through the epoch *under this attempt's pin*, so the block
        // provably outlives the rollback that restores these cells — see the
        // lifetime rules in `crate::node`.
        // Born at this attempt's read version: cells stamped 0 would look
        // older than every pinned snapshot, so the first overwrite of each
        // would be preserved forever-growing custody; stamped at `rv`, a
        // node born after a pin is provably outside its window.
        let node = Node::new(key, value, height, i_time, tx.read_version());
        for level in 0..height {
            // The fresh node is unreachable until the neighbour writes below
            // commit, so its own links need no transactional instrumentation:
            // `store_atomic` installs them at the birth version, outside the
            // write set and undo log (an abort simply drops the node).
            // Readers still see them initialized — the data swap here is
            // ordered before the neighbour's commit-time orec release, which
            // is what publishes the node.  This also keeps snapshot custody
            // from preserving the `None` placeholders transactional writes
            // would displace on every insert.
            node.level(level)
                .pred
                .store_atomic(Some(preds[level].clone()));
            node.level(level)
                .succ
                .store_atomic(Some(succs[level].clone()));
        }
        for level in 0..height {
            preds[level]
                .level(level)
                .succ
                .write(tx, Some(node.clone()))?;
            succs[level]
                .level(level)
                .pred
                .write(tx, Some(node.clone()))?;
        }
        Ok(node)
    }

    /// Physically unlink `node` from every level.
    ///
    /// Thanks to the predecessor links this is `O(height)`: no traversal from
    /// the head is required.  The node's own links are left intact so that a
    /// slow-path range query paused on it can still move forward.
    pub fn unstitch(&self, tx: &mut Txn<'_>, node: &NodeRef<K, V>) -> TxResult<()> {
        debug_assert!(!node.is_sentinel(), "sentinels are never unstitched");
        for level in 0..node.height {
            let pred = node
                .level(level)
                .pred
                .read(tx)?
                .expect("linked nodes always have predecessors");
            let succ = node
                .level(level)
                .succ
                .read(tx)?
                .expect("linked nodes always have successors");
            pred.level(level).succ.write(tx, Some(succ.clone()))?;
            succ.level(level).pred.write(tx, Some(pred))?;
        }
        Ok(())
    }

    /// Count logically present nodes by walking level 0 with borrowed hops.
    pub fn count_present(&self, tx: &mut Txn<'_>) -> TxResult<usize> {
        // SAFETY (for every `node()` below): each handle was read through a
        // link cell inside this same attempt, whose epoch guard stays pinned
        // for the whole call.
        let mut count = 0;
        let head = RawNode::from_ref(&self.head);
        // SAFETY: head handle; the attempt's guard is pinned (note above).
        let mut node = unsafe { head.node() }
            .level(0)
            .succ
            .read_with(tx, RawNode::from_link)?
            .expect("levels are always terminated by the tail sentinel");
        // SAFETY: same contract — read under this attempt.
        while !unsafe { node.node() }.is_tail() {
            // SAFETY: same contract — read under this attempt.
            let n = unsafe { node.node() };
            let next = n
                .level(0)
                .succ
                .read_with(tx, RawNode::from_link)?
                .expect("levels are always terminated by the tail sentinel");
            // Overlap the successor's cache miss with this node's mark read.
            next.prefetch();
            if !n.r_time.read_with(tx, Option::is_some)? {
                count += 1;
            }
            node = next;
        }
        Ok(count)
    }

    /// Collect every logically present `(key, value)` pair in order by
    /// walking level 0 (borrowed hops; keys copied out via `K::clone`).
    pub fn collect_present(&self, tx: &mut Txn<'_>) -> TxResult<Vec<(K, V)>> {
        self.collect_present_with(tx, &K::clone)
    }

    /// [`SkipList::collect_present`] with a caller-chosen key extractor, so
    /// `Copy` keys can be copied out of the node instead of cloned (the
    /// `*_copied` fast paths; see docs/PERF.md, Mechanism 6).
    pub(crate) fn collect_present_with(
        &self,
        tx: &mut Txn<'_>,
        extract: &impl Fn(&K) -> K,
    ) -> TxResult<Vec<(K, V)>> {
        // SAFETY (for every `node()` below): each handle was read through a
        // link cell inside this same attempt, whose epoch guard stays pinned
        // for the whole call.
        let mut out = Vec::new();
        let head = RawNode::from_ref(&self.head);
        // SAFETY: head handle; the attempt's guard is pinned (note above).
        let mut node = unsafe { head.node() }
            .level(0)
            .succ
            .read_with(tx, RawNode::from_link)?
            .expect("levels are always terminated by the tail sentinel");
        // SAFETY: same contract — read under this attempt.
        while !unsafe { node.node() }.is_tail() {
            // SAFETY: same contract — read under this attempt.
            let n = unsafe { node.node() };
            let next = n
                .level(0)
                .succ
                .read_with(tx, RawNode::from_link)?
                .expect("levels are always terminated by the tail sentinel");
            // Overlap the successor's cache miss with this element's
            // mark/value reads (the scan loop's dominant stall).
            next.prefetch();
            if !n.r_time.read_with(tx, Option::is_some)? {
                let value = n
                    .value
                    .read_with(tx, Option::clone)?
                    .expect("regular nodes always carry a value");
                out.push((extract(n.key()), value));
            }
            node = next;
        }
        Ok(out)
    }

    /// Validate the structural invariants of the list (test helper):
    ///
    /// 1. keys are non-decreasing along level 0 (duplicates may appear only
    ///    when logically deleted nodes linger);
    /// 2. `pred`/`succ` links are mutually consistent at every level;
    /// 3. every node linked at level `l > 0` is also linked at level `l - 1`.
    pub fn check_invariants(&self, tx: &mut Txn<'_>) -> TxResult<Result<(), String>> {
        // Level 0 ordering + doubly-linked consistency on all levels.
        for level in 0..self.max_level {
            let mut prev = self.head.clone();
            let mut curr = prev
                .level(level)
                .succ
                .read(tx)?
                .expect("levels are always terminated by the tail sentinel");
            loop {
                let back = curr
                    .level(level)
                    .pred
                    .read(tx)?
                    .expect("linked nodes always have predecessors");
                if !NodeRef::ptr_eq(&back, &prev) {
                    return Ok(Err(format!("level {level}: pred link mismatch")));
                }
                if !prev.is_head() && !curr.is_tail() {
                    let ordering = match (&prev.bound, &curr.bound) {
                        (Bound::Key(a), Bound::Key(b)) => a.cmp(b),
                        _ => Ordering::Less,
                    };
                    if ordering == Ordering::Greater {
                        return Ok(Err(format!("level {level}: keys out of order")));
                    }
                }
                if curr.is_tail() {
                    break;
                }
                prev = curr.clone();
                curr = curr
                    .level(level)
                    .succ
                    .read(tx)?
                    .expect("levels are always terminated by the tail sentinel");
            }
        }

        // Each node reachable at level l is reachable at level 0.
        let mut level0 = Vec::new();
        let mut node = self.head.succ0(tx)?;
        while !node.is_tail() {
            level0.push(node.clone());
            node = node.succ0(tx)?;
        }
        for level in 1..self.max_level {
            let mut node = self
                .head
                .level(level)
                .succ
                .read(tx)?
                .expect("levels are always terminated by the tail sentinel");
            while !node.is_tail() {
                if !level0.iter().any(|n| NodeRef::ptr_eq(n, &node)) {
                    return Ok(Err(format!("level {level}: node missing from level 0")));
                }
                node = node
                    .level(level)
                    .succ
                    .read(tx)?
                    .expect("levels are always terminated by the tail sentinel");
            }
        }
        Ok(Ok(()))
    }

    /// Sever every link in the list (teardown helper used by
    /// [`crate::SkipHash`]'s `Drop` to break reference cycles).
    pub fn sever_all(&self) {
        let mut current = self.head.clone();
        loop {
            let next = current.level(0).succ.load_atomic();
            current.sever_links();
            match next {
                Some(n) => current = n,
                None => break,
            }
        }
        self.tail.sever_links();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skiphash_stm::Stm;

    fn list_with(stm: &Stm, keys: &[u64]) -> SkipList<u64, u64> {
        let list = SkipList::new(8);
        let mut rng = rand::thread_rng();
        for &k in keys {
            let h = list.random_height(&mut rng);
            stm.run(|tx| {
                list.insert_after_logical_deletes(tx, k, k * 10, h, 0)
                    .map(|_| ())
            });
        }
        list
    }

    #[test]
    fn empty_list_has_stitched_sentinels() {
        let stm = Stm::new();
        let list: SkipList<u64, u64> = SkipList::new(4);
        let ok = stm.run(|tx| list.check_invariants(tx));
        assert_eq!(ok, Ok(()));
        let count = stm.run(|tx| list.count_present(tx));
        assert_eq!(count, 0);
    }

    #[test]
    fn inserted_keys_come_back_in_order() {
        let stm = Stm::new();
        let list = list_with(&stm, &[5, 1, 9, 3, 7]);
        let pairs = stm.run(|tx| list.collect_present(tx));
        assert_eq!(pairs, vec![(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)]);
        assert_eq!(stm.run(|tx| list.check_invariants(tx)), Ok(()));
    }

    #[test]
    fn ceil_and_succ_skip_correctly() {
        let stm = Stm::new();
        let list = list_with(&stm, &[10, 20, 30]);
        let ceil20 = stm.run(|tx| {
            let n = list.ceil_present(tx, &20)?;
            Ok(*n.key())
        });
        assert_eq!(ceil20, 20);
        let succ20 = stm.run(|tx| {
            let n = list.succ_present(tx, &20)?;
            Ok(*n.key())
        });
        assert_eq!(succ20, 30);
        let ceil15 = stm.run(|tx| {
            let n = list.ceil_present(tx, &15)?;
            Ok(*n.key())
        });
        assert_eq!(ceil15, 20);
        let past_end = stm.run(|tx| Ok(list.ceil_present(tx, &31)?.is_tail()));
        assert!(past_end);
    }

    #[test]
    fn floor_and_pred_walk_backwards() {
        let stm = Stm::new();
        let list = list_with(&stm, &[10, 20, 30]);
        let floor25 = stm.run(|tx| {
            let n = list.floor_present(tx, &25)?;
            Ok(*n.key())
        });
        assert_eq!(floor25, 20);
        let floor20 = stm.run(|tx| {
            let n = list.floor_present(tx, &20)?;
            Ok(*n.key())
        });
        assert_eq!(floor20, 20);
        let pred20 = stm.run(|tx| {
            let n = list.pred_present(tx, &20)?;
            Ok(*n.key())
        });
        assert_eq!(pred20, 10);
        let before_all = stm.run(|tx| Ok(list.pred_present(tx, &10)?.is_head()));
        assert!(before_all);
    }

    #[test]
    fn unstitch_removes_from_every_level() {
        let stm = Stm::new();
        let list: SkipList<u64, u64> = SkipList::new(8);
        let node = stm.run(|tx| list.insert_after_logical_deletes(tx, 42, 420, 8, 0));
        assert_eq!(stm.run(|tx| list.count_present(tx)), 1);
        stm.run(|tx| list.unstitch(tx, &node));
        assert_eq!(stm.run(|tx| list.count_present(tx)), 0);
        assert_eq!(stm.run(|tx| list.check_invariants(tx)), Ok(()));
        list.sever_all();
    }

    #[test]
    fn logically_deleted_nodes_are_skipped_by_present_queries() {
        let stm = Stm::new();
        let list = list_with(&stm, &[10, 20, 30]);
        // Logically delete 20 without unstitching it.
        stm.run(|tx| {
            let n = list.ceil_raw(tx, &20)?;
            n.r_time.write(tx, Some(1))
        });
        let ceil20 = stm.run(|tx| {
            let n = list.ceil_present(tx, &20)?;
            Ok(*n.key())
        });
        assert_eq!(ceil20, 30, "deleted node must be skipped");
        assert_eq!(stm.run(|tx| list.count_present(tx)), 2);
        let pairs = stm.run(|tx| list.collect_present(tx));
        assert_eq!(pairs, vec![(10, 100), (30, 300)]);
    }

    #[test]
    fn insert_after_logical_deletes_lands_after_duplicates() {
        let stm = Stm::new();
        let list: SkipList<u64, u64> = SkipList::new(8);
        let old = stm.run(|tx| list.insert_after_logical_deletes(tx, 5, 50, 3, 0));
        // Logically delete the old node, then insert a fresh node for key 5.
        stm.run(|tx| old.r_time.write(tx, Some(1)));
        let fresh = stm.run(|tx| list.insert_after_logical_deletes(tx, 5, 55, 2, 1));
        // Level-0 order: old (deleted) comes before fresh.
        let order = stm.run(|tx| {
            let first = list.head().succ0(tx)?;
            let second = first.succ0(tx)?;
            Ok((
                NodeRef::ptr_eq(&first, &old),
                NodeRef::ptr_eq(&second, &fresh),
            ))
        });
        assert_eq!(order, (true, true));
        // Present view only sees the fresh value.
        let pairs = stm.run(|tx| list.collect_present(tx));
        assert_eq!(pairs, vec![(5, 55)]);
        assert_eq!(stm.run(|tx| list.check_invariants(tx)), Ok(()));
    }

    #[test]
    fn borrowed_point_queries_match_slow_reference() {
        // Regression for the borrowed-hop rewrite of the point queries:
        // ceil/succ/floor/pred/first must agree with the reference answers
        // computed from the full present-key set, including around lingering
        // logically deleted nodes and re-inserted duplicates.
        use std::collections::BTreeSet;
        let stm = Stm::new();
        let list: SkipList<u64, u64> = SkipList::new(8);
        let mut rng = rand::thread_rng();
        let mut present: BTreeSet<u64> = BTreeSet::new();
        for k in [10u64, 3, 7, 15, 12, 9, 1, 20, 5, 17] {
            let h = list.random_height(&mut rng);
            stm.run(|tx| {
                list.insert_after_logical_deletes(tx, k, k, h, 0)
                    .map(|_| ())
            });
            present.insert(k);
        }
        // Logically delete a few nodes without unstitching them.
        for k in [7u64, 15, 1] {
            stm.run(|tx| {
                let n = list.ceil_raw(tx, &k)?;
                n.r_time.write(tx, Some(1))
            });
            present.remove(&k);
        }
        // Re-insert one key so a deleted duplicate precedes a present node.
        let h = list.random_height(&mut rng);
        stm.run(|tx| {
            list.insert_after_logical_deletes(tx, 7, 70, h, 1)
                .map(|_| ())
        });
        present.insert(7);

        let key_of = |n: &NodeRef<u64, u64>| {
            if n.is_sentinel() {
                None
            } else {
                Some(*n.key())
            }
        };
        for probe in 0..=22u64 {
            let ceil = stm.run(|tx| Ok(key_of(&list.ceil_present(tx, &probe)?)));
            assert_eq!(
                ceil,
                present.range(probe..).next().copied(),
                "ceil({probe})"
            );
            let succ = stm.run(|tx| Ok(key_of(&list.succ_present(tx, &probe)?)));
            assert_eq!(
                succ,
                present.range(probe + 1..).next().copied(),
                "succ({probe})"
            );
            let floor = stm.run(|tx| Ok(key_of(&list.floor_present(tx, &probe)?)));
            assert_eq!(
                floor,
                present.range(..=probe).next_back().copied(),
                "floor({probe})"
            );
            let pred = stm.run(|tx| Ok(key_of(&list.pred_present(tx, &probe)?)));
            assert_eq!(
                pred,
                present.range(..probe).next_back().copied(),
                "pred({probe})"
            );
        }
        let first = stm.run(|tx| Ok(key_of(&list.first_present(tx)?)));
        assert_eq!(first, present.iter().next().copied());
        assert_eq!(stm.run(|tx| list.check_invariants(tx)), Ok(()));
    }

    #[test]
    fn random_height_is_within_bounds() {
        let list: SkipList<u64, u64> = SkipList::new(6);
        let mut rng = rand::thread_rng();
        for _ in 0..1000 {
            let h = list.random_height(&mut rng);
            assert!((1..=6).contains(&h));
        }
    }

    #[test]
    fn aborted_insert_rolls_back_without_keepalive() {
        // The rollback-through-freed-cells hazard the Arc design guarded
        // against with `Txn::keep_alive`: abort an insert *after* its link
        // writes and make sure the undo walk (which touches the dead node's
        // own cells) is sound and the list is unchanged.
        let stm = Stm::new();
        let list: SkipList<u64, u64> = SkipList::new(8);
        stm.run(|tx| {
            list.insert_after_logical_deletes(tx, 10, 100, 4, 0)
                .map(|_| ())
        });
        let mut first = true;
        stm.run(|tx| {
            let _node = list.insert_after_logical_deletes(tx, 20, 200, 8, 0)?;
            if first {
                first = false;
                // `_node` (the only handle) drops at the end of this body,
                // before the rollback runs.
                return tx.abort();
            }
            Ok(())
        });
        let pairs = stm.run(|tx| list.collect_present(tx));
        assert_eq!(pairs, vec![(10, 100), (20, 200)]);
        assert_eq!(stm.run(|tx| list.check_invariants(tx)), Ok(()));
    }

    #[test]
    fn sever_all_breaks_cycles() {
        let stm = Stm::new();
        let list = list_with(&stm, &[1, 2, 3, 4, 5]);
        list.sever_all();
        assert!(list.head().level(0).succ.load_atomic().is_none());
    }
}
