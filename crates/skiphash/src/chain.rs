//! Arena-recycled buffers for the transactional hash map's bucket chains.
//!
//! The hash map's buckets are copy-on-write: every transactional read of a
//! bucket clones its chain, and every update writes a modified clone back.
//! With `Vec<(K, T)>` chains each of those clones bought a buffer from the
//! global allocator and the displaced chain's buffer went back to it through
//! the epoch — two allocator round trips per map operation, on top of the
//! node block the skip list used to allocate.  [`Chain`] is the `Vec`
//! replacement whose buffer comes from [`skiphash_stm::arena`]'s size-classed
//! pools instead, so steady-state map operations recycle the same handful of
//! blocks.
//!
//! Capacity is negotiated with the arena up front
//! ([`arena::recommended_size`]) and remembered, so the alloc/free pair is
//! trivially consistent and a chain always owns its class's full capacity.
//! Clones allocate the same number of bytes as their source; per-bucket
//! capacity therefore stabilizes at the chain's historical maximum, which is
//! exactly what keeps clone→retire→clone cycles inside one class's pool.
//!
//! Pairs whose alignment exceeds the arena's block alignment transparently
//! fall back to the global allocator (the arena makes that call); zero-sized
//! pairs never allocate at all.

use std::fmt;
use std::mem;
use std::ptr::{self, NonNull};

use skiphash_stm::arena;

/// A fixed-capacity-by-class growable buffer of `(K, T)` pairs — the bucket
/// chain representation of [`crate::TxHashMap`].
pub(crate) struct Chain<K, T> {
    ptr: NonNull<(K, T)>,
    len: usize,
    /// Bytes obtained from the arena (0 = nothing allocated).  Passed back
    /// verbatim on free; capacity is derived from it.
    alloc_bytes: usize,
}

// SAFETY: a Chain owns its buffer exclusively, exactly like Vec<(K, T)>.
unsafe impl<K: Send, T: Send> Send for Chain<K, T> {}
unsafe impl<K: Sync, T: Sync> Sync for Chain<K, T> {}

impl<K, T> Chain<K, T> {
    const ELEM: usize = mem::size_of::<(K, T)>();
    const ALIGN: usize = mem::align_of::<(K, T)>();

    /// An empty chain; allocates nothing.
    pub(crate) fn new() -> Self {
        Self {
            ptr: NonNull::dangling(),
            len: 0,
            alloc_bytes: 0,
        }
    }

    /// Number of pairs in the chain.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// True when the chain holds no pairs.
    #[cfg_attr(not(test), allow(dead_code))] // used by tests and kept for API symmetry
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn capacity(&self) -> usize {
        self.alloc_bytes
            .checked_div(Self::ELEM)
            .unwrap_or(usize::MAX)
    }

    /// The pairs as a slice.
    pub(crate) fn as_slice(&self) -> &[(K, T)] {
        // SAFETY: the first `len` slots are initialized; for ZST pairs the
        // dangling pointer is valid for any length.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    fn as_mut_slice(&mut self) -> &mut [(K, T)] {
        // SAFETY: as `as_slice`, plus `&mut self` grants exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Iterate over the pairs.
    pub(crate) fn iter(&self) -> std::slice::Iter<'_, (K, T)> {
        self.as_slice().iter()
    }

    /// Iterate mutably over the pairs.
    #[cfg_attr(not(test), allow(dead_code))] // used by tests and kept for API symmetry
    pub(crate) fn iter_mut(&mut self) -> std::slice::IterMut<'_, (K, T)> {
        self.as_mut_slice().iter_mut()
    }

    /// Allocate a buffer of exactly `bytes` (a value previously produced by
    /// [`arena::recommended_size`], or any size for the fallback paths).
    fn buffer_for(bytes: usize) -> NonNull<(K, T)> {
        let (raw, recycled) = arena::alloc_raw(bytes, Self::ALIGN);
        if recycled {
            arena::note_chain_recycle();
        }
        // SAFETY: the arena never returns null (it aborts on OOM).
        unsafe { NonNull::new_unchecked(raw.cast()) }
    }

    #[cold]
    fn grow(&mut self) {
        debug_assert!(Self::ELEM > 0, "ZST chains never grow");
        let needed = Self::ELEM * (self.len + 1);
        // From one class the next request lands in a strictly larger class;
        // beyond the largest class the arena leaves sizes unchanged, so fall
        // back to doubling for geometric growth.
        let min_bytes = needed.max(self.alloc_bytes.saturating_add(1));
        let mut new_bytes = arena::recommended_size(min_bytes, Self::ALIGN);
        if !arena::pooled(new_bytes, Self::ALIGN) {
            new_bytes = needed.max(self.alloc_bytes.saturating_mul(2));
        }
        let new_ptr = Self::buffer_for(new_bytes);
        if self.alloc_bytes > 0 {
            // SAFETY: both buffers are live and disjoint; the first `len`
            // source slots are initialized and become logically uninitialized
            // (moved) after the copy.
            unsafe {
                ptr::copy_nonoverlapping(self.ptr.as_ptr(), new_ptr.as_ptr(), self.len);
                arena::free_raw(self.ptr.as_ptr().cast(), self.alloc_bytes, Self::ALIGN);
            }
        }
        self.ptr = new_ptr;
        self.alloc_bytes = new_bytes;
    }

    /// Append a pair.
    pub(crate) fn push(&mut self, pair: (K, T)) {
        if Self::ELEM > 0 && self.len == self.capacity() {
            self.grow();
        }
        // SAFETY: slot `len` is within capacity and uninitialized.
        unsafe { self.ptr.as_ptr().add(self.len).write(pair) };
        self.len += 1;
    }

    /// Mutable access to the value of the pair at `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub(crate) fn value_mut(&mut self, index: usize) -> &mut T {
        &mut self.as_mut_slice()[index].1
    }

    /// Remove and return the pair at `index`, replacing it with the last
    /// pair (like `Vec::swap_remove`).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub(crate) fn swap_remove(&mut self, index: usize) -> (K, T) {
        assert!(index < self.len, "swap_remove index out of bounds");
        self.len -= 1;
        // SAFETY: both slots were initialized; after the read/move, slot
        // `len` is logically uninitialized and outside the live prefix.
        unsafe {
            let removed = self.ptr.as_ptr().add(index).read();
            if index != self.len {
                let last = self.ptr.as_ptr().add(self.len).read();
                self.ptr.as_ptr().add(index).write(last);
            }
            removed
        }
    }
}

impl<K: PartialEq, T> Chain<K, T> {
    /// Linear-probe the chain for `key`, returning its slot index.
    ///
    /// This is the one scan loop behind every `TxHashMap` bucket operation
    /// (get/contains/insert/upsert/remove).  Chains keep their pairs in one
    /// dense forward array — grouped, never linked — precisely so this probe
    /// is a streaming scan the hardware prefetcher likes; for chains long
    /// enough to span cache lines we also issue an explicit software
    /// prefetch one line ahead, so the next line's miss overlaps the key
    /// comparisons in the current one (same policy as the skip-list level-0
    /// scan; see docs/PERF.md, Mechanism 6).
    pub(crate) fn probe(&self, key: &K) -> Option<usize> {
        const LINE_BYTES: usize = 64;
        // Pairs per cache line (floor 1 for pairs larger than a line).
        let stride = (LINE_BYTES / Self::ELEM.max(1)).max(1);
        let slice = self.as_slice();
        for (index, (k, _)) in slice.iter().enumerate() {
            if index % stride == 0 && index + stride < slice.len() {
                skiphash_stm::sync::prefetch_read(std::ptr::from_ref(&slice[index + stride]));
            }
            if k == key {
                return Some(index);
            }
        }
        None
    }
}

impl<K: Clone, T: Clone> Clone for Chain<K, T> {
    fn clone(&self) -> Self {
        // `alloc_bytes == 0` means either an empty chain (non-ZST pairs hold
        // no elements without a buffer) or a ZST chain of any length; the
        // element-clone loop below must still run for the latter so `Clone`
        // and `Drop` stay balanced per element.
        let ptr = if self.alloc_bytes == 0 {
            NonNull::dangling()
        } else {
            Self::buffer_for(self.alloc_bytes)
        };
        let mut clone = Self {
            ptr,
            len: 0,
            alloc_bytes: self.alloc_bytes,
        };
        for (index, pair) in self.as_slice().iter().enumerate() {
            // SAFETY: `index` is within the freshly allocated capacity (the
            // clone has the same alloc_bytes as the source); for ZST pairs
            // the dangling pointer is valid for writes at any index.
            unsafe { clone.ptr.as_ptr().add(index).write(pair.clone()) };
            // Track length as we go so a panicking `clone()` drops the pairs
            // already written (and the buffer) instead of leaking them.
            clone.len = index + 1;
        }
        clone
    }
}

impl<K, T> Drop for Chain<K, T> {
    fn drop(&mut self) {
        // SAFETY: the live prefix is initialized; the buffer came from
        // `buffer_for(alloc_bytes)` when alloc_bytes > 0.
        unsafe {
            ptr::drop_in_place(ptr::slice_from_raw_parts_mut(self.ptr.as_ptr(), self.len));
            if self.alloc_bytes > 0 {
                arena::free_raw(self.ptr.as_ptr().cast(), self.alloc_bytes, Self::ALIGN);
            }
        }
    }
}

impl<K: fmt::Debug, T: fmt::Debug> fmt::Debug for Chain<K, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_iter_swap_remove_round_trip() {
        let mut chain: Chain<u64, String> = Chain::new();
        assert!(chain.is_empty());
        for i in 0..20u64 {
            chain.push((i, format!("v{i}")));
        }
        assert_eq!(chain.len(), 20);
        let keys: Vec<u64> = chain.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..20).collect::<Vec<_>>());
        let (k, v) = chain.swap_remove(0);
        assert_eq!((k, v.as_str()), (0, "v0"));
        assert_eq!(chain.len(), 19);
        assert_eq!(chain.as_slice()[0].0, 19, "last pair swapped into the hole");
        // Remove everything, in arbitrary order.
        while !chain.is_empty() {
            chain.swap_remove(chain.len() - 1);
        }
    }

    #[test]
    fn clone_is_deep_and_preserves_capacity_class() {
        let mut chain: Chain<u64, u64> = Chain::new();
        for i in 0..10 {
            chain.push((i, i * 2));
        }
        let copy = chain.clone();
        assert_eq!(copy.as_slice(), chain.as_slice());
        assert_eq!(copy.alloc_bytes, chain.alloc_bytes);
        drop(chain);
        assert_eq!(copy.len(), 10, "clone survives the source");
    }

    #[test]
    fn buffers_are_recycled_through_the_arena() {
        let before = arena::chain_recycle_hits();
        for _ in 0..64 {
            let mut chain: Chain<u64, u64> = Chain::new();
            chain.push((1, 1));
            let copy = chain.clone();
            drop(chain);
            drop(copy);
        }
        assert!(
            arena::chain_recycle_hits() > before,
            "chain churn must recycle arena blocks"
        );
    }

    #[test]
    fn probe_finds_keys_across_cache_lines() {
        // Pairs of 16 bytes: four per line, so a 40-element chain spans ten
        // lines and exercises the probe's line-ahead prefetch arm.
        let mut chain: Chain<u64, u64> = Chain::new();
        assert_eq!(chain.probe(&0), None, "empty chain probes clean");
        for i in 0..40u64 {
            chain.push((i, i * 3));
        }
        for i in 0..40u64 {
            let index = chain.probe(&i).expect("every pushed key is found");
            assert_eq!(chain.as_slice()[index], (i, i * 3));
        }
        assert_eq!(chain.probe(&999), None);
        // Probe agrees with value_mut: update through the probed slot.
        let index = chain.probe(&7).unwrap();
        *chain.value_mut(index) = 0;
        assert_eq!(chain.as_slice()[index], (7, 0));
    }

    #[test]
    fn iter_mut_updates_in_place() {
        let mut chain: Chain<u64, u64> = Chain::new();
        chain.push((1, 10));
        chain.push((2, 20));
        if let Some(slot) = chain.iter_mut().find(|(k, _)| *k == 2) {
            slot.1 = 99;
        }
        assert_eq!(chain.as_slice()[1], (2, 99));
    }

    #[test]
    fn drop_releases_heap_pairs_exactly_once() {
        use skiphash_stm::sync::{AtomicUsize, Ordering};
        use std::sync::Arc;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Clone)]
        struct Counted(#[allow(dead_code)] Arc<()>);
        impl Drop for Counted {
            fn drop(&mut self) {
                // SC: test drop counter — strongest ordering, not perf-sensitive.
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let token = Arc::new(());
        let mut chain: Chain<u64, Counted> = Chain::new();
        for i in 0..8 {
            chain.push((i, Counted(Arc::clone(&token))));
        }
        let copy = chain.clone();
        let popped = chain.swap_remove(3);
        drop(popped);
        drop(chain);
        drop(copy);
        // SC: test drop counter read.
        assert_eq!(DROPS.load(Ordering::SeqCst), 16);
        assert_eq!(Arc::strong_count(&token), 1);
    }

    #[test]
    fn growth_crosses_classes() {
        let mut chain: Chain<u64, [u8; 56]> = Chain::new(); // 64-byte pairs
        for i in 0..200u64 {
            chain.push((i, [0; 56]));
        }
        assert_eq!(chain.len(), 200);
        assert!(chain.alloc_bytes >= 200 * 64, "oversize growth still works");
        let keys: Vec<u64> = chain.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..200).collect::<Vec<_>>());
    }
}
