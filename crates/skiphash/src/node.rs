//! Skip list nodes.
//!
//! A node stores its key and tower height as plain immutable fields (the
//! paper's `const` optimization: immutable data needs no STM
//! instrumentation), and everything mutable — the value, the range-query
//! timestamps, and the predecessor/successor links at every level — in
//! [`TCell`]s.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use skiphash_stm::{TCell, TxResult, Txn};

use crate::{MapKey, MapValue};

/// A key position on the skip list axis: either a real key or one of the two
/// sentinels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound<K> {
    /// The head sentinel, smaller than every key.
    NegInf,
    /// A real key.
    Key(K),
    /// The tail sentinel, greater than every key.
    PosInf,
}

impl<K: Ord> Bound<K> {
    /// Compare this bound against a real key.
    pub fn cmp_key(&self, key: &K) -> Ordering {
        match self {
            Bound::NegInf => Ordering::Less,
            Bound::Key(k) => k.cmp(key),
            Bound::PosInf => Ordering::Greater,
        }
    }

    /// True if this bound is strictly less than `key`.
    pub fn is_before(&self, key: &K) -> bool {
        self.cmp_key(key) == Ordering::Less
    }

    /// True if this bound is less than or equal to `key`.
    pub fn is_at_most(&self, key: &K) -> bool {
        self.cmp_key(key) != Ordering::Greater
    }
}

/// A link to a neighbouring node (absent only outside the sentinels).
pub type Link<K, V> = Option<Arc<Node<K, V>>>;

/// Predecessor/successor links for one level of a node's tower.
pub struct Level<K, V> {
    /// Link to the previous node at this level.
    pub pred: TCell<Link<K, V>>,
    /// Link to the next node at this level.
    pub succ: TCell<Link<K, V>>,
}

impl<K, V> Level<K, V> {
    fn empty() -> Self {
        Self {
            pred: TCell::new(None),
            succ: TCell::new(None),
        }
    }
}

impl<K, V> fmt::Debug for Level<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Level { .. }")
    }
}

/// A node of the doubly linked skip list.
pub struct Node<K, V> {
    /// The node's position on the key axis (immutable).
    pub bound: Bound<K>,
    /// Tower height (immutable, at least 1).
    pub height: usize,
    /// The associated value (`None` only for sentinels).
    pub value: TCell<Option<V>>,
    /// Version of the most recent slow-path range query that began before
    /// this node was inserted.
    pub i_time: TCell<u64>,
    /// `None` while the node is logically present; set to the most recent
    /// range query version when the node is logically deleted.
    pub r_time: TCell<Option<u64>>,
    /// Predecessor/successor links, one pair per level in `0..height`.
    /// Boxed slice rather than `Vec`: the tower is immutable after
    /// construction (only the cells inside it change), so the node carries
    /// no spare capacity word.
    pub tower: Box<[Level<K, V>]>,
}

impl<K, V> fmt::Debug for Node<K, V>
where
    K: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("bound", &self.bound)
            .field("height", &self.height)
            .finish()
    }
}

impl<K: MapKey, V: MapValue> Node<K, V> {
    /// Create a regular node carrying `key`/`value` with the given tower
    /// height and insertion time.
    pub fn new(key: K, value: V, height: usize, i_time: u64) -> Arc<Self> {
        Arc::new(Self::fresh(key, value, height, i_time))
    }

    /// Build a regular node by value, without wrapping it in an [`Arc`].
    ///
    /// This exists so transactional insert paths can allocate through
    /// [`skiphash_stm::Txn::alloc`], which registers the allocation with the
    /// transaction in the same step (the structural fix for the
    /// rollback-through-freed-cells hazard of hand-rolled `keep_alive`
    /// calls).
    pub fn fresh(key: K, value: V, height: usize, i_time: u64) -> Self {
        assert!(height >= 1, "node height must be at least 1");
        Self {
            bound: Bound::Key(key),
            height,
            value: TCell::new(Some(value)),
            i_time: TCell::new(i_time),
            r_time: TCell::new(None),
            tower: (0..height).map(|_| Level::empty()).collect(),
        }
    }

    /// Create one of the two sentinel nodes with a full-height tower.
    pub fn sentinel(bound: Bound<K>, height: usize) -> Arc<Self> {
        debug_assert!(matches!(bound, Bound::NegInf | Bound::PosInf));
        Arc::new(Self {
            bound,
            height,
            value: TCell::new(None),
            i_time: TCell::new(0),
            r_time: TCell::new(None),
            tower: (0..height).map(|_| Level::empty()).collect(),
        })
    }

    /// True for the head or tail sentinel.
    pub fn is_sentinel(&self) -> bool {
        !matches!(self.bound, Bound::Key(_))
    }

    /// True for the tail sentinel.
    pub fn is_tail(&self) -> bool {
        matches!(self.bound, Bound::PosInf)
    }

    /// True for the head sentinel.
    pub fn is_head(&self) -> bool {
        matches!(self.bound, Bound::NegInf)
    }

    /// The node's key.
    ///
    /// # Panics
    ///
    /// Panics when called on a sentinel.
    pub fn key(&self) -> &K {
        match &self.bound {
            Bound::Key(k) => k,
            _ => panic!("sentinel nodes have no key"),
        }
    }

    /// Transactionally read the node's value.
    ///
    /// # Panics
    ///
    /// Panics when called on a sentinel (sentinels never carry values).
    pub fn read_value(&self, tx: &mut Txn<'_>) -> TxResult<V> {
        Ok(self
            .value
            .read(tx)?
            .expect("regular nodes always carry a value"))
    }

    /// Transactionally read the successor link at `level`.
    pub fn succ(&self, tx: &mut Txn<'_>, level: usize) -> TxResult<Link<K, V>> {
        self.tower[level].succ.read(tx)
    }

    /// Transactionally read the predecessor link at `level`.
    pub fn pred(&self, tx: &mut Txn<'_>, level: usize) -> TxResult<Link<K, V>> {
        self.tower[level].pred.read(tx)
    }

    /// Transactionally read the level-0 successor, which must exist (only the
    /// tail sentinel has none, and callers never walk past the tail).
    pub fn succ0(&self, tx: &mut Txn<'_>) -> TxResult<Arc<Node<K, V>>> {
        Ok(self.tower[0]
            .succ
            .read(tx)?
            .expect("interior nodes always have a level-0 successor"))
    }

    /// True if the node is logically deleted (its `r_time` is set).
    pub fn is_logically_deleted(&self, tx: &mut Txn<'_>) -> TxResult<bool> {
        Ok(self.r_time.read(tx)?.is_some())
    }

    /// Sever all of this node's links (used only during teardown, outside of
    /// any transaction, to break `Arc` cycles).
    pub fn sever_links(&self) {
        for level in &self.tower {
            level.pred.store_atomic(None);
            level.succ.store_atomic(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skiphash_stm::Stm;

    #[test]
    fn bound_ordering_relative_to_keys() {
        let neg: Bound<u64> = Bound::NegInf;
        let pos: Bound<u64> = Bound::PosInf;
        let five = Bound::Key(5u64);
        assert!(neg.is_before(&0));
        assert!(!pos.is_before(&u64::MAX));
        assert_eq!(five.cmp_key(&5), Ordering::Equal);
        assert!(five.is_before(&6));
        assert!(five.is_at_most(&5));
        assert!(!five.is_at_most(&4));
    }

    #[test]
    fn new_node_fields() {
        let n = Node::<u64, String>::new(9, "x".into(), 3, 7);
        assert_eq!(n.height, 3);
        assert_eq!(n.tower.len(), 3);
        assert_eq!(*n.key(), 9);
        assert!(!n.is_sentinel());
        assert_eq!(n.i_time.load_atomic(), 7);
        assert_eq!(n.r_time.load_atomic(), None);
    }

    #[test]
    fn sentinels_report_their_kind() {
        let head = Node::<u64, u64>::sentinel(Bound::NegInf, 4);
        let tail = Node::<u64, u64>::sentinel(Bound::PosInf, 4);
        assert!(head.is_head() && head.is_sentinel() && !head.is_tail());
        assert!(tail.is_tail() && tail.is_sentinel() && !tail.is_head());
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sentinel_key_panics() {
        let head = Node::<u64, u64>::sentinel(Bound::NegInf, 1);
        let _ = head.key();
    }

    #[test]
    fn read_value_inside_transaction() {
        let stm = Stm::new();
        let n = Node::<u64, u64>::new(1, 10, 1, 0);
        let v = stm.run(|tx| n.read_value(tx));
        assert_eq!(v, 10);
    }

    #[test]
    fn sever_links_clears_every_level() {
        let a = Node::<u64, u64>::new(1, 1, 2, 0);
        let b = Node::<u64, u64>::new(2, 2, 2, 0);
        for l in 0..2 {
            a.tower[l].succ.store_atomic(Some(Arc::clone(&b)));
            b.tower[l].pred.store_atomic(Some(Arc::clone(&a)));
        }
        a.sever_links();
        b.sever_links();
        for l in 0..2 {
            assert!(a.tower[l].succ.load_atomic().is_none());
            assert!(b.tower[l].pred.load_atomic().is_none());
        }
    }
}
