//! Skip list nodes, allocated from the recycling structure arena.
//!
//! A node stores its key and tower height as plain immutable fields (the
//! paper's `const` optimization: immutable data needs no STM
//! instrumentation), and everything mutable — the value, the range-query
//! timestamps, and the predecessor/successor links at every level — in
//! [`TCell`]s.
//!
//! # The node block
//!
//! Until PR 5 a node was an `Arc<Node>` whose tower was a separately boxed
//! `Box<[Level]>`: two global-allocator round trips per insert, two frees per
//! reclamation, and the frees usually landed on a *different* thread than the
//! allocations (epoch collection runs wherever pinning happens), which is the
//! worst case for every general-purpose allocator.  Now the whole node —
//! reference count, header, and the tower *inline* as a trailing array of
//! exactly `height` levels — lives in one block carved from
//! [`skiphash_stm::arena`]'s size-classed pools:
//!
//! ```text
//! NodeBlock { refs: AtomicUsize, node: Node { bound, r_time, value,
//!             i_time, height, tower: ↓ }, [Level; height] ← points here }
//! ```
//!
//! [`NodeRef`] is the `Arc` replacement: a pointer-sized handle whose
//! reference count lives inside the block.
//!
//! # Lifetime rules (why release is epoch-deferred)
//!
//! Dropping the last `NodeRef` does **not** free the block; it retires it
//! through the epoch shim's `defer_with`, and the reclamation glue — run only
//! after every thread pinned at retirement time has unpinned — drops the
//! node's fields and returns the block to the arena.  Two hazards force this
//! (both shared with the payload slab, see `docs/PERF.md`):
//!
//! * **Read-set orecs.**  A transaction records raw pointers to the orecs of
//!   every cell it read — including cells of nodes it no longer holds a
//!   reference to by the time commit-time validation dereferences them.  The
//!   transaction's epoch pin is what keeps those orecs readable; recycling a
//!   block mid-pin would let validation read a *reused* orec and admit a torn
//!   snapshot.
//! * **Transactional rollback.**  An insert that aborts may drop its only
//!   `NodeRef` (ending the transaction body) *before* the rollback walks the
//!   undo log and restores the node's own cells.  Because the zero-count
//!   retirement happens under the attempt's pin, the block provably outlives
//!   the rollback — this is why the insert path needs no explicit
//!   `Txn::keep_alive` registration (see
//!   [`crate::skiplist::SkipList::insert_after_logical_deletes`]).
//!
//! The count itself cannot resurrect: references are only ever cloned from
//! live references, and any reference reachable through a `TCell` payload is
//! kept alive by that payload, whose own drop is epoch-deferred.  So when the
//! count hits zero no thread can produce a new one, and a single deferral
//! suffices.
//!
//! Reclamation glue may run *inside* an epoch collection cycle, and dropping
//! a node's link cells can release the last reference to a neighbour —
//! whose retirement then pins and defers from within the running cycle.  The
//! vendored epoch shim explicitly supports this re-entrancy (destructors
//! execute outside its thread-local borrow); nesting stays depth-one because
//! the neighbour is *deferred*, never freed recursively.

use skiphash_stm::sync::{fence, AtomicUsize, Ordering as AtomicOrdering};
use std::alloc::Layout;
use std::cmp::Ordering;
use std::fmt;
use std::ops::Deref;
use std::ptr::{self, addr_of_mut, NonNull};

use crossbeam_epoch as epoch;
use skiphash_stm::{arena, TCell, TxResult, Txn};

use crate::{MapKey, MapValue};

/// A key position on the skip list axis: either a real key or one of the two
/// sentinels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound<K> {
    /// The head sentinel, smaller than every key.
    NegInf,
    /// A real key.
    Key(K),
    /// The tail sentinel, greater than every key.
    PosInf,
}

impl<K: Ord> Bound<K> {
    /// Compare this bound against a real key.
    pub fn cmp_key(&self, key: &K) -> Ordering {
        match self {
            Bound::NegInf => Ordering::Less,
            Bound::Key(k) => k.cmp(key),
            Bound::PosInf => Ordering::Greater,
        }
    }

    /// True if this bound is strictly less than `key`.
    pub fn is_before(&self, key: &K) -> bool {
        self.cmp_key(key) == Ordering::Less
    }

    /// True if this bound is less than or equal to `key`.
    pub fn is_at_most(&self, key: &K) -> bool {
        self.cmp_key(key) != Ordering::Greater
    }
}

/// A link to a neighbouring node (absent only outside the sentinels).
pub type Link<K, V> = Option<NodeRef<K, V>>;

/// Predecessor/successor links for one level of a node's tower.
///
/// `repr(C)` with `succ` first: forward traversal (descent and level-0
/// scans) touches only successor links, so keeping `succ` at offset 0 means
/// the tower-line prefetch issued one hop ahead (`RawNode::prefetch`)
/// covers the next hop's link without also paying for the predecessor cell
/// (see docs/PERF.md, Mechanism 6).
#[repr(C)]
pub struct Level<K, V> {
    /// Link to the next node at this level.
    pub succ: TCell<Link<K, V>>,
    /// Link to the previous node at this level.
    pub pred: TCell<Link<K, V>>,
}

impl<K, V> Level<K, V> {
    fn empty_at(born: u64) -> Self {
        Self {
            pred: TCell::new_at(None, born),
            succ: TCell::new_at(None, born),
        }
    }
}

impl<K, V> fmt::Debug for Level<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Level { .. }")
    }
}

/// The arena block backing one node: the reference count, the node header,
/// and (immediately after, in the same allocation) the `[Level; height]`
/// tower the header's `tower` pointer designates.
#[repr(C)]
struct NodeBlock<K, V> {
    refs: AtomicUsize,
    node: Node<K, V>,
}

/// Byte layout of a block for a tower of `height` levels, plus the offset of
/// the tower array.  A pure function of the type and the height, so the
/// allocation and reclamation sides always agree (the glue re-derives it from
/// the height stored in the header).
fn block_layout<K, V>(height: usize) -> (Layout, usize) {
    let header = Layout::new::<NodeBlock<K, V>>();
    let tower = Layout::array::<Level<K, V>>(height).expect("tower layout");
    let (layout, offset) = header.extend(tower).expect("block layout");
    (layout.pad_to_align(), offset)
}

/// A node of the doubly linked skip list.
///
/// Obtained by dereferencing a [`NodeRef`]; never exists outside a node
/// block.
///
/// `repr(C)` with the scan-hot fields first: a level-0 scan reads, per
/// element, the key (`bound`), the deletion mark (`r_time`), and the value
/// cell — so those lead the header and, for small keys, land in the block's
/// first cache line together with `refs` (blocks are cache-line aligned,
/// see `stm::arena::BLOCK_ALIGN`).  The descent-only and immutable-cold
/// fields (`i_time`, `height`, `tower`) trail.  Layout rules are documented
/// in docs/PERF.md, Mechanism 6.
#[repr(C)]
pub struct Node<K, V> {
    /// The node's position on the key axis (immutable).
    pub bound: Bound<K>,
    /// `None` while the node is logically present; set to the most recent
    /// range query version when the node is logically deleted.
    pub r_time: TCell<Option<u64>>,
    /// The associated value (`None` only for sentinels).
    pub value: TCell<Option<V>>,
    /// Version of the most recent slow-path range query that began before
    /// this node was inserted.
    pub i_time: TCell<u64>,
    /// Tower height (immutable, at least 1).
    pub height: usize,
    /// The inline tower: points at the `[Level; height]` array stored in the
    /// same arena block, immediately after this header.  Stable for the
    /// block's lifetime (blocks never move).
    tower: NonNull<Level<K, V>>,
}

impl<K, V> Node<K, V> {
    /// The tower as a slice, one [`Level`] per level in `0..height`.
    #[inline]
    pub fn tower(&self) -> &[Level<K, V>] {
        // SAFETY: `tower` points at `height` initialized levels in the same
        // live block as `self` (established at construction, immutable).
        unsafe { std::slice::from_raw_parts(self.tower.as_ptr(), self.height) }
    }

    /// The links at `level` (must be `< height`).
    #[inline]
    pub fn level(&self, level: usize) -> &Level<K, V> {
        &self.tower()[level]
    }
}

impl<K, V> fmt::Debug for Node<K, V>
where
    K: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("bound", &self.bound)
            .field("height", &self.height)
            .finish()
    }
}

/// A counted handle to a pooled skip list node — the arena-recycled
/// replacement for `Arc<Node>`.
///
/// Clones bump the count stored inside the node's block; dropping the last
/// handle retires the block through the epoch (see the module docs for the
/// lifetime rules).  Dereferences to [`Node`].
pub struct NodeRef<K, V> {
    block: NonNull<NodeBlock<K, V>>,
}

// SAFETY: a NodeRef is a counted pointer to a block whose shared state is
// all atomics and TCells (themselves Sync for Send + Sync contents); the
// count manipulation follows the Arc protocol and reclamation is
// epoch-deferred.  K/V travel across threads both inside cells and by value
// (reads clone them), hence both bounds on both impls.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for NodeRef<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for NodeRef<K, V> {}

impl<K, V> NodeRef<K, V> {
    /// True when both handles designate the same node (pointer identity,
    /// like `Arc::ptr_eq`).
    #[inline]
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        a.block.as_ptr() == b.block.as_ptr()
    }

    #[inline]
    fn refs(&self) -> &AtomicUsize {
        // SAFETY: the block outlives every handle.
        unsafe { &self.block.as_ref().refs }
    }

    /// Current reference count (test/debug helper; racy by nature).
    #[cfg(test)]
    pub(crate) fn ref_count(&self) -> usize {
        self.refs().load(AtomicOrdering::Relaxed)
    }
}

impl<K, V> Deref for NodeRef<K, V> {
    type Target = Node<K, V>;

    #[inline]
    fn deref(&self) -> &Node<K, V> {
        // SAFETY: the block stays allocated (and its header initialized)
        // until after the last handle drops *and* the epoch quiesces.
        unsafe { &self.block.as_ref().node }
    }
}

impl<K, V> Clone for NodeRef<K, V> {
    #[inline]
    fn clone(&self) -> Self {
        // Relaxed suffices: the clone source proves the count is non-zero,
        // and the release/acquire pair on drop orders the final teardown
        // (the Arc protocol).
        self.refs().fetch_add(1, AtomicOrdering::Relaxed);
        Self { block: self.block }
    }
}

impl<K, V> Drop for NodeRef<K, V> {
    fn drop(&mut self) {
        if self.refs().fetch_sub(1, AtomicOrdering::Release) == 1 {
            fence(AtomicOrdering::Acquire);
            // Retire under a pin taken *now*: if this drop runs inside a
            // transaction (the common case — link payloads dropping in the
            // epoch, locals dropping at body end), the enclosing pin keeps
            // the block from being recycled before the attempt finishes; if
            // it runs inside a collection cycle, the shim's re-entrant
            // deferral path picks it up.
            let guard = epoch::pin();
            // SAFETY: count reached zero, so no handle remains and none can
            // be created (see module docs); the glue matches the block's
            // allocation exactly and runs once, after quiescence.
            unsafe {
                guard.defer_with(self.block.as_ptr().cast::<()>(), retire_node_block::<K, V>)
            };
        }
    }
}

impl<K, V> fmt::Debug for NodeRef<K, V>
where
    K: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A borrowed, copyable node handle that does **not** own a reference
/// count — the traversal-speed companion to [`NodeRef`].
///
/// Skip-list searches hop through dozens of links; cloning a counted
/// handle per hop costs two uncontended atomic RMWs (increment now,
/// decrement next hop), which dominates traversal time.  A `RawNode` is
/// just the block pointer.
///
/// # Validity
///
/// A `RawNode` is valid only **inside the transaction attempt that read
/// it** (equivalently: while the epoch guard it was read under stays
/// pinned).  The argument mirrors the read-set orec rule in the module
/// docs: any node reachable through a link payload read under a pin keeps
/// `refs >= 1` until that pin is released — the payload the link was read
/// from either is still installed or was retired *during* the pin, and
/// either way its own drop (which holds a count) is deferred past the
/// unpin.  For the same reason [`RawNode::upgrade`] (count increment) can
/// never resurrect a dead block when called within the attempt.
pub(crate) struct RawNode<K, V> {
    block: NonNull<NodeBlock<K, V>>,
}

impl<K, V> Clone for RawNode<K, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K, V> Copy for RawNode<K, V> {}

impl<K, V> RawNode<K, V> {
    /// Borrow a counted handle's block.
    pub(crate) fn from_ref(node: &NodeRef<K, V>) -> Self {
        Self { block: node.block }
    }

    /// Borrow the node a link designates, if any.
    pub(crate) fn from_link(link: &Link<K, V>) -> Option<Self> {
        link.as_ref().map(Self::from_ref)
    }

    /// The node itself.
    ///
    /// # Safety
    ///
    /// The transaction attempt under which this handle was obtained must
    /// still be running (see the type docs).  The returned lifetime is
    /// caller-chosen; it must not outlive that attempt.
    #[inline]
    pub(crate) unsafe fn node<'any>(&self) -> &'any Node<K, V> {
        // SAFETY: per the contract, the block is alive while the attempt's
        // guard is pinned.
        unsafe { &(*self.block.as_ptr()).node }
    }

    /// Hint the prefetcher at this node's header line and its tower's first
    /// line (level 0), without dereferencing anything.
    ///
    /// The tower array sits at a *height-independent* offset inside the
    /// block (`Layout::extend` pads the fixed-size header to the tower's
    /// alignment), so both lines are computable from the bare block pointer
    /// — which is what makes it safe to issue this one hop *ahead* of
    /// validation: a prefetch never faults, and the worst a stale pointer
    /// costs is a wasted cache fill.
    #[inline]
    pub(crate) fn prefetch(&self) {
        let base = self.block.as_ptr().cast::<u8>();
        skiphash_stm::sync::prefetch_read(base);
        let (_, tower_offset) = block_layout::<K, V>(1);
        skiphash_stm::sync::prefetch_read(base.wrapping_add(tower_offset));
    }

    /// Promote to a counted [`NodeRef`].
    ///
    /// # Safety
    ///
    /// Same contract as [`RawNode::node`]: within the attempt the count is
    /// provably at least one (a payload still holds a reference), so the
    /// increment cannot revive a block whose retirement was already
    /// scheduled.
    #[inline]
    pub(crate) unsafe fn upgrade(&self) -> NodeRef<K, V> {
        // SAFETY: `refs >= 1` per the contract; this is exactly a clone.
        unsafe {
            (*self.block.as_ptr())
                .refs
                .fetch_add(1, AtomicOrdering::Relaxed)
        };
        NodeRef { block: self.block }
    }
}

/// Epoch reclamation glue: drop the node's fields (header and tower levels)
/// in place and hand the block back to the arena.
///
/// # Safety
///
/// `ptr` must be a fully initialized node block whose reference count has
/// reached zero, unreachable to any thread that is not currently pinned;
/// called exactly once.
unsafe fn retire_node_block<K, V>(ptr: *mut ()) {
    // SAFETY: per the contract the header is initialized and ours alone.
    unsafe {
        let block = ptr.cast::<NodeBlock<K, V>>();
        let height = (*block).node.height;
        let (layout, tower_offset) = block_layout::<K, V>(height);
        let tower = ptr.cast::<u8>().add(tower_offset).cast::<Level<K, V>>();
        // Dropping the tower's link cells may release the last reference to
        // a neighbour, which re-enters the collector (re-entrancy is part of
        // the shim's contract; see the module docs).
        ptr::drop_in_place(ptr::slice_from_raw_parts_mut(tower, height));
        ptr::drop_in_place(addr_of_mut!((*block).node));
        arena::free_raw(ptr.cast::<u8>(), layout.size(), layout.align());
    }
}

/// Allocate and initialize a node block, returning its first handle.
fn alloc_node<K: MapKey, V: MapValue>(
    bound: Bound<K>,
    value: Option<V>,
    height: usize,
    i_time: u64,
    born: u64,
) -> NodeRef<K, V> {
    assert!(height >= 1, "node height must be at least 1");
    let (layout, tower_offset) = block_layout::<K, V>(height);
    let (raw, recycled) = arena::alloc_raw(layout.size(), layout.align());
    if recycled {
        arena::note_node_recycle();
    }
    // SAFETY: the block is exclusively ours, large and aligned enough for
    // the layout just computed; every field is written before the handle
    // escapes.
    unsafe {
        let tower = raw.add(tower_offset).cast::<Level<K, V>>();
        for level in 0..height {
            tower.add(level).write(Level::empty_at(born));
        }
        let block = raw.cast::<NodeBlock<K, V>>();
        addr_of_mut!((*block).refs).write(AtomicUsize::new(1));
        addr_of_mut!((*block).node).write(Node {
            bound,
            r_time: TCell::new_at(None, born),
            value: TCell::new_at(value, born),
            i_time: TCell::new_at(i_time, born),
            height,
            tower: NonNull::new_unchecked(tower),
        });
        NodeRef {
            block: NonNull::new_unchecked(block),
        }
    }
}

impl<K: MapKey, V: MapValue> Node<K, V> {
    /// Create a regular node carrying `key`/`value` with the given tower
    /// height and insertion time.
    ///
    /// Safe to call inside a transaction body with no further registration:
    /// the handle's epoch-deferred release keeps the block alive through a
    /// potential rollback (see the module docs), which is what
    /// `Txn::keep_alive` had to guarantee by hand for `Arc` nodes.
    /// `born` stamps every cell's initial ownership-record version; pass the
    /// creating attempt's [`read version`](skiphash_stm::Txn::read_version)
    /// so MVCC snapshots pinned *before* the node existed never mistake its
    /// cells for state they must preserve (see [`TCell::new_at`]).
    #[allow(clippy::new_ret_no_self)] // NodeRef is the Arc-style handle to a Node
    pub fn new(key: K, value: V, height: usize, i_time: u64, born: u64) -> NodeRef<K, V> {
        alloc_node(Bound::Key(key), Some(value), height, i_time, born)
    }

    /// Create one of the two sentinel nodes with a full-height tower.
    pub fn sentinel(bound: Bound<K>, height: usize) -> NodeRef<K, V> {
        debug_assert!(matches!(bound, Bound::NegInf | Bound::PosInf));
        alloc_node(bound, None, height, 0, 0)
    }

    /// True for the head or tail sentinel.
    pub fn is_sentinel(&self) -> bool {
        !matches!(self.bound, Bound::Key(_))
    }

    /// True for the tail sentinel.
    pub fn is_tail(&self) -> bool {
        matches!(self.bound, Bound::PosInf)
    }

    /// True for the head sentinel.
    pub fn is_head(&self) -> bool {
        matches!(self.bound, Bound::NegInf)
    }

    /// The node's key.
    ///
    /// # Panics
    ///
    /// Panics when called on a sentinel.
    pub fn key(&self) -> &K {
        match &self.bound {
            Bound::Key(k) => k,
            _ => panic!("sentinel nodes have no key"),
        }
    }

    /// Transactionally read the node's value.
    ///
    /// # Panics
    ///
    /// Panics when called on a sentinel (sentinels never carry values).
    pub fn read_value(&self, tx: &mut Txn<'_>) -> TxResult<V> {
        Ok(self
            .value
            .read(tx)?
            .expect("regular nodes always carry a value"))
    }

    /// Transactionally read the successor link at `level`.
    pub fn succ(&self, tx: &mut Txn<'_>, level: usize) -> TxResult<Link<K, V>> {
        self.level(level).succ.read(tx)
    }

    /// Transactionally read the predecessor link at `level`.
    pub fn pred(&self, tx: &mut Txn<'_>, level: usize) -> TxResult<Link<K, V>> {
        self.level(level).pred.read(tx)
    }

    /// Transactionally read the level-0 successor, which must exist (only the
    /// tail sentinel has none, and callers never walk past the tail).
    pub fn succ0(&self, tx: &mut Txn<'_>) -> TxResult<NodeRef<K, V>> {
        Ok(self
            .level(0)
            .succ
            .read(tx)?
            .expect("interior nodes always have a level-0 successor"))
    }

    /// True if the node is logically deleted (its `r_time` is set).
    pub fn is_logically_deleted(&self, tx: &mut Txn<'_>) -> TxResult<bool> {
        Ok(self.r_time.read(tx)?.is_some())
    }

    /// Sever all of this node's links (used only during teardown, outside of
    /// any transaction, to break reference cycles).
    pub fn sever_links(&self) {
        for level in self.tower() {
            level.pred.store_atomic(None);
            level.succ.store_atomic(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skiphash_stm::Stm;

    #[test]
    fn bound_ordering_relative_to_keys() {
        let neg: Bound<u64> = Bound::NegInf;
        let pos: Bound<u64> = Bound::PosInf;
        let five = Bound::Key(5u64);
        assert!(neg.is_before(&0));
        assert!(!pos.is_before(&u64::MAX));
        assert_eq!(five.cmp_key(&5), Ordering::Equal);
        assert!(five.is_before(&6));
        assert!(five.is_at_most(&5));
        assert!(!five.is_at_most(&4));
    }

    #[test]
    fn new_node_fields() {
        let n = Node::<u64, String>::new(9, "x".into(), 3, 7, 0);
        assert_eq!(n.height, 3);
        assert_eq!(n.tower().len(), 3);
        assert_eq!(*n.key(), 9);
        assert!(!n.is_sentinel());
        assert_eq!(n.i_time.load_atomic(), 7);
        assert_eq!(n.r_time.load_atomic(), None);
    }

    #[test]
    fn sentinels_report_their_kind() {
        let head = Node::<u64, u64>::sentinel(Bound::NegInf, 4);
        let tail = Node::<u64, u64>::sentinel(Bound::PosInf, 4);
        assert!(head.is_head() && head.is_sentinel() && !head.is_tail());
        assert!(tail.is_tail() && tail.is_sentinel() && !tail.is_head());
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sentinel_key_panics() {
        let head = Node::<u64, u64>::sentinel(Bound::NegInf, 1);
        let _ = head.key();
    }

    #[test]
    fn read_value_inside_transaction() {
        let stm = Stm::new();
        let n = Node::<u64, u64>::new(1, 10, 1, 0, 0);
        let v = stm.run(|tx| n.read_value(tx));
        assert_eq!(v, 10);
    }

    #[test]
    fn clone_and_ptr_eq_follow_arc_semantics() {
        let a = Node::<u64, u64>::new(1, 1, 2, 0, 0);
        let b = a.clone();
        assert!(NodeRef::ptr_eq(&a, &b));
        assert_eq!(a.ref_count(), 2);
        let other = Node::<u64, u64>::new(1, 1, 2, 0, 0);
        assert!(!NodeRef::ptr_eq(&a, &other));
        drop(b);
        assert_eq!(a.ref_count(), 1);
    }

    #[test]
    fn sever_links_clears_every_level() {
        let a = Node::<u64, u64>::new(1, 1, 2, 0, 0);
        let b = Node::<u64, u64>::new(2, 2, 2, 0, 0);
        for l in 0..2 {
            a.level(l).succ.store_atomic(Some(b.clone()));
            b.level(l).pred.store_atomic(Some(a.clone()));
        }
        a.sever_links();
        b.sever_links();
        for l in 0..2 {
            assert!(a.level(l).succ.load_atomic().is_none());
            assert!(b.level(l).pred.load_atomic().is_none());
        }
    }

    #[test]
    fn released_blocks_are_recycled_through_the_epoch() {
        // Dropping nodes and driving collection must eventually serve a new
        // node from a recycled block (same height class).
        let before = arena::node_recycle_hits();
        for _ in 0..2_000u64 {
            let n = Node::<u64, u64>::new(1, 1, 4, 0, 0);
            drop(n);
            drop(epoch::pin());
        }
        assert!(
            arena::node_recycle_hits() > before,
            "node churn must recycle arena blocks"
        );
    }

    #[test]
    fn node_drop_releases_heap_values() {
        // String keys/values exercise the retire glue's drop_in_place across
        // header and tower; run enough cycles for blocks to recycle so a
        // leak or double free would trip ASan / the drop balance elsewhere.
        for i in 0..500u64 {
            let n = Node::<String, String>::new(format!("k{i}"), format!("v{i}"), 3, 0, 0);
            assert_eq!(*n.key(), format!("k{i}"));
            drop(n);
            drop(epoch::pin());
        }
    }
}
