//! Skip hash configuration.

use skiphash_stm::ClockKind;

/// How many buckets the paper's evaluation configures: the smallest prime
/// such that a population of 500,000 keys keeps the table at most 70% full.
pub const PAPER_BUCKET_COUNT: usize = 714_341;

/// Default number of hash buckets for a general-purpose map.
///
/// The benchmarks override this with [`PAPER_BUCKET_COUNT`]; the library
/// default is smaller so that casually constructed maps stay lightweight.
pub const DEFAULT_BUCKET_COUNT: usize = 4_093;

/// Default number of skip list levels (the paper uses 20, since 2^20 exceeds
/// the evaluated key universe of 10^6).
pub const DEFAULT_MAX_LEVEL: usize = 20;

/// Default number of fast-path attempts before a range query falls back to
/// the slow path (the paper sets `FAST_PATH_TRIES` to 3).
pub const DEFAULT_FAST_PATH_TRIES: usize = 3;

/// Default capacity of the per-thread deferred-removal buffer (the paper uses
/// 32).
pub const DEFAULT_REMOVAL_BUFFER: usize = 32;

/// Strategy used by [`crate::SkipHash::range`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangePolicy {
    /// Keep retrying the single-transaction fast path until it commits
    /// (the paper's "Fast Only" variant).
    FastOnly,
    /// Always use the slow path coordinated by the RQC (the paper's
    /// "Slow Only" variant).
    SlowOnly,
    /// Try the fast path `tries` times, then fall back to the slow path
    /// (the paper's "Two-Path" variant, with `tries = 3`).
    TwoPath {
        /// Number of fast-path attempts before falling back.
        tries: usize,
    },
}

impl Default for RangePolicy {
    fn default() -> Self {
        RangePolicy::TwoPath {
            tries: DEFAULT_FAST_PATH_TRIES,
        }
    }
}

/// How removals hand logically deleted nodes to the range query coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalPolicy {
    /// Figure 4's `after_remove`: defer directly onto the most recent range
    /// query's list inside the removing transaction.
    Immediate,
    /// §4.5's refinement: park deferred nodes in a per-thread buffer of the
    /// given capacity and hand them over in batches, reducing contention on
    /// the RQC.
    Buffered(usize),
}

impl Default for RemovalPolicy {
    fn default() -> Self {
        RemovalPolicy::Buffered(DEFAULT_REMOVAL_BUFFER)
    }
}

/// Complete configuration of a [`crate::SkipHash`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of closed-addressing hash buckets.
    pub bucket_count: usize,
    /// Number of skip list levels.
    pub max_level: usize,
    /// Range query strategy.
    pub range_policy: RangePolicy,
    /// Deferred removal strategy.
    pub removal_policy: RemovalPolicy,
    /// Global clock used by the underlying STM.
    pub clock: ClockKind,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            bucket_count: DEFAULT_BUCKET_COUNT,
            max_level: DEFAULT_MAX_LEVEL,
            range_policy: RangePolicy::default(),
            removal_policy: RemovalPolicy::default(),
            // The sampled (gv5-style) clock is the library default: its
            // quiescence proof lets uncontended writer commits skip read-set
            // validation entirely (the paper's §5.1 ablation), which a
            // hardware timestamp can never do.  `Config::paper()` still pins
            // the hardware clock the paper's headline experiments use.
            clock: ClockKind::Sampled,
        }
    }
}

impl Config {
    /// The configuration used throughout the paper's evaluation section
    /// (including the hardware `rdtscp` clock; the library default is the
    /// sampled clock — see [`Config::default`]).
    pub fn paper() -> Self {
        Self {
            bucket_count: PAPER_BUCKET_COUNT,
            max_level: DEFAULT_MAX_LEVEL,
            clock: ClockKind::Hardware,
            ..Self::default()
        }
    }
}

/// Builder for [`crate::SkipHash`] instances.
///
/// ```
/// use skiphash::{RangePolicy, SkipHashBuilder};
///
/// let map = SkipHashBuilder::new()
///     .buckets(1024)
///     .max_level(16)
///     .range_policy(RangePolicy::FastOnly)
///     .build::<u64, u64>();
/// assert!(map.insert(1, 1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SkipHashBuilder {
    config: Config,
    stm: Option<std::sync::Arc<skiphash_stm::Stm>>,
}

impl SkipHashBuilder {
    /// Start from the library defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start from the paper's evaluation configuration.
    pub fn paper() -> Self {
        Self {
            config: Config::paper(),
            stm: None,
        }
    }

    /// Set the number of hash buckets.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn buckets(mut self, count: usize) -> Self {
        assert!(count > 0, "bucket count must be positive");
        self.config.bucket_count = count;
        self
    }

    /// Set the number of skip list levels.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero or greater than 63.
    pub fn max_level(mut self, levels: usize) -> Self {
        assert!(levels > 0 && levels < 64, "level count must be in 1..=63");
        self.config.max_level = levels;
        self
    }

    /// Set the range query strategy.
    pub fn range_policy(mut self, policy: RangePolicy) -> Self {
        self.config.range_policy = policy;
        self
    }

    /// Set the deferred removal strategy.
    pub fn removal_policy(mut self, policy: RemovalPolicy) -> Self {
        self.config.removal_policy = policy;
        self
    }

    /// Set the STM clock.
    ///
    /// Ignored when [`SkipHashBuilder::stm`] supplies a shared runtime — the
    /// runtime's own clock wins (and is reflected in the built map's
    /// [`Config`]).
    pub fn clock(mut self, clock: ClockKind) -> Self {
        self.config.clock = clock;
        self
    }

    /// Build the map over an explicit, shared STM runtime instead of a
    /// private one.
    ///
    /// Maps that share a runtime can be touched by a *single* transaction —
    /// this is the prerequisite for composing them with
    /// [`SkipHash::view`](crate::SkipHash::view) (e.g. an atomic transfer of
    /// an entry from one map to another).  Version timestamps from different
    /// runtimes' clocks are incomparable, so `view` rejects transactions
    /// started by any other runtime.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use skiphash::SkipHashBuilder;
    /// use skiphash_stm::Stm;
    ///
    /// let stm = Arc::new(Stm::new());
    /// let a = SkipHashBuilder::new().stm(Arc::clone(&stm)).build::<u64, u64>();
    /// let b = SkipHashBuilder::new().stm(Arc::clone(&stm)).build::<u64, u64>();
    /// a.insert(1, 100);
    /// stm.run(|tx| {
    ///     if let Some(v) = a.view(tx).take(&1)? {
    ///         b.view(tx).insert(1, v)?;
    ///     }
    ///     Ok(())
    /// });
    /// assert_eq!((a.get(&1), b.get(&1)), (None, Some(100)));
    /// ```
    pub fn stm(mut self, stm: std::sync::Arc<skiphash_stm::Stm>) -> Self {
        self.stm = Some(stm);
        self
    }

    /// Current configuration value.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Build a skip hash with this configuration.
    pub fn build<K: crate::MapKey, V: crate::MapValue>(self) -> crate::SkipHash<K, V> {
        match self.stm {
            None => crate::SkipHash::with_config(self.config),
            Some(stm) => crate::SkipHash::with_config_and_stm(self.config, stm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = Config::default();
        assert_eq!(c.max_level, 20);
        assert_eq!(
            c.range_policy,
            RangePolicy::TwoPath {
                tries: DEFAULT_FAST_PATH_TRIES
            }
        );
        assert_eq!(c.removal_policy, RemovalPolicy::Buffered(32));
        assert_eq!(c.clock, ClockKind::Sampled, "sampled clock is the default");
    }

    #[test]
    fn paper_config_uses_prime_bucket_count() {
        let c = Config::paper();
        assert_eq!(c.bucket_count, 714_341);
        assert_eq!(
            c.clock,
            ClockKind::Hardware,
            "the paper's headline experiments use the hardware clock"
        );
        // Verify primality the slow way; this runs once in tests.
        let n = c.bucket_count as u64;
        let mut d = 2;
        while d * d <= n {
            assert_ne!(n % d, 0, "{n} must be prime");
            d += 1;
        }
    }

    #[test]
    fn builder_round_trips_settings() {
        let b = SkipHashBuilder::new()
            .buckets(77)
            .max_level(9)
            .range_policy(RangePolicy::SlowOnly)
            .removal_policy(RemovalPolicy::Immediate)
            .clock(ClockKind::Counter);
        let c = b.config();
        assert_eq!(c.bucket_count, 77);
        assert_eq!(c.max_level, 9);
        assert_eq!(c.range_policy, RangePolicy::SlowOnly);
        assert_eq!(c.removal_policy, RemovalPolicy::Immediate);
        assert_eq!(c.clock, ClockKind::Counter);
    }

    #[test]
    #[should_panic(expected = "bucket count")]
    fn zero_buckets_panics() {
        let _ = SkipHashBuilder::new().buckets(0);
    }

    #[test]
    #[should_panic(expected = "level count")]
    fn zero_levels_panics() {
        let _ = SkipHashBuilder::new().max_level(0);
    }
}
