//! Composable transactions: [`TxView`], the caller-owned-transaction tier of
//! the skip hash API.
//!
//! The paper's core argument is that building the skip hash *on STM* makes
//! cross-structure composition simple: one transaction can atomically touch
//! the hash map, the skip list, and the deletion timestamps.  `TxView` hands
//! that power to callers.  Obtain one with
//! [`SkipHash::view`](crate::SkipHash::view) inside a
//! transaction you own:
//!
//! ```
//! use std::sync::Arc;
//! use skiphash::SkipHashBuilder;
//! use skiphash_stm::Stm;
//!
//! // Two maps over ONE shared STM runtime => composable.
//! let stm = Arc::new(Stm::new());
//! let bids = SkipHashBuilder::new().stm(Arc::clone(&stm)).build::<u64, u64>();
//! let asks = SkipHashBuilder::new().stm(Arc::clone(&stm)).build::<u64, u64>();
//! bids.insert(100, 7);
//!
//! // Atomically move the order from one book to the other: no concurrent
//! // reader can ever observe it in both maps or in neither.
//! stm.run(|tx| {
//!     if let Some(qty) = bids.view(tx).take(&100)? {
//!         asks.view(tx).insert(100, qty)?;
//!     }
//!     Ok(())
//! });
//! assert_eq!((bids.get(&100), asks.get(&100)), (None, Some(7)));
//! ```
//!
//! Every operation returns a [`TxResult`]; propagate aborts with `?` so the
//! enclosing [`Stm::run`](skiphash_stm::Stm::run) retries the whole
//! composition.  Side effects the map needs per *commit* (population
//! counters, deferred physical unstitching) are registered on the
//! transaction via [`Txn::on_commit`](skiphash_stm::Txn::on_commit), so an
//! aborted attempt leaves no trace of them.

use std::ops::RangeBounds;
use std::sync::Arc;

use skiphash_stm::{TxResult, Txn};

use crate::map::Inner;
use crate::range::Range;
use crate::{MapKey, MapValue};

/// The verdict a [`TxView::compute`] closure passes back: what should happen
/// to the key it was shown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compute<V> {
    /// Leave the entry exactly as it is (present or absent).
    Keep,
    /// Store this value (inserting the key if it was absent).
    Put(V),
    /// Remove the key (a no-op if it was absent).
    Remove,
}

/// A transactional view of one [`SkipHash`](crate::SkipHash), scoped to a
/// caller-owned transaction.
///
/// Created by [`SkipHash::view`](crate::SkipHash::view); every method joins
/// the transaction it was created in, so any number of operations — across
/// any number of maps sharing an [`Stm`](skiphash_stm::Stm) — form one atomic
/// unit.  The sealed single-op methods on `SkipHash` are thin wrappers that
/// run exactly these methods inside an internal transaction.
///
/// Methods take `&mut self` because they advance the underlying transaction;
/// a view is typically a short-lived temporary (`map.view(tx).get(&k)?`).
#[must_use = "a TxView does nothing until its operations are called (and their TxResults propagated)"]
pub struct TxView<'a, 't, K: MapKey, V: MapValue> {
    inner: &'a Arc<Inner<K, V>>,
    tx: &'a mut Txn<'t>,
}

impl<'a, 't, K: MapKey, V: MapValue> TxView<'a, 't, K, V> {
    pub(crate) fn new(inner: &'a Arc<Inner<K, V>>, tx: &'a mut Txn<'t>) -> Self {
        assert!(
            tx.belongs_to(&inner.stm),
            "TxView: the transaction was started by a different Stm runtime than this map's; \
             maps composed in one transaction must share a runtime \
             (build them with SkipHashBuilder::stm)"
        );
        Self { inner, tx }
    }

    /// Look up `key`, returning a clone of its value.
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn get(&mut self, key: &K) -> TxResult<Option<V>> {
        match self.inner.index.get(self.tx, key)? {
            None => Ok(None),
            Some(node) => Ok(Some(node.read_value(self.tx)?)),
        }
    }

    /// True if `key` is present.
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn contains_key(&mut self, key: &K) -> TxResult<bool> {
        self.inner.index.contains(self.tx, key)
    }

    /// Insert `key -> value` **only if `key` is absent**, returning whether
    /// the insertion happened.
    ///
    /// # This never overwrites
    ///
    /// Set-style semantics, identical to the sealed
    /// [`SkipHash::insert`](crate::SkipHash::insert): a present key makes
    /// this return `false` and drop `value` without touching the map.  Reach
    /// for [`TxView::upsert`] (overwrite), [`TxView::update`] (modify), or
    /// [`TxView::compute`] (decide) when that is not what you want.
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn insert(&mut self, key: K, value: V) -> TxResult<bool> {
        if self.inner.index.contains(self.tx, &key)? {
            return Ok(false);
        }
        self.insert_fresh(key, value)?;
        Ok(true)
    }

    /// Insert or overwrite, returning the displaced value when the key was
    /// present (the `std`-style counterpart to the set-style
    /// [`TxView::insert`]).
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn upsert(&mut self, key: K, value: V) -> TxResult<Option<V>> {
        if let Some(node) = self.inner.index.get(self.tx, &key)? {
            let previous = node.read_value(self.tx)?;
            node.value.write(self.tx, Some(value))?;
            return Ok(Some(previous));
        }
        self.insert_fresh(key, value)?;
        Ok(None)
    }

    /// Remove `key`, returning whether it was present.
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn remove(&mut self, key: &K) -> TxResult<bool> {
        Ok(self.take(key)?.is_some())
    }

    /// Remove `key` and return its value if it was present.
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn take(&mut self, key: &K) -> TxResult<Option<V>> {
        let node = match self.inner.index.get(self.tx, key)? {
            None => return Ok(None),
            Some(node) => node,
        };
        self.inner.index.remove(self.tx, key)?;
        let value = node.read_value(self.tx)?;
        let r_time = self.inner.rqc.on_update(self.tx)?;
        node.r_time.write(self.tx, Some(r_time))?;
        self.inner.tx_population.bump(self.tx, -1)?;
        let deferred = self.inner.after_remove(self.tx, node)?;
        let inner = Arc::clone(self.inner);
        self.tx.on_commit(move || {
            inner.population.record_remove();
            if let Some(node) = deferred {
                inner.buffer_deferred_node(node);
            }
        });
        Ok(Some(value))
    }

    /// Atomically replace the value under `key` with `f(&current)`, returning
    /// the new value, or `None` (without calling `f`) when the key is absent.
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn update<F>(&mut self, key: &K, f: F) -> TxResult<Option<V>>
    where
        F: FnOnce(&V) -> V,
    {
        match self.inner.index.get(self.tx, key)? {
            None => Ok(None),
            Some(node) => {
                let current = node.read_value(self.tx)?;
                let next = f(&current);
                node.value.write(self.tx, Some(next.clone()))?;
                Ok(Some(next))
            }
        }
    }

    /// Return the value under `key`, inserting `f()` first if the key is
    /// absent.
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn get_or_insert_with<F>(&mut self, key: K, f: F) -> TxResult<V>
    where
        F: FnOnce() -> V,
    {
        if let Some(node) = self.inner.index.get(self.tx, &key)? {
            return node.read_value(self.tx);
        }
        let value = f();
        self.insert_fresh(key, value.clone())?;
        Ok(value)
    }

    /// Decide the fate of `key`: `f` sees the current value (if any) and
    /// returns a [`Compute`] verdict — keep, replace, or remove.  Returns the
    /// value present after the operation.
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn compute<F>(&mut self, key: K, f: F) -> TxResult<Option<V>>
    where
        F: FnOnce(Option<&V>) -> Compute<V>,
    {
        let node = self.inner.index.get(self.tx, &key)?;
        let current = match &node {
            None => None,
            Some(node) => Some(node.read_value(self.tx)?),
        };
        match f(current.as_ref()) {
            Compute::Keep => Ok(current),
            Compute::Put(value) => {
                match node {
                    Some(node) => node.value.write(self.tx, Some(value.clone()))?,
                    None => self.insert_fresh(key, value.clone())?,
                }
                Ok(Some(value))
            }
            Compute::Remove => {
                if node.is_some() {
                    self.take(&key)?;
                }
                Ok(None)
            }
        }
    }

    /// Smallest key `>= key`, if any.
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn ceil(&mut self, key: &K) -> TxResult<Option<K>> {
        if self.inner.index.contains(self.tx, key)? {
            return Ok(Some(key.clone()));
        }
        let node = self.inner.skiplist.ceil_present(self.tx, key)?;
        Ok(if node.is_tail() {
            None
        } else {
            Some(node.key().clone())
        })
    }

    /// Smallest key strictly `> key`, if any.
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn succ(&mut self, key: &K) -> TxResult<Option<K>> {
        let node = self.inner.skiplist.succ_present(self.tx, key)?;
        Ok(if node.is_tail() {
            None
        } else {
            Some(node.key().clone())
        })
    }

    /// Largest key `<= key`, if any.
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn floor(&mut self, key: &K) -> TxResult<Option<K>> {
        if self.inner.index.contains(self.tx, key)? {
            return Ok(Some(key.clone()));
        }
        let node = self.inner.skiplist.floor_present(self.tx, key)?;
        Ok(if node.is_head() {
            None
        } else {
            Some(node.key().clone())
        })
    }

    /// Largest key strictly `< key`, if any.
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn pred(&mut self, key: &K) -> TxResult<Option<K>> {
        let node = self.inner.skiplist.pred_present(self.tx, key)?;
        Ok(if node.is_head() {
            None
        } else {
            Some(node.key().clone())
        })
    }

    /// Collect every pair whose key lies in `range`, in ascending key order,
    /// as part of this transaction.
    ///
    /// Unlike the sealed [`SkipHash::range`](crate::SkipHash::range), this
    /// never falls back to the slow path — it *is* the caller's transaction,
    /// so the scan is atomic with everything else the transaction does (and
    /// proportionally widens its conflict window; keep in-transaction scans
    /// short under contention).
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn range<R: RangeBounds<K>>(&mut self, range: R) -> TxResult<Range<K, V>> {
        let pairs = self
            .inner
            .collect_range(self.tx, range.start_bound(), range.end_bound())?;
        Ok(Range::new(pairs))
    }

    /// Number of keys currently present.
    ///
    /// `O(shards)`: sums the transactional sharded population counter that
    /// the insert and remove paths bump inside their own transactions, so
    /// the count is linearizable with everything else this transaction does
    /// without walking level 0 in `O(n)`.  (The sealed
    /// [`SkipHash::len`](crate::SkipHash::len) uses a cheaper non-
    /// transactional counter maintained by post-commit actions.)  Reading
    /// every shard conflicts with concurrent updates — inherent to a
    /// linearizable count; debug builds additionally cross-check the level-0
    /// walk.
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn len(&mut self) -> TxResult<usize> {
        let total = self.inner.tx_population.sum(self.tx)?;
        #[cfg(debug_assertions)]
        {
            let walked = self.inner.skiplist.count_present(self.tx)?;
            debug_assert_eq!(
                walked,
                total.max(0) as usize,
                "transactional population counter diverged from the level-0 walk"
            );
        }
        debug_assert!(total >= 0, "transactional population went negative");
        Ok(total.max(0) as usize)
    }

    /// True when the map holds no keys (`O(shards)`, via [`TxView::len`]'s
    /// sharded counter).
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn is_empty(&mut self) -> TxResult<bool> {
        Ok(self.len()? == 0)
    }

    /// Shared insert path for a key known to be absent: stitch a fresh node
    /// into the skip list, index it, and schedule the population bump for
    /// commit time.
    fn insert_fresh(&mut self, key: K, value: V) -> TxResult<()> {
        let height = {
            let mut rng = rand::thread_rng();
            self.inner.skiplist.random_height(&mut rng)
        };
        let i_time = self.inner.rqc.on_update(self.tx)?;
        let node = self.inner.skiplist.insert_after_logical_deletes(
            self.tx,
            key.clone(),
            value,
            height,
            i_time,
        )?;
        let was_new = self.inner.index.insert(self.tx, key, node)?;
        debug_assert!(was_new, "insert_fresh called with a present key");
        self.inner.tx_population.bump(self.tx, 1)?;
        let inner = Arc::clone(self.inner);
        self.tx.on_commit(move || inner.population.record_insert());
        Ok(())
    }
}

impl<K: MapKey, V: MapValue> std::fmt::Debug for TxView<'_, '_, K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxView")
            .field("config", &self.inner.config)
            .finish()
    }
}
