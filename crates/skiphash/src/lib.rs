//! The **skip hash**: a fast, linearizable ordered map built on software
//! transactional memory.
//!
//! This crate reproduces the data structure from *"Skip Hash: A Fast Ordered
//! Map Via Software Transactional Memory"*.  A skip hash composes two data
//! structures behind one abstraction:
//!
//! * a **closed-addressing hash map** from keys to skip list nodes, giving
//!   `O(1)` routing for lookups, removals, and point queries on present keys;
//! * a **doubly linked skip list** ordered by key, giving `O(log n)` ordered
//!   operations and range queries.
//!
//! Every operation executes as one or more STM transactions
//! ([`skiphash_stm`]), which is what makes the composition simple: a removal
//! can atomically update the hash map, flip a node's logical-deletion
//! timestamp, and unstitch the node from all levels of the skip list.
//!
//! Range queries are linearizable and use a two-path strategy:
//!
//! * the **fast path** runs the whole query as a single `try_once`
//!   transaction;
//! * the **slow path** registers with the [range query coordinator]
//!   (`rqc::Rqc`), which versions insertions and removals so the query can be
//!   split across many small transactions while still linearizing at the
//!   moment it acquired its version number.
//!
//! # Two API tiers
//!
//! * **Sealed operations** — every [`SkipHash`] method runs as its own
//!   internal transaction: `insert`, `get`, `remove`, `range`, ….
//! * **Composable transactions** — [`SkipHash::view`] opens a [`TxView`]
//!   inside a *caller-owned* transaction, so several operations (possibly on
//!   several maps sharing one [`skiphash_stm::Stm`], see
//!   [`SkipHashBuilder::stm`]) commit or abort as a unit, and atomic
//!   read-modify-write (`update` / `get_or_insert_with` / `compute`) needs no
//!   caller-side retry loop.
//!
//! The sealed methods are thin wrappers over `TxView`, so the two tiers
//! cannot drift apart.  See `docs/API.md` at the repository root for a guided
//! tour and migration notes.
//!
//! # Example
//!
//! ```
//! use skiphash::SkipHash;
//!
//! let map: SkipHash<u64, &'static str> = SkipHash::new();
//! assert!(map.insert(3, "three"));
//! assert!(map.insert(1, "one"));
//! assert!(map.insert(7, "seven"));
//! assert!(!map.insert(3, "again"), "insert does not overwrite");
//!
//! assert_eq!(map.get(&1), Some("one"));
//! assert_eq!(map.ceil(&2), Some(3));
//! let pairs: Vec<_> = map.range(1..=5).collect();
//! assert_eq!(pairs, vec![(1, "one"), (3, "three")]);
//!
//! // Composable tier: a read-modify-write and a dependent insert, atomically.
//! map.stm().run(|tx| {
//!     let mut v = map.view(tx);
//!     let three = v.take(&3)?;
//!     v.insert(4, three.unwrap_or("four"))?;
//!     Ok(())
//! });
//! assert_eq!(map.get(&4), Some("three"));
//!
//! assert!(map.remove(&1));
//! assert_eq!(map.get(&1), None);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod chain;
pub mod config;
pub mod hashmap;
pub mod map;
pub mod node;
pub mod range;
pub mod rqc;
pub mod skiplist;
pub mod snapshot;
pub mod thread_slots;
pub mod view;

pub use config::{Config, RangePolicy, RemovalPolicy, SkipHashBuilder};
pub use hashmap::TxHashMap;
pub use map::{RangeStats, SkipHash};
pub use range::Range;
pub use snapshot::Snapshot;
pub use view::{Compute, TxView};

use std::hash::Hash;

/// Bounds required of skip hash keys.
///
/// Blanket-implemented for every type satisfying the bounds; never implement
/// it manually.
pub trait MapKey: Ord + Hash + Clone + Send + Sync + 'static {}
impl<T: Ord + Hash + Clone + Send + Sync + 'static> MapKey for T {}

/// Bounds required of skip hash values.
///
/// Blanket-implemented for every type satisfying the bounds; never implement
/// it manually.
pub trait MapValue: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> MapValue for T {}
