//! The skip hash ordered map: sealed single-operation API.
//!
//! Every method on [`SkipHash`] runs as its own internal transaction ("sealed"
//! operations).  The operation bodies themselves live in [`crate::view`] on
//! [`TxView`]: a sealed call is literally
//! `stm.run(|tx| self.view(tx).op(..))`, so the sealed and composable tiers
//! can never drift apart.

use skiphash_stm::sync::{AtomicI64, AtomicU64, Ordering};
use std::fmt;
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use skiphash_stm::{StatsSnapshot, Stm, TCell, Txn};

use crate::config::{Config, RemovalPolicy, SkipHashBuilder};
use crate::hashmap::TxHashMap;
use crate::node::NodeRef;
use crate::rqc::{DeferralBuffer, Rqc};
use crate::skiplist::SkipList;
use crate::snapshot::Snapshot;
use crate::thread_slots;
use crate::view::{Compute, TxView};
use crate::{MapKey, MapValue};

/// Counters describing how range queries executed (fast path vs slow path).
///
/// `fast_path_aborts / fast_path_successes` reproduces the paper's Table 1
/// metric ("aborts per successful range query").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangeStats {
    /// Fast-path attempts that committed.
    pub fast_path_successes: u64,
    /// Fast-path attempts that aborted.
    pub fast_path_aborts: u64,
    /// Range queries that completed on the slow path.
    pub slow_path_completions: u64,
}

impl RangeStats {
    /// Aborted fast-path attempts per successful fast-path range query;
    /// `f64::INFINITY` when nothing succeeded but something aborted.
    pub fn aborts_per_success(&self) -> f64 {
        if self.fast_path_successes == 0 {
            if self.fast_path_aborts == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.fast_path_aborts as f64 / self.fast_path_successes as f64
        }
    }
}

pub(crate) struct RangeCounters {
    pub(crate) fast_success: AtomicU64,
    pub(crate) fast_abort: AtomicU64,
    pub(crate) slow_complete: AtomicU64,
}

impl RangeCounters {
    fn new() -> Self {
        Self {
            fast_success: AtomicU64::new(0),
            fast_abort: AtomicU64::new(0),
            slow_complete: AtomicU64::new(0),
        }
    }
}

/// A sharded population counter: one cache-line-padded signed counter per
/// thread slot, bumped *after* an insert or removal commits.
///
/// Sharding keeps the counter off the transactional hot path entirely — no
/// shared cache line is written by two threads, and no transaction carries
/// the counter in its read or write set (a single shared `TCell` counter
/// would conflict every pair of updates).  Individual shards may go negative
/// (a thread can decrement a different shard than the one incremented), so
/// shards are signed and only the sum is meaningful.
pub(crate) struct PopulationCounter {
    shards: Box<[CachePadded<AtomicI64>]>,
}

impl PopulationCounter {
    fn new() -> Self {
        Self {
            shards: (0..thread_slots::slot_table_size())
                .map(|_| CachePadded::new(AtomicI64::new(0)))
                .collect(),
        }
    }

    fn shard(&self) -> &AtomicI64 {
        &self.shards[thread_slots::current_slot() & (self.shards.len() - 1)]
    }

    pub(crate) fn record_insert(&self) {
        self.shard().fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_remove(&self) {
        self.shard().fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn total(&self) -> usize {
        let sum: i64 = self.shards.iter().map(|s| s.load(Ordering::Relaxed)).sum();
        debug_assert!(sum >= 0, "population counter went negative: {sum}");
        sum.max(0) as usize
    }
}

/// The *transactional* sharded population counter backing
/// [`crate::TxView::len`].
///
/// Same sharding idea as [`PopulationCounter`], but the shards are
/// [`TCell`]s bumped *inside* the inserting/removing transaction, so a
/// caller-owned transaction can read a linearizable count in `O(shards)`
/// instead of walking level 0 in `O(n)`.  The costs, by design:
///
/// * every update carries one extra read + write (its own thread's shard) in
///   its sets — two live threads conflict only if the slot table folds them
///   onto one shard;
/// * a transactional `len` reads every shard, so it conflicts with any
///   concurrent update — inherent to a linearizable count.
///
/// Shards may individually go negative (a thread can remove keys another
/// thread inserted); only the transactionally consistent sum is meaningful,
/// and that sum is always the true population.
pub(crate) struct TxPopulation {
    shards: Box<[CachePadded<TCell<i64>>]>,
}

impl TxPopulation {
    fn new() -> Self {
        Self {
            shards: (0..thread_slots::slot_table_size())
                .map(|_| CachePadded::new(TCell::new(0)))
                .collect(),
        }
    }

    /// Add `delta` to the calling thread's shard, inside `tx`.
    pub(crate) fn bump(&self, tx: &mut Txn<'_>, delta: i64) -> skiphash_stm::TxResult<()> {
        let cell = &self.shards[thread_slots::current_slot() & (self.shards.len() - 1)];
        let current = cell.read(tx)?;
        cell.write(tx, current + delta)
    }

    /// The transactionally consistent population, in `O(shards)` reads.
    pub(crate) fn sum(&self, tx: &mut Txn<'_>) -> skiphash_stm::TxResult<i64> {
        let mut total = 0i64;
        for shard in self.shards.iter() {
            total += shard.read(tx)?;
        }
        Ok(total)
    }

    /// The population as of `pin`'s version, in `O(shards)` pinned reads.
    ///
    /// Exact without a transaction: each shard resolves to its value at the
    /// pinned version, and a commit stamps all its writes (shard bump
    /// included) with one timestamp, so the sum reflects precisely the
    /// updates committed at or before the pin.
    pub(crate) fn sum_pinned(&self, pin: &skiphash_stm::SnapshotPin) -> i64 {
        self.shards
            .iter()
            .map(|shard| shard.read_pinned_with(pin, |v| *v))
            .sum()
    }
}

/// The skip hash's state, shared between the public handle, transactional
/// views, and post-commit actions (which capture an `Arc` of it so deferred
/// effects stay valid however long the caller's transaction lives).
pub(crate) struct Inner<K: MapKey, V: MapValue> {
    pub(crate) stm: Arc<Stm>,
    pub(crate) skiplist: SkipList<K, V>,
    pub(crate) index: TxHashMap<K, NodeRef<K, V>>,
    pub(crate) rqc: Rqc<K, V>,
    pub(crate) buffer: DeferralBuffer<K, V>,
    pub(crate) config: Config,
    pub(crate) range_counters: RangeCounters,
    pub(crate) population: PopulationCounter,
    pub(crate) tx_population: TxPopulation,
}

impl<K: MapKey, V: MapValue> Inner<K, V> {
    /// `after_remove` from Figure 4: either unstitch immediately (inside the
    /// removing transaction) or arrange for deferral.  Under the buffered
    /// policy the deferral itself happens after the transaction commits, via
    /// the per-thread buffer, so this returns the node to be buffered.
    pub(crate) fn after_remove(
        &self,
        tx: &mut Txn<'_>,
        node: NodeRef<K, V>,
    ) -> skiphash_stm::TxResult<Option<NodeRef<K, V>>> {
        if self.rqc.can_unstitch_now(tx, &node)? {
            self.skiplist.unstitch(tx, &node)?;
            return Ok(None);
        }
        match self.config.removal_policy {
            RemovalPolicy::Immediate => {
                self.rqc.defer_to_latest(tx, node)?;
                Ok(None)
            }
            RemovalPolicy::Buffered(_) => Ok(Some(node)),
        }
    }

    /// Push a node whose unstitching must be deferred into the calling
    /// thread's buffer, flushing the buffer to the RQC when it fills up.
    /// Runs *outside* any transaction (from a post-commit action).
    pub(crate) fn buffer_deferred_node(&self, node: NodeRef<K, V>) {
        if let Some(batch) = self.buffer.push(node) {
            self.flush_deferred_batch(batch);
        }
    }

    pub(crate) fn flush_deferred_batch(&self, batch: Vec<NodeRef<K, V>>) {
        if batch.is_empty() {
            return;
        }
        let accepted = self
            .stm
            .run(|tx| self.rqc.defer_batch_to_latest(tx, &batch));
        if !accepted {
            // No slow-path range query is in flight: unstitch the whole batch
            // ourselves, one small transaction per node.
            for node in &batch {
                self.stm.run(|tx| self.skiplist.unstitch(tx, node));
            }
        }
    }
}

impl<K: MapKey, V: MapValue> Drop for Inner<K, V> {
    fn drop(&mut self) {
        // The doubly linked skip list is a large cycle of `Arc`s; sever every
        // link so the nodes can actually be reclaimed.  `Drop` has exclusive
        // access, so the non-transactional stores are safe.
        self.skiplist.sever_all();
    }
}

/// A concurrent, linearizable ordered map composing a hash map and a doubly
/// linked skip list behind software transactional memory.
///
/// All operations take `&self`; share the map across threads with
/// [`std::sync::Arc`].
///
/// # Two API tiers
///
/// * **Sealed operations** (this page): every method runs as its own
///   internal transaction.  `insert`, `get`, `remove`, `range`, …
/// * **Composable transactions** ([`SkipHash::view`] /
///   [`SkipHash::transact`]): the same operations inside a *caller-owned*
///   transaction, so several of them — possibly on several maps sharing an
///   [`Stm`] — commit or abort as one atomic unit.  See [`TxView`].
///
/// # Complexity
///
/// | operation | key present | key absent |
/// |-----------|-------------|------------|
/// | `get`     | `O(1)`      | `O(1)`     |
/// | `insert`  | `O(1)` (fails) | `O(log n)` |
/// | `remove`  | expected `O(1)` | `O(1)` (fails) |
/// | `ceil`/`floor`/`succ`/`pred` | `O(1)` | `O(log n)` |
/// | `range`   | `O(log n + k)` | — |
///
/// # Example
///
/// ```
/// use skiphash::SkipHash;
///
/// let map: SkipHash<u64, u64> = SkipHash::new();
/// for k in [4, 2, 9, 7] {
///     map.insert(k, k * 100);
/// }
/// assert_eq!(map.succ(&4), Some(7));
/// let pairs: Vec<_> = map.range(2..=7).collect();
/// assert_eq!(pairs, vec![(2, 200), (4, 400), (7, 700)]);
/// ```
pub struct SkipHash<K: MapKey, V: MapValue> {
    pub(crate) inner: Arc<Inner<K, V>>,
}

impl<K: MapKey, V: MapValue> fmt::Debug for SkipHash<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SkipHash")
            .field("config", &self.inner.config)
            .finish()
    }
}

impl<K: MapKey, V: MapValue> Default for SkipHash<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: MapKey, V: MapValue> SkipHash<K, V> {
    /// Create a skip hash with the default configuration.
    pub fn new() -> Self {
        Self::with_config(Config::default())
    }

    /// Start configuring a skip hash.
    pub fn builder() -> SkipHashBuilder {
        SkipHashBuilder::new()
    }

    /// Create a skip hash with an explicit configuration (and its own private
    /// STM runtime derived from `config.clock`).
    pub fn with_config(config: Config) -> Self {
        Self::with_config_and_stm(config, Arc::new(Stm::with_clock(config.clock)))
    }

    /// Create a skip hash over an explicit, possibly shared, STM runtime.
    ///
    /// Maps sharing one runtime can be touched by a single transaction (see
    /// [`SkipHash::view`]); `config.clock` is overridden by the runtime's
    /// actual clock so the recorded configuration never lies.
    pub(crate) fn with_config_and_stm(mut config: Config, stm: Arc<Stm>) -> Self {
        config.clock = stm.clock_kind();
        let buffer_capacity = match config.removal_policy {
            RemovalPolicy::Immediate => 1,
            RemovalPolicy::Buffered(n) => n.max(1),
        };
        Self {
            inner: Arc::new(Inner {
                stm,
                skiplist: SkipList::new(config.max_level),
                index: TxHashMap::new(config.bucket_count),
                rqc: Rqc::new(),
                buffer: DeferralBuffer::new(buffer_capacity),
                config,
                range_counters: RangeCounters::new(),
                population: PopulationCounter::new(),
                tx_population: TxPopulation::new(),
            }),
        }
    }

    /// The map's configuration.
    pub fn config(&self) -> Config {
        self.inner.config
    }

    /// The STM runtime this map's transactions run on.
    ///
    /// Use it to start caller-owned transactions for [`SkipHash::view`]:
    /// `map.stm().run(|tx| { let mut v = map.view(tx); ... })`.  Two maps
    /// built over the same runtime (via [`SkipHashBuilder::stm`]) can be
    /// composed inside one such transaction.
    pub fn stm(&self) -> &Stm {
        &self.inner.stm
    }

    /// Statistics from the underlying STM: commits and aborts by cause, plus
    /// the hot-path counters — `validation_skipped_commits` (writer commits
    /// whose clock proved quiescence), `read_dedup_hits` (re-reads absorbed
    /// by the read-set filter; skip-list traversals generate many), and
    /// `slab_recycle_hits` (cell payloads served from recycled slab blocks).
    /// See `docs/PERF.md`.
    pub fn stm_stats(&self) -> StatsSnapshot {
        self.inner.stm.stats()
    }

    /// Reset STM and range statistics (between benchmark trials).
    pub fn reset_stats(&self) {
        self.inner.stm.reset_stats();
        self.inner
            .range_counters
            .fast_success
            .store(0, Ordering::Relaxed);
        self.inner
            .range_counters
            .fast_abort
            .store(0, Ordering::Relaxed);
        self.inner
            .range_counters
            .slow_complete
            .store(0, Ordering::Relaxed);
    }

    /// Range query execution statistics.
    pub fn range_stats(&self) -> RangeStats {
        RangeStats {
            fast_path_successes: self
                .inner
                .range_counters
                .fast_success
                .load(Ordering::Relaxed),
            fast_path_aborts: self.inner.range_counters.fast_abort.load(Ordering::Relaxed),
            slow_path_completions: self
                .inner
                .range_counters
                .slow_complete
                .load(Ordering::Relaxed),
        }
    }

    /// Pin the map's current version and return a read-only [`Snapshot`]
    /// frozen at it.
    ///
    /// The snapshot serves `get` / `range` / `to_vec` / `len` exactly as the
    /// map stood at the pin, for as long as the handle lives, while writers
    /// commit freely — an MVCC time-travel read.  Superseded payloads the
    /// snapshot still needs are retained by the STM's snapshot registry and
    /// released when the last snapshot covering them is dropped, so
    /// retention is bounded by live snapshots (see `docs/PERF.md`).
    ///
    /// ```
    /// use skiphash::SkipHash;
    ///
    /// let map: SkipHash<u64, u64> = SkipHash::new();
    /// map.insert(1, 10);
    /// let snap = map.snapshot();
    /// map.insert(2, 20);
    /// assert_eq!(snap.len(), 1, "later inserts are invisible");
    /// assert_eq!(map.len(), 2);
    /// ```
    pub fn snapshot(&self) -> Snapshot<K, V> {
        Snapshot::new(Arc::clone(&self.inner), self.inner.stm.pin_snapshot())
    }

    /// Open a transactional view of this map inside the caller-owned
    /// transaction `tx`.
    ///
    /// All [`TxView`] operations become part of `tx`: they commit or abort
    /// together with everything else the transaction does, including views of
    /// *other* maps built over the same [`Stm`] runtime.  This is the
    /// composition tier the sealed methods are built on.
    ///
    /// ```
    /// use skiphash::SkipHash;
    ///
    /// let map: SkipHash<u64, u64> = SkipHash::new();
    /// map.insert(1, 10);
    /// // Atomic read-modify-write across two keys.
    /// map.stm().run(|tx| {
    ///     let mut v = map.view(tx);
    ///     let taken = v.take(&1)?.unwrap_or(0);
    ///     v.insert(2, taken + 5)?;
    ///     Ok(())
    /// });
    /// assert_eq!(map.get(&2), Some(15));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `tx` was started by a different [`Stm`] runtime than this
    /// map's — timestamps from two unrelated clocks are incomparable, so the
    /// composition would be unsound.  Build the maps you want to compose over
    /// one shared runtime with [`SkipHashBuilder::stm`].
    pub fn view<'a, 't>(&'a self, tx: &'a mut Txn<'t>) -> TxView<'a, 't, K, V> {
        TxView::new(&self.inner, tx)
    }

    /// Run `body` as one atomic transaction over this map.
    ///
    /// Convenience over [`SkipHash::view`] for single-map composition: the
    /// body receives a ready-made [`TxView`] and is retried until it commits,
    /// under the [`TxResult`](skiphash_stm::TxResult) contract.
    ///
    /// ```
    /// use skiphash::SkipHash;
    ///
    /// let map: SkipHash<u64, u64> = SkipHash::new();
    /// map.transact(|v| {
    ///     v.insert(1, 10)?;
    ///     v.insert(2, 20)?;
    ///     Ok(())
    /// });
    /// assert_eq!(map.len(), 2);
    /// ```
    pub fn transact<T, F>(&self, mut body: F) -> T
    where
        F: FnMut(&mut TxView<'_, '_, K, V>) -> skiphash_stm::TxResult<T>,
    {
        self.inner.stm.run(|tx| {
            let mut view = TxView::new(&self.inner, tx);
            body(&mut view)
        })
    }

    /// Look up `key`, returning a clone of its value.
    ///
    /// `O(1)`: a hash map lookup plus one value read.
    pub fn get(&self, key: &K) -> Option<V> {
        self.transact(|v| v.get(key))
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.transact(|v| v.contains_key(key))
    }

    /// Insert `key -> value` **only if `key` is absent**, returning whether
    /// the insertion happened.
    ///
    /// # This never overwrites
    ///
    /// `insert` follows the paper's *set-style* semantics: when the key is
    /// already present it returns `false` and the map is **unchanged** — the
    /// existing value is *not* replaced and the new value is dropped.  This
    /// differs from `std::collections` maps, whose `insert` overwrites and
    /// returns the previous value.  If you want overwrite-and-return
    /// semantics, use [`SkipHash::upsert`]; if you want to modify an existing
    /// value atomically, use [`SkipHash::update`] or [`SkipHash::compute`].
    pub fn insert(&self, key: K, value: V) -> bool {
        self.transact(|v| v.insert(key.clone(), value.clone()))
    }

    /// Insert or overwrite, returning the displaced value when the key was
    /// present.
    ///
    /// This is the `std`-style counterpart to the set-style
    /// [`SkipHash::insert`]: it *always* stores `value`, and tells you what
    /// it replaced.  (A convenience beyond the paper's interface; an
    /// overwrite is a value update on the existing node and costs `O(1)`.)
    pub fn upsert(&self, key: K, value: V) -> Option<V> {
        self.transact(|v| v.upsert(key.clone(), value.clone()))
    }

    /// Remove `key`.  Returns `true` if the key was present.
    pub fn remove(&self, key: &K) -> bool {
        self.take(key).is_some()
    }

    /// Remove `key` and return its value if it was present.
    pub fn take(&self, key: &K) -> Option<V> {
        self.transact(|v| v.take(key))
    }

    /// Atomically replace the value under `key` with `f(&current)`, returning
    /// the new value, or `None` (without calling `f`) when the key is absent.
    ///
    /// The read and the write happen in one transaction, so concurrent
    /// `update`s to the same key never lose increments the way a
    /// `get` + `upsert` pair would.  `f` may be called once per retry; it
    /// must be a pure function of its argument.
    pub fn update<F>(&self, key: &K, f: F) -> Option<V>
    where
        F: Fn(&V) -> V,
    {
        self.transact(|v| v.update(key, &f))
    }

    /// Return the value under `key`, atomically inserting `f()` first if the
    /// key is absent.
    ///
    /// `f` may be called once per retry; only the committing attempt's value
    /// is ever observable.
    pub fn get_or_insert_with<F>(&self, key: K, f: F) -> V
    where
        F: Fn() -> V,
    {
        self.transact(|v| v.get_or_insert_with(key.clone(), &f))
    }

    /// Atomically decide the fate of `key`: `f` sees the current value (if
    /// any) and returns a [`Compute`] verdict — keep it, replace it, or
    /// remove it.  Returns the value present after the operation.
    ///
    /// This single entry point expresses conditional insert, conditional
    /// remove, and read-modify-write without any caller-side retry loop.
    /// `f` may be called once per retry; it must be a pure function of its
    /// argument.
    pub fn compute<F>(&self, key: K, f: F) -> Option<V>
    where
        F: Fn(Option<&V>) -> Compute<V>,
    {
        self.transact(|v| v.compute(key.clone(), &f))
    }

    /// Smallest key `>= key`, if any (`O(1)` when `key` itself is present).
    pub fn ceil(&self, key: &K) -> Option<K> {
        self.transact(|v| v.ceil(key))
    }

    /// Smallest key strictly `> key`, if any.
    pub fn succ(&self, key: &K) -> Option<K> {
        self.transact(|v| v.succ(key))
    }

    /// Largest key `<= key`, if any (`O(1)` when `key` itself is present).
    pub fn floor(&self, key: &K) -> Option<K> {
        self.transact(|v| v.floor(key))
    }

    /// Largest key strictly `< key`, if any.
    pub fn pred(&self, key: &K) -> Option<K> {
        self.transact(|v| v.pred(key))
    }

    /// Number of keys currently present.
    ///
    /// `O(shards)`: sums the sharded population counter, which is bumped
    /// outside the transactional hot path after each committed insert or
    /// removal (a single shared counter cell would serialize every update;
    /// the seed walked level 0 of the skip list instead, paying `O(n)` on
    /// every benchmark pre-fill verification).  Under concurrent updates the
    /// value is a linearizable-ish snapshot like any concurrent size; in
    /// debug builds a quiescent caller also pays the `O(n)` walk, which must
    /// agree with the counter.
    pub fn len(&self) -> usize {
        let total = self.inner.population.total();
        #[cfg(debug_assertions)]
        {
            // A caller racing updaters can observe the walk and the counter
            // mid-divergence (the counter is bumped just after the
            // transaction commits), so only a *persistent* mismatch is a
            // bug.  Re-sample a few times before declaring one.
            let mut walked = self
                .inner
                .stm
                .run(|tx| self.inner.skiplist.count_present(tx));
            let mut counted = self.inner.population.total();
            for _ in 0..3 {
                if walked == counted {
                    break;
                }
                skiphash_stm::sync::yield_now();
                walked = self
                    .inner
                    .stm
                    .run(|tx| self.inner.skiplist.count_present(tx));
                counted = self.inner.population.total();
            }
            debug_assert_eq!(
                walked, counted,
                "sharded population counter persistently diverged from the \
                 level-0 walk"
            );
        }
        total
    }

    /// True when the map holds no keys.
    pub fn is_empty(&self) -> bool {
        self.transact(|v| v.is_empty())
    }

    /// Snapshot every `(key, value)` pair in ascending key order, as one
    /// atomic (fast-path style) transaction.
    pub fn to_vec(&self) -> Vec<(K, V)> {
        self.inner
            .stm
            .run(|tx| self.inner.skiplist.collect_present(tx))
    }

    /// Remove every key.  Runs as a sequence of individual removals (there is
    /// no `O(1)` bulk clear in the paper's interface).
    pub fn clear(&self) {
        loop {
            let keys: Vec<K> = self
                .inner
                .stm
                .run(|tx| self.inner.skiplist.collect_present(tx))
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            if keys.is_empty() {
                return;
            }
            for key in keys {
                self.take(&key);
            }
        }
    }

    /// Validate internal invariants (test/debug helper): the hash map and the
    /// skip list agree on the set of present keys, the skip list's structure
    /// is well formed, and the sharded population counter matches the number
    /// of present keys.
    pub fn check_invariants(&self) -> Result<(), String> {
        let inner = &self.inner;
        let present = inner.stm.run(|tx| {
            let structural = inner.skiplist.check_invariants(tx)?;
            if let Err(e) = structural {
                return Ok(Err(e));
            }
            let mut from_list: Vec<K> = inner
                .skiplist
                .collect_present(tx)?
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            let mut from_map: Vec<K> = inner.index.keys(tx)?.into_iter().collect();
            from_list.sort();
            from_map.sort();
            if from_list != from_map {
                return Ok(Err(format!(
                    "hash map has {} keys but skip list has {} present keys",
                    from_map.len(),
                    from_list.len()
                )));
            }
            // The transactional sharded counter is read in the same
            // transaction as the walk, so the two must agree exactly.
            let tx_counted = inner.tx_population.sum(tx)?;
            if tx_counted < 0 || tx_counted as usize != from_list.len() {
                return Ok(Err(format!(
                    "transactional population counter reports {tx_counted} keys \
                     but {} are present",
                    from_list.len()
                )));
            }
            Ok(Ok(from_list.len()))
        })?;
        // The counter is bumped just *after* an update's transaction commits,
        // so a caller racing updaters can catch it mid-divergence; re-sample
        // and only report a mismatch that persists.
        let mut walked = present;
        let mut counted = inner.population.total();
        for _ in 0..3 {
            if walked == counted {
                return Ok(());
            }
            skiphash_stm::sync::yield_now();
            walked = inner.stm.run(|tx| inner.skiplist.count_present(tx));
            counted = inner.population.total();
        }
        if walked != counted {
            return Err(format!(
                "population counter persistently reports {counted} keys but {walked} are present"
            ));
        }
        Ok(())
    }
}

impl<K: MapKey, V: MapValue> FromIterator<(K, V)> for SkipHash<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let map = SkipHash::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<K: MapKey, V: MapValue> Extend<(K, V)> for SkipHash<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}
