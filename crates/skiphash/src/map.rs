//! The skip hash ordered map.

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use skiphash_stm::{StatsSnapshot, Stm};

use crate::config::{Config, RemovalPolicy, SkipHashBuilder};
use crate::hashmap::TxHashMap;
use crate::node::Node;
use crate::rqc::{DeferralBuffer, Rqc};
use crate::skiplist::SkipList;
use crate::thread_slots;
use crate::{MapKey, MapValue};

/// Counters describing how range queries executed (fast path vs slow path).
///
/// `fast_path_aborts / fast_path_successes` reproduces the paper's Table 1
/// metric ("aborts per successful range query").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangeStats {
    /// Fast-path attempts that committed.
    pub fast_path_successes: u64,
    /// Fast-path attempts that aborted.
    pub fast_path_aborts: u64,
    /// Range queries that completed on the slow path.
    pub slow_path_completions: u64,
}

impl RangeStats {
    /// Aborted fast-path attempts per successful fast-path range query;
    /// `f64::INFINITY` when nothing succeeded but something aborted.
    pub fn aborts_per_success(&self) -> f64 {
        if self.fast_path_successes == 0 {
            if self.fast_path_aborts == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.fast_path_aborts as f64 / self.fast_path_successes as f64
        }
    }
}

pub(crate) struct RangeCounters {
    pub(crate) fast_success: AtomicU64,
    pub(crate) fast_abort: AtomicU64,
    pub(crate) slow_complete: AtomicU64,
}

impl RangeCounters {
    fn new() -> Self {
        Self {
            fast_success: AtomicU64::new(0),
            fast_abort: AtomicU64::new(0),
            slow_complete: AtomicU64::new(0),
        }
    }
}

/// A sharded population counter: one cache-line-padded signed counter per
/// thread slot, bumped *after* an insert or removal commits.
///
/// Sharding keeps the counter off the transactional hot path entirely — no
/// shared cache line is written by two threads, and no transaction carries
/// the counter in its read or write set (a single shared `TCell` counter
/// would conflict every pair of updates).  Individual shards may go negative
/// (a thread can decrement a different shard than the one incremented), so
/// shards are signed and only the sum is meaningful.
pub(crate) struct PopulationCounter {
    shards: Box<[CachePadded<AtomicI64>]>,
}

impl PopulationCounter {
    fn new() -> Self {
        Self {
            shards: (0..thread_slots::slot_table_size())
                .map(|_| CachePadded::new(AtomicI64::new(0)))
                .collect(),
        }
    }

    fn shard(&self) -> &AtomicI64 {
        &self.shards[thread_slots::current_slot() & (self.shards.len() - 1)]
    }

    fn record_insert(&self) {
        self.shard().fetch_add(1, Ordering::Relaxed);
    }

    fn record_remove(&self) {
        self.shard().fetch_sub(1, Ordering::Relaxed);
    }

    fn total(&self) -> usize {
        let sum: i64 = self.shards.iter().map(|s| s.load(Ordering::Relaxed)).sum();
        debug_assert!(sum >= 0, "population counter went negative: {sum}");
        sum.max(0) as usize
    }
}

/// A concurrent, linearizable ordered map composing a hash map and a doubly
/// linked skip list behind software transactional memory.
///
/// All operations take `&self`; share the map across threads with
/// [`std::sync::Arc`].
///
/// # Complexity
///
/// | operation | key present | key absent |
/// |-----------|-------------|------------|
/// | `get`     | `O(1)`      | `O(1)`     |
/// | `insert`  | `O(1)` (fails) | `O(log n)` |
/// | `remove`  | expected `O(1)` | `O(1)` (fails) |
/// | `ceil`/`floor`/`succ`/`pred` | `O(1)` | `O(log n)` |
/// | `range`   | `O(log n + k)` | — |
///
/// # Example
///
/// ```
/// use skiphash::SkipHash;
///
/// let map: SkipHash<u64, u64> = SkipHash::new();
/// for k in [4, 2, 9, 7] {
///     map.insert(k, k * 100);
/// }
/// assert_eq!(map.succ(&4), Some(7));
/// assert_eq!(map.range(&2, &7), vec![(2, 200), (4, 400), (7, 700)]);
/// ```
pub struct SkipHash<K: MapKey, V: MapValue> {
    pub(crate) stm: Stm,
    pub(crate) skiplist: SkipList<K, V>,
    pub(crate) index: TxHashMap<K, Arc<Node<K, V>>>,
    pub(crate) rqc: Rqc<K, V>,
    pub(crate) buffer: DeferralBuffer<K, V>,
    pub(crate) config: Config,
    pub(crate) range_counters: RangeCounters,
    pub(crate) population: PopulationCounter,
}

impl<K: MapKey, V: MapValue> fmt::Debug for SkipHash<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SkipHash")
            .field("config", &self.config)
            .finish()
    }
}

impl<K: MapKey, V: MapValue> Default for SkipHash<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: MapKey, V: MapValue> SkipHash<K, V> {
    /// Create a skip hash with the default configuration.
    pub fn new() -> Self {
        Self::with_config(Config::default())
    }

    /// Start configuring a skip hash.
    pub fn builder() -> SkipHashBuilder {
        SkipHashBuilder::new()
    }

    /// Create a skip hash with an explicit configuration.
    pub fn with_config(config: Config) -> Self {
        let buffer_capacity = match config.removal_policy {
            RemovalPolicy::Immediate => 1,
            RemovalPolicy::Buffered(n) => n.max(1),
        };
        Self {
            stm: Stm::with_clock(config.clock),
            skiplist: SkipList::new(config.max_level),
            index: TxHashMap::new(config.bucket_count),
            rqc: Rqc::new(),
            buffer: DeferralBuffer::new(buffer_capacity),
            config,
            range_counters: RangeCounters::new(),
            population: PopulationCounter::new(),
        }
    }

    /// The map's configuration.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Statistics from the underlying STM (commits, aborts by cause).
    pub fn stm_stats(&self) -> StatsSnapshot {
        self.stm.stats()
    }

    /// Reset STM and range statistics (between benchmark trials).
    pub fn reset_stats(&self) {
        self.stm.reset_stats();
        self.range_counters.fast_success.store(0, Ordering::Relaxed);
        self.range_counters.fast_abort.store(0, Ordering::Relaxed);
        self.range_counters
            .slow_complete
            .store(0, Ordering::Relaxed);
    }

    /// Range query execution statistics.
    pub fn range_stats(&self) -> RangeStats {
        RangeStats {
            fast_path_successes: self.range_counters.fast_success.load(Ordering::Relaxed),
            fast_path_aborts: self.range_counters.fast_abort.load(Ordering::Relaxed),
            slow_path_completions: self.range_counters.slow_complete.load(Ordering::Relaxed),
        }
    }

    /// Look up `key`, returning a clone of its value.
    ///
    /// `O(1)`: a hash map lookup plus one value read.
    pub fn get(&self, key: &K) -> Option<V> {
        self.stm.run(|tx| match self.index.get(tx, key)? {
            None => Ok(None),
            Some(node) => Ok(Some(node.read_value(tx)?)),
        })
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.stm.run(|tx| self.index.contains(tx, key))
    }

    /// Insert `key -> value` if `key` is absent.  Returns `false` (and leaves
    /// the map unchanged) when the key is already present — the paper's
    /// set-style `insert` semantics.
    pub fn insert(&self, key: K, value: V) -> bool {
        let height = {
            let mut rng = rand::thread_rng();
            self.skiplist.random_height(&mut rng)
        };
        let inserted = self.stm.run(|tx| {
            if self.index.contains(tx, &key)? {
                return Ok(false);
            }
            let i_time = self.rqc.on_update(tx)?;
            let node = self.skiplist.insert_after_logical_deletes(
                tx,
                key.clone(),
                value.clone(),
                height,
                i_time,
            )?;
            self.index.insert(tx, key.clone(), node)?;
            Ok(true)
        });
        if inserted {
            self.population.record_insert();
        }
        inserted
    }

    /// Insert or overwrite, returning the previous value when the key was
    /// present.  (A convenience beyond the paper's interface; an overwrite is
    /// a value update on the existing node and costs `O(1)`.)
    pub fn upsert(&self, key: K, value: V) -> Option<V> {
        let height = {
            let mut rng = rand::thread_rng();
            self.skiplist.random_height(&mut rng)
        };
        let previous = self.stm.run(|tx| {
            if let Some(node) = self.index.get(tx, &key)? {
                let previous = node.read_value(tx)?;
                node.value.write(tx, Some(value.clone()))?;
                return Ok(Some(previous));
            }
            let i_time = self.rqc.on_update(tx)?;
            let node = self.skiplist.insert_after_logical_deletes(
                tx,
                key.clone(),
                value.clone(),
                height,
                i_time,
            )?;
            self.index.insert(tx, key.clone(), node)?;
            Ok(None)
        });
        if previous.is_none() {
            self.population.record_insert();
        }
        previous
    }

    /// Remove `key`.  Returns `true` if the key was present.
    pub fn remove(&self, key: &K) -> bool {
        self.take(key).is_some()
    }

    /// Remove `key` and return its value if it was present.
    pub fn take(&self, key: &K) -> Option<V> {
        let (value, deferred) = self.stm.run(|tx| {
            let node = match self.index.get(tx, key)? {
                None => return Ok((None, None)),
                Some(node) => node,
            };
            self.index.remove(tx, key)?;
            let value = node.read_value(tx)?;
            let r_time = self.rqc.on_update(tx)?;
            node.r_time.write(tx, Some(r_time))?;
            let deferred = self.after_remove(tx, node)?;
            Ok((Some(value), deferred))
        });
        if value.is_some() {
            self.population.record_remove();
        }
        if let Some(node) = deferred {
            self.buffer_deferred_node(node);
        }
        value
    }

    /// `after_remove` from Figure 4: either unstitch immediately (inside the
    /// removing transaction) or arrange for deferral.  Under the buffered
    /// policy the deferral itself happens after the transaction commits, via
    /// the per-thread buffer, so this returns the node to be buffered.
    fn after_remove(
        &self,
        tx: &mut skiphash_stm::Txn<'_>,
        node: Arc<Node<K, V>>,
    ) -> skiphash_stm::TxResult<Option<Arc<Node<K, V>>>> {
        if self.rqc.can_unstitch_now(tx, &node)? {
            self.skiplist.unstitch(tx, &node)?;
            return Ok(None);
        }
        match self.config.removal_policy {
            RemovalPolicy::Immediate => {
                self.rqc.defer_to_latest(tx, node)?;
                Ok(None)
            }
            RemovalPolicy::Buffered(_) => Ok(Some(node)),
        }
    }

    /// Push a node whose unstitching must be deferred into the calling
    /// thread's buffer, flushing the buffer to the RQC when it fills up.
    fn buffer_deferred_node(&self, node: Arc<Node<K, V>>) {
        if let Some(batch) = self.buffer.push(node) {
            self.flush_deferred_batch(batch);
        }
    }

    pub(crate) fn flush_deferred_batch(&self, batch: Vec<Arc<Node<K, V>>>) {
        if batch.is_empty() {
            return;
        }
        let accepted = self
            .stm
            .run(|tx| self.rqc.defer_batch_to_latest(tx, &batch));
        if !accepted {
            // No slow-path range query is in flight: unstitch the whole batch
            // ourselves, one small transaction per node.
            for node in &batch {
                self.stm.run(|tx| self.skiplist.unstitch(tx, node));
            }
        }
    }

    /// Smallest key `>= key`, if any (`O(1)` when `key` itself is present).
    pub fn ceil(&self, key: &K) -> Option<K> {
        self.stm.run(|tx| {
            if self.index.contains(tx, key)? {
                return Ok(Some(key.clone()));
            }
            let node = self.skiplist.ceil_present(tx, key)?;
            Ok(if node.is_tail() {
                None
            } else {
                Some(node.key().clone())
            })
        })
    }

    /// Smallest key strictly `> key`, if any.
    pub fn succ(&self, key: &K) -> Option<K> {
        self.stm.run(|tx| {
            let node = self.skiplist.succ_present(tx, key)?;
            Ok(if node.is_tail() {
                None
            } else {
                Some(node.key().clone())
            })
        })
    }

    /// Largest key `<= key`, if any (`O(1)` when `key` itself is present).
    pub fn floor(&self, key: &K) -> Option<K> {
        self.stm.run(|tx| {
            if self.index.contains(tx, key)? {
                return Ok(Some(key.clone()));
            }
            let node = self.skiplist.floor_present(tx, key)?;
            Ok(if node.is_head() {
                None
            } else {
                Some(node.key().clone())
            })
        })
    }

    /// Largest key strictly `< key`, if any.
    pub fn pred(&self, key: &K) -> Option<K> {
        self.stm.run(|tx| {
            let node = self.skiplist.pred_present(tx, key)?;
            Ok(if node.is_head() {
                None
            } else {
                Some(node.key().clone())
            })
        })
    }

    /// Number of keys currently present.
    ///
    /// `O(shards)`: sums the sharded population counter, which is bumped
    /// outside the transactional hot path after each committed insert or
    /// removal (a single shared counter cell would serialize every update;
    /// the seed walked level 0 of the skip list instead, paying `O(n)` on
    /// every benchmark pre-fill verification).  Under concurrent updates the
    /// value is a linearizable-ish snapshot like any concurrent size; in
    /// debug builds a quiescent caller also pays the `O(n)` walk, which must
    /// agree with the counter.
    pub fn len(&self) -> usize {
        let total = self.population.total();
        #[cfg(debug_assertions)]
        {
            // A caller racing updaters can observe the walk and the counter
            // mid-divergence (the counter is bumped just after the
            // transaction commits), so only a *persistent* mismatch is a
            // bug.  Re-sample a few times before declaring one.
            let mut walked = self.stm.run(|tx| self.skiplist.count_present(tx));
            let mut counted = self.population.total();
            for _ in 0..3 {
                if walked == counted {
                    break;
                }
                std::thread::yield_now();
                walked = self.stm.run(|tx| self.skiplist.count_present(tx));
                counted = self.population.total();
            }
            debug_assert_eq!(
                walked, counted,
                "sharded population counter persistently diverged from the \
                 level-0 walk"
            );
        }
        total
    }

    /// True when the map holds no keys.
    pub fn is_empty(&self) -> bool {
        self.stm.run(|tx| {
            let first = self.skiplist.first_present(tx)?;
            Ok(first.is_tail())
        })
    }

    /// Snapshot every `(key, value)` pair in ascending key order, as one
    /// atomic (fast-path style) transaction.
    pub fn to_vec(&self) -> Vec<(K, V)> {
        self.stm.run(|tx| self.skiplist.collect_present(tx))
    }

    /// Remove every key.  Runs as a sequence of individual removals (there is
    /// no `O(1)` bulk clear in the paper's interface).
    pub fn clear(&self) {
        loop {
            let keys: Vec<K> = self
                .stm
                .run(|tx| self.skiplist.collect_present(tx))
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            if keys.is_empty() {
                return;
            }
            for key in keys {
                self.take(&key);
            }
        }
    }

    /// Validate internal invariants (test/debug helper): the hash map and the
    /// skip list agree on the set of present keys, the skip list's structure
    /// is well formed, and the sharded population counter matches the number
    /// of present keys.
    pub fn check_invariants(&self) -> Result<(), String> {
        let present = self.stm.run(|tx| {
            let structural = self.skiplist.check_invariants(tx)?;
            if let Err(e) = structural {
                return Ok(Err(e));
            }
            let mut from_list: Vec<K> = self
                .skiplist
                .collect_present(tx)?
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            let mut from_map: Vec<K> = self.index.keys(tx)?.into_iter().collect();
            from_list.sort();
            from_map.sort();
            if from_list != from_map {
                return Ok(Err(format!(
                    "hash map has {} keys but skip list has {} present keys",
                    from_map.len(),
                    from_list.len()
                )));
            }
            Ok(Ok(from_list.len()))
        })?;
        // The counter is bumped just *after* an update's transaction commits,
        // so a caller racing updaters can catch it mid-divergence; re-sample
        // and only report a mismatch that persists.
        let mut walked = present;
        let mut counted = self.population.total();
        for _ in 0..3 {
            if walked == counted {
                return Ok(());
            }
            std::thread::yield_now();
            walked = self.stm.run(|tx| self.skiplist.count_present(tx));
            counted = self.population.total();
        }
        if walked != counted {
            return Err(format!(
                "population counter persistently reports {counted} keys but {walked} are present"
            ));
        }
        Ok(())
    }
}

impl<K: MapKey, V: MapValue> FromIterator<(K, V)> for SkipHash<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let map = SkipHash::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<K: MapKey, V: MapValue> Extend<(K, V)> for SkipHash<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl<K: MapKey, V: MapValue> Drop for SkipHash<K, V> {
    fn drop(&mut self) {
        // The doubly linked skip list is a large cycle of `Arc`s; sever every
        // link so the nodes can actually be reclaimed.  `Drop` has exclusive
        // access, so the non-transactional stores are safe.
        self.skiplist.sever_all();
    }
}
