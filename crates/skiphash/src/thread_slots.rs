//! Collision-free per-thread slot indices.
//!
//! Several structures in this crate shard state by thread — the
//! [`crate::rqc::DeferralBuffer`] keeps one removal buffer per thread, and
//! [`crate::SkipHash`] shards its population counter — and all of them need a
//! cheap way to map "the current thread" to a small dense index.
//!
//! A naive scheme (a global counter hashed modulo a fixed table, as the seed
//! used) breaks down in two ways: indices grow without bound as threads come
//! and go, so long-running processes alias unrelated threads onto the same
//! slot; and a fixed table size picked at compile time has no relation to the
//! machine.  This module fixes both:
//!
//! * indices are leased from a **free list**: a thread claims the smallest
//!   recycled index (or mints the next fresh one) the first time it asks, and
//!   returns it when the thread exits, so the set of indices in use is always
//!   exactly as dense as the set of *live* threads;
//! * [`slot_table_size`] reports a power-of-two table size derived from
//!   [`std::thread::available_parallelism`], with headroom for oversubscribed
//!   workloads (tests routinely run more threads than cores).
//!
//! Together these guarantee that two distinct live threads never share a slot
//! as long as no more than [`slot_table_size`] threads are alive at once —
//! and that bound is `max(64, 4 × cores)`, far above anything the harness or
//! tests spawn.  The free-list mutex is touched once per thread lifetime
//! (claim + return), never on per-operation paths.

use skiphash_stm::sync::{AtomicUsize, Ordering};
use std::cell::RefCell;

use parking_lot::Mutex;

/// Next never-used index, minted when the free list is empty.
static NEXT_INDEX: AtomicUsize = AtomicUsize::new(0);

/// Indices returned by exited threads, reused before minting new ones.
static FREE_INDICES: Mutex<Vec<usize>> = Mutex::new(Vec::new());

/// A thread's lease on its slot index; returns the index on thread exit.
struct Lease {
    index: usize,
}

impl Drop for Lease {
    fn drop(&mut self) {
        FREE_INDICES.lock().push(self.index);
    }
}

thread_local! {
    static LEASE: RefCell<Option<Lease>> = const { RefCell::new(None) };
}

/// The calling thread's slot index, claimed on first use and held until the
/// thread exits.
///
/// Indices are dense over live threads: an exited thread's index is recycled
/// by the next thread that claims one.  During thread-local teardown (when
/// the lease is already gone) this falls back to index 0; that path can only
/// be hit by destructors, never by per-operation code.
pub fn current_slot() -> usize {
    LEASE
        .try_with(|lease| {
            lease
                .borrow_mut()
                .get_or_insert_with(|| Lease {
                    index: FREE_INDICES
                        .lock()
                        .pop()
                        .unwrap_or_else(|| NEXT_INDEX.fetch_add(1, Ordering::Relaxed)),
                })
                .index
        })
        .unwrap_or(0)
}

/// Power-of-two slot-table size for thread-sharded structures: at least 64
/// and at least four times [`std::thread::available_parallelism`], so that
/// moderately oversubscribed workloads still map live threads to distinct
/// slots.
pub fn slot_table_size() -> usize {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(16);
    (4 * parallelism).next_power_of_two().max(64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::{Arc, Barrier};
    use std::thread;

    #[test]
    fn table_size_is_power_of_two_with_floor() {
        let size = slot_table_size();
        assert!(size.is_power_of_two());
        assert!(size >= 64);
    }

    #[test]
    fn slot_is_stable_within_a_thread() {
        assert_eq!(current_slot(), current_slot());
    }

    #[test]
    fn concurrent_threads_get_distinct_slots() {
        let threads = 16;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    let slot = current_slot();
                    // Hold the lease until every thread has sampled its slot,
                    // so no index is recycled mid-test.
                    barrier.wait();
                    slot
                })
            })
            .collect();
        let slots: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let distinct: HashSet<usize> = slots.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            threads,
            "live threads must never share a slot: {slots:?}"
        );
    }

    #[test]
    fn exited_threads_donate_their_slots() {
        // Sequential threads: each exits before the next starts, so the free
        // list always has a recycled index available.  Other tests in this
        // process may mint a handful of indices concurrently, so allow slack;
        // the point is that 100 sequential threads must come nowhere near
        // minting 100 fresh indices.
        let before = NEXT_INDEX.load(Ordering::Relaxed);
        for _ in 0..100 {
            thread::spawn(current_slot).join().unwrap();
        }
        let after = NEXT_INDEX.load(Ordering::Relaxed);
        assert!(
            after <= before + 50,
            "sequential threads must reuse recycled indices ({before} -> {after})"
        );
    }
}
