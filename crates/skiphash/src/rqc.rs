//! The range query coordinator (RQC).
//!
//! Slow-path range queries cannot run as a single transaction, so they need
//! help ignoring nodes inserted after they began and keeping nodes removed
//! after they began alive until they finish.  The RQC provides both:
//!
//! * it hands out monotonically increasing **version numbers** — one per
//!   slow-path range query — and reports the latest version to elemental
//!   operations so they can stamp nodes with `i_time`/`r_time`;
//! * it tracks the set of **in-flight slow-path range queries** and accepts
//!   custody of logically deleted nodes whose physical unstitching must be
//!   deferred until the queries that may still need them have finished.
//!
//! The concrete representation follows Figure 4 of the paper: a counter plus
//! a list of `range_op` records, each carrying its version and a list of
//! deferred nodes.  §4.5's per-thread removal buffer is implemented by
//! [`DeferralBuffer`].

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use skiphash_stm::{TCell, TxResult, Txn};

use crate::node::NodeRef;
use crate::thread_slots;
use crate::{MapKey, MapValue};

/// Metadata for one in-flight slow-path range query.
pub struct RangeOp<K, V> {
    /// The query's version number.
    pub ver: u64,
    /// Logically deleted nodes whose unstitching is deferred until this query
    /// (or one of its predecessors) completes.
    pub deferred: TCell<Vec<NodeRef<K, V>>>,
}

impl<K, V> fmt::Debug for RangeOp<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RangeOp").field("ver", &self.ver).finish()
    }
}

/// The range query coordinator.
pub struct Rqc<K, V> {
    counter: TCell<u64>,
    range_ops: TCell<Vec<Arc<RangeOp<K, V>>>>,
}

impl<K, V> fmt::Debug for Rqc<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rqc").finish()
    }
}

impl<K: MapKey, V: MapValue> Default for Rqc<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: MapKey, V: MapValue> Rqc<K, V> {
    /// Create a coordinator with no registered range queries.
    pub fn new() -> Self {
        Self {
            counter: TCell::new(0),
            range_ops: TCell::new(Vec::new()),
        }
    }

    /// Register a new slow-path range query and return its unique version
    /// number (`on_range` in the paper).
    pub fn on_range(&self, tx: &mut Txn<'_>) -> TxResult<u64> {
        let version = self.counter.read(tx)? + 1;
        self.counter.write(tx, version)?;
        let mut ops = self.range_ops.read(tx)?;
        ops.push(Arc::new(RangeOp {
            ver: version,
            deferred: TCell::new(Vec::new()),
        }));
        self.range_ops.write(tx, ops)?;
        Ok(version)
    }

    /// Report the most recent range query's version number to an elemental
    /// operation (`on_update` in the paper).  Elemental operations reuse this
    /// value rather than incrementing the counter, ordering themselves after
    /// the latest range query.
    pub fn on_update(&self, tx: &mut Txn<'_>) -> TxResult<u64> {
        self.counter.read(tx)
    }

    /// The latest version handed out (non-transactional; for tests and
    /// reporting).
    pub fn current_version(&self) -> u64 {
        self.counter.load_atomic()
    }

    /// Number of in-flight slow-path range queries (non-transactional; for
    /// tests and reporting).
    pub fn active_queries(&self) -> usize {
        self.range_ops.load_atomic().len()
    }

    /// True when `node` can be physically unstitched right away: either no
    /// slow-path range query is in flight, or the node was inserted after the
    /// most recent one began (so no in-flight query treats it as safe).
    pub fn can_unstitch_now(&self, tx: &mut Txn<'_>, node: &NodeRef<K, V>) -> TxResult<bool> {
        let ops = self.range_ops.read(tx)?;
        match ops.last() {
            None => Ok(true),
            Some(latest) => Ok(node.i_time.read(tx)? >= latest.ver),
        }
    }

    /// Hand `node` to the most recent in-flight range query (`after_remove`'s
    /// deferral branch).  The caller must have established, in this same
    /// transaction, that immediate unstitching is not allowed.
    pub fn defer_to_latest(&self, tx: &mut Txn<'_>, node: NodeRef<K, V>) -> TxResult<()> {
        let ops = self.range_ops.read(tx)?;
        let latest = ops
            .last()
            .expect("defer_to_latest requires an in-flight range query");
        let mut deferred = latest.deferred.read(tx)?;
        deferred.push(node);
        latest.deferred.write(tx, deferred)?;
        Ok(())
    }

    /// Hand an entire batch of nodes to the most recent in-flight range query
    /// (the per-thread buffer transfer from §4.5).  Returns `false` — leaving
    /// the batch untouched — when no query is in flight, in which case the
    /// caller unstitches the batch itself.
    pub fn defer_batch_to_latest(
        &self,
        tx: &mut Txn<'_>,
        batch: &[NodeRef<K, V>],
    ) -> TxResult<bool> {
        let ops = self.range_ops.read(tx)?;
        match ops.last() {
            None => Ok(false),
            Some(latest) => {
                let mut deferred = latest.deferred.read(tx)?;
                deferred.extend(batch.iter().cloned());
                latest.deferred.write(tx, deferred)?;
                Ok(true)
            }
        }
    }

    /// Deregister the range query with version `ver` (`after_range` in the
    /// paper) and return the nodes the caller must now unstitch.
    ///
    /// If an older query is still in flight, the finishing query's deferred
    /// nodes are passed *backwards* to that query instead, and the returned
    /// vector is empty; every deferred node is therefore reclaimed
    /// eventually.
    pub fn after_range(&self, tx: &mut Txn<'_>, ver: u64) -> TxResult<Vec<NodeRef<K, V>>> {
        let mut ops = self.range_ops.read(tx)?;
        let index = ops
            .iter()
            .position(|op| op.ver == ver)
            .expect("after_range called for an unregistered version");
        let op = ops.remove(index);
        let deferred = op.deferred.read(tx)?;
        let mut to_unstitch = Vec::new();
        if index == 0 {
            // We were the oldest in-flight query: its deferred nodes are no
            // longer needed by anyone.
            to_unstitch = deferred;
        } else if !deferred.is_empty() {
            // An older query remains; push our deferred nodes back to it.
            let predecessor = &ops[index - 1];
            let mut inherited = predecessor.deferred.read(tx)?;
            inherited.extend(deferred);
            predecessor.deferred.write(tx, inherited)?;
        }
        self.range_ops.write(tx, ops)?;
        Ok(to_unstitch)
    }
}

/// §4.5's per-thread buffer of logically deleted nodes awaiting deferral.
///
/// Threads push removed nodes into their own slot; when a slot reaches the
/// configured capacity the whole batch is handed to the RQC (or unstitched
/// directly when no slow-path range query is in flight).  This turns the
/// per-removal write to the RQC's shared `deferred` list into one write per
/// `capacity` removals.
///
/// The slot table is sized from [`thread_slots::slot_table_size`] (a power of
/// two derived from `available_parallelism`), and threads are assigned slot
/// indices from the collision-free lease registry in [`thread_slots`], so
/// distinct live threads never contend on the same slot — the seed's fixed
/// 128-slot table hashed an ever-growing thread counter modulo the table and
/// silently serialized unrelated threads once enough had come and gone.
pub struct DeferralBuffer<K, V> {
    slots: Vec<Mutex<DeferredBatch<K, V>>>,
    capacity: usize,
}

/// A batch of logically deleted nodes awaiting physical unstitching.
pub type DeferredBatch<K, V> = Vec<NodeRef<K, V>>;

impl<K, V> fmt::Debug for DeferralBuffer<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeferralBuffer")
            .field("slots", &self.slots.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl<K: MapKey, V: MapValue> DeferralBuffer<K, V> {
    /// Create a buffer whose per-thread slots flush at `capacity` nodes.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..thread_slots::slot_table_size())
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            capacity,
        }
    }

    /// Flush threshold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of per-thread slots (a power of two).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Add `node` to the calling thread's slot.  Returns the full batch when
    /// the slot reached capacity and must now be handed to the RQC.
    pub fn push(&self, node: NodeRef<K, V>) -> Option<Vec<NodeRef<K, V>>> {
        // Leased indices are dense over live threads, so the mask only folds
        // indices when more threads are alive than the table has slots.
        let slot = &self.slots[thread_slots::current_slot() & (self.slots.len() - 1)];
        let mut pending = slot.lock();
        pending.push(node);
        if pending.len() >= self.capacity {
            Some(std::mem::take(&mut *pending))
        } else {
            None
        }
    }

    /// Remove and return every buffered node from every slot (used at
    /// teardown and by tests).
    pub fn drain_all(&self) -> Vec<NodeRef<K, V>> {
        let mut all = Vec::new();
        for slot in &self.slots {
            all.append(&mut slot.lock());
        }
        all
    }

    /// Total number of buffered nodes across all slots.
    pub fn len(&self) -> usize {
        self.slots.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no node is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;
    use skiphash_stm::Stm;

    fn node(key: u64, i_time: u64) -> NodeRef<u64, u64> {
        Node::new(key, key, 1, i_time, 0)
    }

    #[test]
    fn on_range_increments_and_on_update_reuses() {
        let stm = Stm::new();
        let rqc: Rqc<u64, u64> = Rqc::new();
        assert_eq!(stm.run(|tx| rqc.on_update(tx)), 0);
        let v1 = stm.run(|tx| rqc.on_range(tx));
        assert_eq!(v1, 1);
        assert_eq!(stm.run(|tx| rqc.on_update(tx)), 1);
        let v2 = stm.run(|tx| rqc.on_range(tx));
        assert_eq!(v2, 2);
        assert_eq!(rqc.current_version(), 2);
        assert_eq!(rqc.active_queries(), 2);
    }

    #[test]
    fn unstitch_allowed_when_no_query_active() {
        let stm = Stm::new();
        let rqc: Rqc<u64, u64> = Rqc::new();
        let n = node(1, 0);
        assert!(stm.run(|tx| rqc.can_unstitch_now(tx, &n)));
    }

    #[test]
    fn unstitch_deferred_for_older_nodes_while_query_active() {
        let stm = Stm::new();
        let rqc: Rqc<u64, u64> = Rqc::new();
        let ver = stm.run(|tx| rqc.on_range(tx));
        let older = node(1, 0);
        let newer = node(2, ver);
        assert!(!stm.run(|tx| rqc.can_unstitch_now(tx, &older)));
        assert!(stm.run(|tx| rqc.can_unstitch_now(tx, &newer)));
    }

    #[test]
    fn after_range_returns_deferred_nodes_when_oldest() {
        let stm = Stm::new();
        let rqc: Rqc<u64, u64> = Rqc::new();
        let ver = stm.run(|tx| rqc.on_range(tx));
        let n = node(1, 0);
        stm.run(|tx| rqc.defer_to_latest(tx, n.clone()));
        let removals = stm.run(|tx| rqc.after_range(tx, ver));
        assert_eq!(removals.len(), 1);
        assert!(NodeRef::ptr_eq(&removals[0], &n));
        assert_eq!(rqc.active_queries(), 0);
    }

    #[test]
    fn after_range_passes_deferred_backwards_to_older_query() {
        let stm = Stm::new();
        let rqc: Rqc<u64, u64> = Rqc::new();
        let v1 = stm.run(|tx| rqc.on_range(tx));
        let v2 = stm.run(|tx| rqc.on_range(tx));
        let n = node(1, 0);
        stm.run(|tx| rqc.defer_to_latest(tx, n.clone()));
        // Finishing the newer query must not release the node...
        let removals = stm.run(|tx| rqc.after_range(tx, v2));
        assert!(removals.is_empty());
        assert_eq!(rqc.active_queries(), 1);
        // ...but finishing the older one must.
        let removals = stm.run(|tx| rqc.after_range(tx, v1));
        assert_eq!(removals.len(), 1);
        assert!(NodeRef::ptr_eq(&removals[0], &n));
    }

    #[test]
    fn batch_deferral_prefers_latest_query() {
        let stm = Stm::new();
        let rqc: Rqc<u64, u64> = Rqc::new();
        let batch = vec![node(1, 0), node(2, 0)];
        // Without a query in flight the batch is not accepted.
        assert!(!stm.run(|tx| rqc.defer_batch_to_latest(tx, &batch)));
        let ver = stm.run(|tx| rqc.on_range(tx));
        assert!(stm.run(|tx| rqc.defer_batch_to_latest(tx, &batch)));
        let removals = stm.run(|tx| rqc.after_range(tx, ver));
        assert_eq!(removals.len(), 2);
    }

    #[test]
    fn deferral_buffer_flushes_at_capacity() {
        let buffer: DeferralBuffer<u64, u64> = DeferralBuffer::new(3);
        assert!(buffer.is_empty());
        assert!(buffer.push(node(1, 0)).is_none());
        assert!(buffer.push(node(2, 0)).is_none());
        let batch = buffer.push(node(3, 0)).expect("third push must flush");
        assert_eq!(batch.len(), 3);
        assert!(buffer.is_empty());
        assert!(buffer.push(node(4, 0)).is_none());
        assert_eq!(buffer.drain_all().len(), 1);
    }

    #[test]
    fn live_threads_never_share_a_buffer_slot() {
        use std::sync::Barrier;
        // Capacity 2 turns any slot collision into an observable flush: if
        // two live threads mapped to the same slot, the second push would
        // return a full batch.  All pushes returning `None` proves the slot
        // assignment is collision-free.
        let threads = 16;
        let buffer: Arc<DeferralBuffer<u64, u64>> = Arc::new(DeferralBuffer::new(2));
        assert!(threads <= buffer.slot_count());
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let buffer = Arc::clone(&buffer);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let lease = crate::thread_slots::current_slot();
                    let flushed = buffer.push(node(t as u64, 0));
                    // Keep the thread (and its slot lease) alive until every
                    // thread has pushed.
                    barrier.wait();
                    (lease, flushed.is_none())
                })
            })
            .collect();
        let results: Vec<(usize, bool)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // The no-collision guarantee holds while live leases fit the table;
        // other tests in this process hold leases too, so skip the assertion
        // in the (pathological) case where the process is so oversubscribed
        // that this test's workers were handed indices beyond the table and
        // the mask legitimately folds them.
        if results
            .iter()
            .all(|(lease, _)| *lease < buffer.slot_count())
        {
            for (lease, no_flush) in &results {
                assert!(
                    no_flush,
                    "two live threads were assigned the same deferral slot (lease {lease})"
                );
            }
        }
        assert_eq!(buffer.drain_all().len(), threads);
    }

    #[test]
    fn buffer_capacity_is_at_least_one() {
        let buffer: DeferralBuffer<u64, u64> = DeferralBuffer::new(0);
        assert_eq!(buffer.capacity(), 1);
        assert!(buffer.push(node(1, 0)).is_some());
    }
}
