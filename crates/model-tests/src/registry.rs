//! Named model bodies.
//!
//! Each entry is a self-contained closure suitable for
//! `skiphash_model::{explore, replay}`.  The replay-corpus test looks
//! bodies up by name, so a token found during development can be committed
//! as `corpus/<anything>.token` with the model's name on the same line.

use skiphash_model as model;
use skiphash_model::atomic::{fence, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Which SeqCst fences of the epoch-reclamation protocol are present in an
/// [`ebr_body`] instance.  The clean protocol has all three; deleting any
/// one must yield a use-after-free counterexample (see the fence numbering
/// in `vendor/crossbeam-epoch/src/lib.rs` and `docs/VERIFICATION.md`).
#[derive(Clone, Copy, Debug)]
pub struct EbrFences {
    /// Fence (1): in `pin()`, between the slot-active store and the epoch
    /// re-load.  Publishes the slot so the collector's scan must see it.
    pub pin: bool,
    /// Fence (2): in `seal_local`, between the retirement store and the
    /// epoch-tag load.  Floors the tag so garbage is never tagged with an
    /// epoch older than the one in which it was still reachable.
    pub seal: bool,
    /// The collector-side fence in `try_advance`, between the epoch load
    /// and the slot scan; pairs with fence (1).
    pub scan: bool,
}

impl EbrFences {
    /// All fences present — the protocol as shipped.
    pub const CLEAN: EbrFences = EbrFences {
        pin: true,
        seal: true,
        scan: true,
    };
}

/// A faithful transcription of the vendored epoch shim's reclamation
/// protocol onto fully-instrumented atomics, with each SeqCst fence made
/// deletable.
///
/// The shim itself cannot sit below the `stm::sync` facade (the facade
/// lives above it in the dependency order), and more importantly its slot
/// registry / bag machinery would drown the schedule space; this
/// transcription keeps exactly the ordering skeleton the shim's safety
/// argument rests on:
///
/// * one reader slot (`0` = inactive, `(e << 1) | 1` = active at `e`),
/// * a global epoch counter advanced by `compare_exchange` after a scan,
/// * a single protected pointer (an index into a `freed` table standing in
///   for the heap), unlinked by a `Release` store and retired with the
///   post-fence epoch as its tag,
/// * garbage freed once `tag + 2 <= global_epoch`.
///
/// Crucially the three roles run on three *different* threads, as they do
/// in the real shim under load: the **reader** pins (store slot, fence
/// (1), re-check epoch), reads the pointer with `Acquire`, and asserts the
/// object it read has not been freed; the **writer** unlinks and seals
/// (fence (2), then tag); the **collector** scans and advances (scan
/// fence) and frees expired garbage.  Collapsing writer and collector into
/// one thread would let that thread's own fences/RMWs keep its view fresh
/// and mask the seal/scan fence deletions.
pub fn ebr_body(fences: EbrFences) -> impl Fn() + Send + Sync + 'static {
    move || {
        let epoch = Arc::new(AtomicUsize::new(0));
        let slot = Arc::new(AtomicUsize::new(0));
        let data_ptr = Arc::new(AtomicUsize::new(0));
        // Plain state mutated only while holding the scheduler token; the
        // Mutexes keep it honest for the real OS threads underneath (they
        // are never contended, so they add no schedule points).
        let freed = Arc::new(Mutex::new([false; 2]));
        let retired = Arc::new(Mutex::new(Vec::<(usize, usize)>::new()));

        let reader = {
            let (epoch, slot, data_ptr, freed) = (
                Arc::clone(&epoch),
                Arc::clone(&slot),
                Arc::clone(&data_ptr),
                Arc::clone(&freed),
            );
            model::thread::spawn(move || {
                // pin(): advertise an epoch, fence (1), re-check.
                loop {
                    let e = epoch.load(Ordering::Relaxed);
                    slot.store((e << 1) | 1, Ordering::Relaxed);
                    if fences.pin {
                        fence(Ordering::SeqCst);
                    }
                    if epoch.load(Ordering::Relaxed) == e {
                        break;
                    }
                }
                // Guarded read of the protected pointer.
                let v = data_ptr.load(Ordering::Acquire);
                assert!(
                    !freed.lock().unwrap()[v],
                    "use-after-free: reader dereferenced object {v} after reclamation"
                );
                // unpin()
                slot.store(0, Ordering::Release);
            })
        };

        let writer = {
            let (epoch, data_ptr, retired) = (
                Arc::clone(&epoch),
                Arc::clone(&data_ptr),
                Arc::clone(&retired),
            );
            model::thread::spawn(move || {
                // Unlink object 0, install object 1 (`seal_local`'s
                // retirement path: fence (2), then read the epoch tag).
                data_ptr.store(1, Ordering::Release);
                if fences.seal {
                    fence(Ordering::SeqCst);
                }
                let tag = epoch.load(Ordering::Relaxed);
                retired.lock().unwrap().push((0, tag));
            })
        };

        let collector = {
            let (epoch, slot, freed, retired) = (
                Arc::clone(&epoch),
                Arc::clone(&slot),
                Arc::clone(&freed),
                Arc::clone(&retired),
            );
            model::thread::spawn(move || {
                // try_advance() twice (enough to cross the tag + 2 horizon),
                // freeing anything two epochs old.
                for _ in 0..2 {
                    let e = epoch.load(Ordering::Relaxed);
                    if fences.scan {
                        fence(Ordering::SeqCst);
                    }
                    let s = slot.load(Ordering::Relaxed);
                    if s & 1 == 0 || (s >> 1) == e {
                        let _ =
                            epoch.compare_exchange(e, e + 1, Ordering::AcqRel, Ordering::Acquire);
                    }
                    let cur = epoch.load(Ordering::Relaxed);
                    retired.lock().unwrap().retain(|&(obj, tag)| {
                        if tag + 2 <= cur {
                            freed.lock().unwrap()[obj] = true;
                            false
                        } else {
                            true
                        }
                    });
                }
            })
        };

        reader.join().unwrap();
        writer.join().unwrap();
        collector.join().unwrap();
    }
}

/// Look up a model body by the name used in the replay corpus.
pub fn by_name(name: &str) -> Option<Box<dyn Fn() + Send + Sync>> {
    match name {
        "ebr-clean" => Some(Box::new(ebr_body(EbrFences::CLEAN))),
        "ebr-no-pin-fence" => Some(Box::new(ebr_body(EbrFences {
            pin: false,
            ..EbrFences::CLEAN
        }))),
        "ebr-no-seal-fence" => Some(Box::new(ebr_body(EbrFences {
            seal: false,
            ..EbrFences::CLEAN
        }))),
        "ebr-no-scan-fence" => Some(Box::new(ebr_body(EbrFences {
            scan: false,
            ..EbrFences::CLEAN
        }))),
        _ => None,
    }
}
