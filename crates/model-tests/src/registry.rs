//! Named model bodies.
//!
//! Each entry is a self-contained closure suitable for
//! `skiphash_model::{explore, replay}`.  The replay-corpus test looks
//! bodies up by name, so a token found during development can be committed
//! as `corpus/<anything>.token` with the model's name on the same line.

use skiphash_model as model;
use skiphash_model::atomic::{fence, AtomicUsize, Ordering};
use skiphash_model::cell::ShadowSlot;
use std::sync::{Arc, Mutex};

/// Which SeqCst fences of the epoch-reclamation protocol are present in an
/// [`ebr_body`] instance.  The clean protocol has all three; deleting any
/// one must yield a use-after-free counterexample (see the fence numbering
/// in `vendor/crossbeam-epoch/src/lib.rs` and `docs/VERIFICATION.md`).
#[derive(Clone, Copy, Debug)]
pub struct EbrFences {
    /// Fence (1): in `pin()`, between the slot-active store and the epoch
    /// re-load.  Publishes the slot so the collector's scan must see it.
    pub pin: bool,
    /// Fence (2): in `seal_local`, between the retirement store and the
    /// epoch-tag load.  Floors the tag so garbage is never tagged with an
    /// epoch older than the one in which it was still reachable.
    pub seal: bool,
    /// The collector-side fence in `try_advance`, between the epoch load
    /// and the slot scan; pairs with fence (1).
    pub scan: bool,
}

impl EbrFences {
    /// All fences present — the protocol as shipped.
    pub const CLEAN: EbrFences = EbrFences {
        pin: true,
        seal: true,
        scan: true,
    };
}

/// A faithful transcription of the vendored epoch shim's reclamation
/// protocol onto fully-instrumented atomics, with each SeqCst fence made
/// deletable.
///
/// The shim itself cannot sit below the `stm::sync` facade (the facade
/// lives above it in the dependency order), and more importantly its slot
/// registry / bag machinery would drown the schedule space; this
/// transcription keeps exactly the ordering skeleton the shim's safety
/// argument rests on:
///
/// * one reader slot (`0` = inactive, `(e << 1) | 1` = active at `e`),
/// * a global epoch counter advanced by `compare_exchange` after a scan,
/// * a single protected pointer (an index into a `freed` table standing in
///   for the heap), unlinked by a `Release` store and retired with the
///   post-fence epoch as its tag,
/// * garbage freed once `tag + 2 <= global_epoch`.
///
/// Crucially the three roles run on three *different* threads, as they do
/// in the real shim under load: the **reader** pins (store slot, fence
/// (1), re-check epoch), reads the pointer with `Acquire`, and asserts the
/// object it read has not been freed; the **writer** unlinks and seals
/// (fence (2), then tag); the **collector** scans and advances (scan
/// fence) and frees expired garbage.  Collapsing writer and collector into
/// one thread would let that thread's own fences/RMWs keep its view fresh
/// and mask the seal/scan fence deletions.
pub fn ebr_body(fences: EbrFences) -> impl Fn() + Send + Sync + 'static {
    move || {
        let epoch = Arc::new(AtomicUsize::new(0));
        let slot = Arc::new(AtomicUsize::new(0));
        let data_ptr = Arc::new(AtomicUsize::new(0));
        // Plain state mutated only while holding the scheduler token; the
        // Mutexes keep it honest for the real OS threads underneath (they
        // are never contended, so they add no schedule points).
        let freed = Arc::new(Mutex::new([false; 2]));
        let retired = Arc::new(Mutex::new(Vec::<(usize, usize)>::new()));

        let reader = {
            let (epoch, slot, data_ptr, freed) = (
                Arc::clone(&epoch),
                Arc::clone(&slot),
                Arc::clone(&data_ptr),
                Arc::clone(&freed),
            );
            model::thread::spawn(move || {
                // pin(): advertise an epoch, fence (1), re-check.
                loop {
                    let e = epoch.load(Ordering::Relaxed);
                    slot.store((e << 1) | 1, Ordering::Relaxed);
                    if fences.pin {
                        // SC: pin fence (1) — the slot advertisement must be
                        // visible before the epoch re-check.
                        fence(Ordering::SeqCst);
                    }
                    if epoch.load(Ordering::Relaxed) == e {
                        break;
                    }
                }
                // Guarded read of the protected pointer.
                let v = data_ptr.load(Ordering::Acquire);
                assert!(
                    !freed.lock().unwrap()[v],
                    "use-after-free: reader dereferenced object {v} after reclamation"
                );
                // unpin()
                slot.store(0, Ordering::Release);
            })
        };

        let writer = {
            let (epoch, data_ptr, retired) = (
                Arc::clone(&epoch),
                Arc::clone(&data_ptr),
                Arc::clone(&retired),
            );
            model::thread::spawn(move || {
                // Unlink object 0, install object 1 (`seal_local`'s
                // retirement path: fence (2), then read the epoch tag).
                data_ptr.store(1, Ordering::Release);
                if fences.seal {
                    // SC: seal fence (2) — unlink before the epoch-tag read.
                    fence(Ordering::SeqCst);
                }
                let tag = epoch.load(Ordering::Relaxed);
                retired.lock().unwrap().push((0, tag));
            })
        };

        let collector = {
            let (epoch, slot, freed, retired) = (
                Arc::clone(&epoch),
                Arc::clone(&slot),
                Arc::clone(&freed),
                Arc::clone(&retired),
            );
            model::thread::spawn(move || {
                // try_advance() twice (enough to cross the tag + 2 horizon),
                // freeing anything two epochs old.
                for _ in 0..2 {
                    let e = epoch.load(Ordering::Relaxed);
                    if fences.scan {
                        // SC: scan fence (3) — epoch sample before the slot
                        // scan; only observable at Arm strength.
                        fence(Ordering::SeqCst);
                    }
                    let s = slot.load(Ordering::Relaxed);
                    if s & 1 == 0 || (s >> 1) == e {
                        let _ =
                            epoch.compare_exchange(e, e + 1, Ordering::AcqRel, Ordering::Acquire);
                    }
                    let cur = epoch.load(Ordering::Relaxed);
                    retired.lock().unwrap().retain(|&(obj, tag)| {
                        if tag + 2 <= cur {
                            freed.lock().unwrap()[obj] = true;
                            false
                        } else {
                            true
                        }
                    });
                }
            })
        };

        reader.join().unwrap();
        writer.join().unwrap();
        collector.join().unwrap();
    }
}

/// A minimal transcription of the orec/payload publish protocol from
/// `stm::txn` / `stm::tcell`, with the unlock store's `Release` deletable.
///
/// State: `orec` (even = unlocked at that version, odd = locked) and `data`
/// (a payload *generation* counter standing in for the epoch-managed
/// pointer; the writer's `Release` store models `Atomic::swap`'s release
/// half).  A [`ShadowSlot`] mirrors the payload slot exactly as
/// `TCell::shadow` does in model builds of the real crate: the writer marks
/// the install while holding the orec, the reader marks its read only after
/// the orec recheck passes — and only on the path that validated at the
/// *post-commit* version, which is the path whose safety rests on the
/// unlock edge.
///
/// With the `Release` unlock (`release_ok = true`) a reader that validated
/// at the new version is happens-after the install: its acquire load of
/// the released orec joins the writer's published view, which also floors
/// the payload location so the displaced generation is no longer readable.
/// Tearing the unlock down to `Relaxed` severs that edge: the reader can
/// validate at the new version while having read (and kept) the *displaced*
/// generation — a value the commit already handed to reclamation.  The
/// race detector reports the confirmed read as unsynchronized with the
/// install, with a replayable token.
pub fn orec_publish_body(release_ok: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let orec = Arc::new(AtomicUsize::new(0));
        let data = Arc::new(AtomicUsize::new(0));
        let slot = Arc::new(ShadowSlot::new("tcell.payload"));

        let writer = {
            let (orec, data, slot) = (Arc::clone(&orec), Arc::clone(&data), Arc::clone(&slot));
            model::thread::spawn(move || {
                // try_acquire: lock version 0 (odd word = locked).
                if orec
                    .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // Install a fresh payload generation while owning the
                    // orec (the `data.swap` + `shadow.on_write` pair in
                    // `Txn::write_cell`).
                    slot.on_write();
                    data.store(1, Ordering::Release);
                    // release(): unlock at the commit version.  The
                    // `Release` here is the edge under test.
                    let unlock = if release_ok {
                        Ordering::Release
                    } else {
                        Ordering::Relaxed
                    };
                    orec.store(2, unlock);
                }
            })
        };

        let reader = {
            let (orec, data, slot) = (Arc::clone(&orec), Arc::clone(&data), Arc::clone(&slot));
            model::thread::spawn(move || {
                // Optimistic read validated at the post-commit version
                // (`Txn::read_cell_with`: sample, read payload, recheck).
                let o1 = orec.load(Ordering::Acquire);
                if o1 == 2 {
                    let _generation = data.load(Ordering::Acquire);
                    if orec.load(Ordering::Acquire) == o1 {
                        slot.on_read_confirmed();
                    }
                }
            })
        };

        writer.join().unwrap();
        reader.join().unwrap();
    }
}

/// A minimal transcription of the commit-time snapshot-preserve decision
/// from the MVCC custody protocol (`stm::snapshot`), with the pin check
/// deletable.
///
/// A pinned reader raises the live-pin count, samples the clock, and — when
/// the sample says the original payload generation is still the one its
/// snapshot resolves to — keeps that payload.  A displacing committer ticks
/// the clock and then must consult the pin count before recycling the
/// displaced block: a live pin whose version precedes the tick can still be
/// reading it.  `preserve = false` models the seeded bug of skipping the
/// pin check and recycling unconditionally; the reader's kept payload is
/// then overwritten by an install it was never ordered against, which the
/// race detector reports (the real-code counterpart is custody
/// preservation in `WriteEntry::commit`).
pub fn snapshot_preserve_body(preserve: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let pins = Arc::new(AtomicUsize::new(0));
        let version = Arc::new(AtomicUsize::new(0));
        let slot = Arc::new(ShadowSlot::new("snapshot.gen0"));

        let reader = {
            let (pins, version, slot) =
                (Arc::clone(&pins), Arc::clone(&version), Arc::clone(&slot));
            model::thread::spawn(move || {
                // SC: pin-publish must precede the clock sample (the
                // SnapshotPin::new ordering proved by the snapshot suite).
                pins.fetch_add(1, Ordering::SeqCst);
                // SC: pairs with the committer's tick; a sample of 0 means
                // this snapshot resolves to the original generation.
                let rv = version.load(Ordering::SeqCst);
                if rv == 0 {
                    // The payload dereference spans the sample and the
                    // orec recheck (`read_pinned_with`'s current-value
                    // path); the recheck is an Acquire load that can
                    // legitimately observe a stale word, and recycling
                    // does not touch this cell's orec — so a recycle
                    // landing inside the window still validates.
                    if version.load(Ordering::Acquire) == 0 {
                        slot.on_read_confirmed();
                    }
                }
                // SC: unpin releases custody to later committers.
                pins.fetch_sub(1, Ordering::SeqCst);
            })
        };

        let committer = {
            let (pins, version, slot) =
                (Arc::clone(&pins), Arc::clone(&version), Arc::clone(&slot));
            model::thread::spawn(move || {
                // SC: the commit tick displaces generation 0.
                version.fetch_add(1, Ordering::SeqCst);
                // SC: the pin check deciding preserve-vs-recycle; the
                // mutation skips it and recycles unconditionally.
                if !preserve || pins.load(Ordering::SeqCst) == 0 {
                    // Recycling hands the displaced block to the slab: a
                    // fresh install lands in the same storage.
                    slot.on_write();
                }
            })
        };

        reader.join().unwrap();
        committer.join().unwrap();
    }
}

// ---------------------------------------------------------------------------
// RQC version handoff (crates/skiphash/src/rqc.rs)
// ---------------------------------------------------------------------------

// One packed state word so every protocol step is a single `fetch_update`
// transaction — the real RQC serializes these steps under the STM, and a
// CAS spin-lock transcription would livelock under the DFS preemption
// bound.  Layout: four 4-bit fields, then flags.
const RQC_CTR: u32 = 0; // version counter (ticks on range registration)
const RQC_Q1: u32 = 4; // Q1's registered version (0 = inactive)
const RQC_Q2: u32 = 8; // Q2's registered version (0 = inactive)
const RQC_UNLINK: u32 = 12; // counter value when the node was unlinked
const RQC_NIBBLE: usize = 0xf;
const RQC_UNLINKED: usize = 1 << 16;
const RQC_FREED: usize = 1 << 17;
const RQC_CUSTODY: u32 = 18; // 2 bits: 0 = none, 1 = Q1, 2 = Q2

fn rqc_field(s: usize, shift: u32) -> usize {
    (s >> shift) & RQC_NIBBLE
}

fn rqc_set(s: usize, shift: u32, v: usize) -> usize {
    debug_assert!(v <= RQC_NIBBLE);
    (s & !(RQC_NIBBLE << shift)) | (v << shift)
}

fn rqc_custody(s: usize) -> usize {
    (s >> RQC_CUSTODY) & 3
}

fn rqc_set_custody(s: usize, who: usize) -> usize {
    (s & !(3 << RQC_CUSTODY)) | (who << RQC_CUSTODY)
}

/// Register a range query: tick the counter, record the version.
fn rqc_register(state: &AtomicUsize, who: u32) {
    // SC: each protocol step is one atomic transaction on the state word.
    let _ = state.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |s| {
        let ctr = rqc_field(s, RQC_CTR) + 1;
        Some(rqc_set(rqc_set(s, RQC_CTR, ctr), who, ctr))
    });
}

/// Finish a range query (`Rqc::after_range`): deactivate, and if this query
/// holds custody of the deferred node, either hand it *backwards* to a
/// still-active older query or — when it is the oldest — unstitch it.
/// `correct_handoff = false` seeds the bug of unstitching unconditionally.
fn rqc_finish(state: &AtomicUsize, who: u32, correct_handoff: bool) {
    let my_custody = if who == RQC_Q1 { 1 } else { 2 };
    let other = if who == RQC_Q1 { RQC_Q2 } else { RQC_Q1 };
    let other_custody = if who == RQC_Q1 { 2 } else { 1 };
    // SC: each protocol step is one atomic transaction on the state word.
    let _ = state.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |s| {
        let my_ver = rqc_field(s, who);
        let other_ver = rqc_field(s, other);
        let mut next = rqc_set(s, who, 0);
        if rqc_custody(s) == my_custody {
            next = if correct_handoff && other_ver != 0 && other_ver < my_ver {
                // Predecessor handoff: an older query is still running and
                // its traversal may reach the deferred node.
                rqc_set_custody(next, other_custody)
            } else {
                // Oldest holder: safe to unstitch and free.
                rqc_set_custody(next, 0) | RQC_FREED
            };
        }
        Some(next)
    });
}

/// A transcription of the range-query-custody protocol from
/// `skiphash::rqc`: nodes unlinked while range queries are in flight are
/// *deferred* to the latest registered query, and a finishing query must
/// hand its deferred nodes backwards to a still-running older query
/// (`Rqc::after_range`'s predecessor handoff) rather than unstitching
/// them — the older query registered before the unlink, so its traversal
/// can still reach the node.
///
/// Three threads: Q1 (registers, *visits* the node, finishes), Q2
/// (registers and finishes quickly), and a remover that unlinks the node
/// and defers it to the latest active query.  With `handoff_ok = false`
/// the seeded bug makes Q2 unstitch on finish even though Q1 is older and
/// still running; Q1's visit then faults on the freed node and the checker
/// reports the custody violation with a replayable token.
pub fn rqc_handoff_body(handoff_ok: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let state = Arc::new(AtomicUsize::new(0));

        let q1 = {
            let state = Arc::clone(&state);
            model::thread::spawn(move || {
                rqc_register(&state, RQC_Q1);
                // Mid-query visit of the (possibly deferred) node.  The
                // node is reachable to this query iff it was unlinked at or
                // after this query's registered version; visiting it after
                // an unstitch is the use-after-free the custody protocol
                // exists to prevent.
                // SC: validated against the latest protocol state.
                let s = state.load(Ordering::SeqCst);
                let my_ver = rqc_field(s, RQC_Q1);
                let reachable = s & RQC_UNLINKED != 0 && my_ver <= rqc_field(s, RQC_UNLINK);
                assert!(
                    !(reachable && s & RQC_FREED != 0),
                    "custody violation: range query visited an unstitched node"
                );
                rqc_finish(&state, RQC_Q1, true);
            })
        };

        let q2 = {
            let state = Arc::clone(&state);
            model::thread::spawn(move || {
                rqc_register(&state, RQC_Q2);
                rqc_finish(&state, RQC_Q2, handoff_ok);
            })
        };

        let remover = {
            let state = Arc::clone(&state);
            model::thread::spawn(move || {
                // Unlink the node; defer to the latest active query, or
                // free immediately when no query can reach it (the
                // `can_unstitch_now` / `defer_to_latest` pair).
                // SC: each protocol step is one atomic transaction.
                let _ = state.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |s| {
                    let q1 = rqc_field(s, RQC_Q1);
                    let q2 = rqc_field(s, RQC_Q2);
                    let mut next = rqc_set(s, RQC_UNLINK, rqc_field(s, RQC_CTR)) | RQC_UNLINKED;
                    next = if q1 == 0 && q2 == 0 {
                        next | RQC_FREED
                    } else if q1 > q2 {
                        rqc_set_custody(next, 1)
                    } else {
                        rqc_set_custody(next, 2)
                    };
                    Some(next)
                });
            })
        };

        q1.join().unwrap();
        q2.join().unwrap();
        remover.join().unwrap();
    }
}

// ---------------------------------------------------------------------------
// Borrowed hops (crates/skiphash/src/node.rs `RawNode` + the range.rs scans)
// ---------------------------------------------------------------------------

/// A transcription of the borrowed-hop scan recipe onto the race detector:
/// the scan loops in `skiphash::range` chase tower links through `RawNode`
/// handles — pointer-only copies whose `unsafe fn node()` contract is
/// "dereference only inside the attempt whose epoch guard pinned you".
/// The pin is the *entire* safety argument: an unstitched node is retired,
/// and retirement frees it as soon as no guard from an earlier epoch is
/// live.  There is no per-hop recheck — the borrowed pointer is used after
/// the link that produced it may already point elsewhere.
///
/// State: `pins` (the epoch guard census), `link` (the predecessor's next
/// pointer: `1` = the node is stitched in, `2` = unstitched), `node_next`
/// (the borrowed node's *own* forward link, which the advance loop chases
/// before the payload is consumed), and a [`ShadowSlot`] for the node's
/// payload.  The **scanner** pins, borrows the link, hops through the
/// node's next pointer, and only then reads the payload — exactly the
/// borrow-then-dereference split the raw loops make, with the next-link
/// load sitting inside the window.  The **remover** unstitches the node
/// and frees it only when the guard census is empty (retirement deferring
/// to live guards); freeing is an install into recycled storage,
/// `on_write`.
///
/// With the pin (`pinned = true`) the remover either observes the
/// scanner's guard (and defers) or the all-SeqCst store-buffering shape
/// forces the scanner's borrow to see the unstitch (and skip) — no
/// schedule lets the free overlap the dereference.  Dropping the pin
/// (`pinned = false`) models dereferencing a `RawNode` outside its guard:
/// the remover's census check passes while the scanner still holds the
/// borrowed pointer, and the free races the payload read — a replayable
/// use-after-free token.
pub fn rawhop_scan_body(pinned: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let pins = Arc::new(AtomicUsize::new(0));
        let link = Arc::new(AtomicUsize::new(1));
        let node_next = Arc::new(AtomicUsize::new(0));
        let slot = Arc::new(ShadowSlot::new("rawhop.node"));

        let scanner = {
            let (pins, link, node_next, slot) = (
                Arc::clone(&pins),
                Arc::clone(&link),
                Arc::clone(&node_next),
                Arc::clone(&slot),
            );
            model::thread::spawn(move || {
                if pinned {
                    // SC: guard publication — the census bump must be
                    // ordered against the remover's census read (the
                    // store-buffering pair below).
                    pins.fetch_add(1, Ordering::SeqCst);
                }
                // The borrowed hop: read the link once, keep the handle.
                // SC: pairs with the unstitch store on the same location.
                let hop = link.load(Ordering::SeqCst);
                if hop == 1 {
                    // Advance through the borrowed node: the loop loads
                    // the node's own next pointer before its payload is
                    // consumed, so the dereference sits strictly after the
                    // borrow with nothing revalidated in between.
                    let _succ = node_next.load(Ordering::Acquire);
                    slot.on_read_confirmed();
                }
                if pinned {
                    // SC: guard drop hands custody back to retirement.
                    pins.fetch_sub(1, Ordering::SeqCst);
                }
            })
        };

        let remover = {
            let (pins, link, slot) = (Arc::clone(&pins), Arc::clone(&link), Arc::clone(&slot));
            model::thread::spawn(move || {
                // SC: unstitch — publish before the census read, the other
                // half of the store-buffering pair.
                link.store(2, Ordering::SeqCst);
                // SC: the retirement census; a live guard defers the free.
                if pins.load(Ordering::SeqCst) == 0 {
                    // Reclamation recycles the block: a fresh install
                    // lands in the same storage.
                    slot.on_write();
                }
            })
        };

        scanner.join().unwrap();
        remover.join().unwrap();
    }
}

/// Look up a model body by the name used in the replay corpus.
pub fn by_name(name: &str) -> Option<Box<dyn Fn() + Send + Sync>> {
    match name {
        "ebr-clean" => Some(Box::new(ebr_body(EbrFences::CLEAN))),
        "ebr-no-pin-fence" => Some(Box::new(ebr_body(EbrFences {
            pin: false,
            ..EbrFences::CLEAN
        }))),
        "ebr-no-seal-fence" => Some(Box::new(ebr_body(EbrFences {
            seal: false,
            ..EbrFences::CLEAN
        }))),
        "ebr-no-scan-fence" => Some(Box::new(ebr_body(EbrFences {
            scan: false,
            ..EbrFences::CLEAN
        }))),
        "orec-release-ok" => Some(Box::new(orec_publish_body(true))),
        "orec-release-tear" => Some(Box::new(orec_publish_body(false))),
        "snapshot-preserve" => Some(Box::new(snapshot_preserve_body(true))),
        "snapshot-no-preserve" => Some(Box::new(snapshot_preserve_body(false))),
        "rqc-handoff" => Some(Box::new(rqc_handoff_body(true))),
        "rqc-unstitch-early" => Some(Box::new(rqc_handoff_body(false))),
        "rawhop-pinned" => Some(Box::new(rawhop_scan_body(true))),
        "rawhop-unpinned" => Some(Box::new(rawhop_scan_body(false))),
        _ => None,
    }
}
