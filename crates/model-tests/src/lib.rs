//! Shared helpers for the model-checked protocol suites in `tests/`.
//!
//! This crate is **not** a default workspace member: it enables the `model`
//! feature of `skiphash_stm`, which swaps the `stm::sync` facade onto the
//! instrumented atomics from `skiphash-model`.  Run it explicitly:
//!
//! ```text
//! cargo test -p skiphash-model-tests              # clean suite
//! RUSTFLAGS="--cfg model_mutation" \
//!     cargo test -p skiphash-model-tests          # seeded-bug suite
//! ```
//!
//! The protocols modeled here (and the memory-ordering arguments they
//! check) are documented in `docs/VERIFICATION.md`.

/// Named model bodies shared between exploration tests and the replay
/// corpus, so a token checked into `corpus/` can name the model it replays
/// against.
pub mod registry;
