//! Model checks for the range-query-custody (RQC) version handoff.
//!
//! `skiphash::rqc` defers nodes unlinked mid-range-query to the *latest*
//! registered query and requires a finishing query to hand its deferred
//! nodes backwards to a still-running **older** query (whose traversal
//! registered before the unlink and can therefore still reach them); only
//! the oldest holder may unstitch.  The transcription in
//! `registry::rqc_handoff_body` packs the whole protocol state into one
//! word so each step is a single atomic transaction — the granularity the
//! STM gives the real code.
//!
//! Both polarities are parameterized and run in every build: the clean arm
//! exhausts with no counterexample, the seeded arm (finish unstitches
//! unconditionally) must produce the custody violation and replay from its
//! token.

use skiphash_model::{explore, replay, Options};
use skiphash_model_tests::registry::rqc_handoff_body;

fn opts() -> Options {
    Options::dfs().iterations(400_000).preemptions(Some(3))
}

/// With the predecessor handoff intact, no interleaving of two range
/// queries and a concurrent unlink ever visits an unstitched node.
#[test]
fn rqc_predecessor_handoff_is_safe() {
    let report = explore(&opts(), rqc_handoff_body(true));
    assert!(
        report.failure.is_none(),
        "correct handoff must never unstitch under an older in-flight query: {:?}",
        report.failure
    );
    assert!(
        report.exhausted,
        "expected bounded-exhaustive coverage, ran {} iterations",
        report.iterations
    );
}

/// A finishing query that unstitches instead of handing back to the older
/// in-flight query frees a node that query can still reach.
#[test]
fn rqc_early_unstitch_violates_custody() {
    let report = explore(&opts(), rqc_handoff_body(false));
    let failure = report
        .failure
        .expect("unconditional unstitch must produce a custody violation");
    assert!(
        failure.message.contains("custody violation"),
        "unexpected failure kind: {failure:?}"
    );
    let replayed = replay(&failure.token, rqc_handoff_body(false));
    assert!(
        replayed
            .failure
            .as_ref()
            .is_some_and(|f| f.message.contains("custody violation")),
        "token must replay to the same custody violation: {replayed:?}"
    );
}
