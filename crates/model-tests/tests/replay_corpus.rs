//! Replay-corpus regression test.
//!
//! Every counterexample the checker ever finds can be committed to
//! `crates/model-tests/corpus/` and is then re-executed verbatim on every
//! test run — a failing schedule is a permanent regression test, not a
//! one-off log line.
//!
//! Corpus format: any number of `*.token` files, each holding lines of
//! `<model-name> <replay-token>` (blank lines and `#` comments ignored).
//! Model names resolve through [`skiphash_model_tests::registry::by_name`].
//! An empty (or absent) corpus passes vacuously.
//!
//! To mint new entries after finding a counterexample, run the ignored
//! generator below and paste its output:
//!
//! ```text
//! cargo test -p skiphash-model-tests --test replay_corpus -- --ignored --nocapture
//! ```

use skiphash_model::MemoryModel;
use skiphash_model_tests::registry;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[test]
fn corpus_tokens_still_reproduce_their_counterexamples() {
    let dir = corpus_dir();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return; // no corpus directory: vacuously green
    };
    let mut checked = 0usize;
    let mut arm_entries = 0usize;
    for entry in entries {
        let path = entry.expect("readable corpus dir").path();
        if path.extension().is_none_or(|e| e != "token") {
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("unreadable corpus file {}: {e}", path.display()));
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let at = || format!("{}:{}", path.display(), lineno + 1);
            let (name, token) = line
                .split_once(char::is_whitespace)
                .unwrap_or_else(|| panic!("{}: expected `<model-name> <token>`", at()));
            let token = token.trim();
            // The header must decode on its own (shm1-era tokens are
            // rejected here, not silently replayed at the wrong strength),
            // and the exploration options it carries — including the
            // memory model — ride along into the replay below.
            let header = skiphash_model::token_meta(token)
                .unwrap_or_else(|| panic!("{}: malformed replay token", at()));
            arm_entries += usize::from(header.memory_model == MemoryModel::Arm);
            let body = registry::by_name(name)
                .unwrap_or_else(|| panic!("{}: unknown model `{name}`", at()));
            let report = skiphash_model::replay(token, body);
            let failure = report.failure.unwrap_or_else(|| {
                panic!(
                    "{}: corpus token for `{name}` no longer reproduces a failure — \
                     if the protocol was intentionally fixed, delete the entry",
                    at()
                )
            });
            assert!(
                !failure.message.contains("divergence") && !failure.message.contains("malformed"),
                "{}: corpus token for `{name}` no longer matches the model: {}",
                at(),
                failure.message
            );
            checked += 1;
        }
    }
    assert!(
        checked == 0 || arm_entries > 0,
        "corpus has {checked} entries but none found under MemoryModel::Arm — \
         the Arm header round-trip is part of what this test pins down"
    );
    println!("replayed {checked} corpus counterexample(s) ({arm_entries} at Arm strength)");
}

/// Mint fresh corpus lines for the known-bad registry models.  Ignored by
/// default; run with `--ignored --nocapture` and paste the output into a
/// `corpus/*.token` file.
#[test]
#[ignore = "generator: emits corpus lines, run with --nocapture"]
fn regenerate_corpus_tokens() {
    let base = || {
        skiphash_model::Options::dfs()
            .iterations(400_000)
            .preemptions(Some(3))
    };
    let models: &[(&str, skiphash_model::Options)] = &[
        ("ebr-no-pin-fence", base()),
        ("ebr-no-seal-fence", base()),
        // Only observable once RMWs stop being full barriers.
        ("ebr-no-scan-fence", base().memory(MemoryModel::Arm)),
        ("orec-release-tear", base()),
        ("snapshot-no-preserve", base()),
        ("rqc-unstitch-early", base()),
    ];
    for (name, opts) in models {
        let body = registry::by_name(name).expect("registered model");
        let report = skiphash_model::explore(opts, body);
        match report.failure {
            Some(f) => println!("{name} {}", f.token),
            None => println!("# {name}: no counterexample found (nothing to mint)"),
        }
    }
}
