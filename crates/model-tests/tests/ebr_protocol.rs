//! Model checks for the epoch-reclamation fence protocol.
//!
//! The vendored `crossbeam-epoch` shim's safety argument rests on SeqCst
//! fences at three sites (see the fence numbering in
//! `vendor/crossbeam-epoch/src/lib.rs`): pin-side (1), seal-side (2), and
//! the collector's scan fence pairing with (1).  The transcription in
//! `registry::ebr_body` models exactly that skeleton; these tests prove
//! both directions:
//!
//! * with all fences the checker finds **no** use-after-free (bounded
//!   exhaustively, with stale-load exploration on), and
//! * deleting any single fence yields a use-after-free counterexample —
//!   including the two *load→load* reorderings (pin/scan) that no amount
//!   of sequentially-consistent interleaving exploration could exhibit.
//!
//! The `model_mutation` build runs the seeded-bug halves only (the clean
//! halves assert the opposite of what a mutated build is for).

use skiphash_model::{explore, token_meta, MemoryModel, Options};
use skiphash_model_tests::registry::{ebr_body, EbrFences};

fn opts() -> Options {
    Options::dfs().iterations(400_000).preemptions(Some(3))
}

fn arm_opts() -> Options {
    opts().memory(MemoryModel::Arm)
}

#[cfg(not(model_mutation))]
#[test]
fn ebr_all_fences_clean() {
    let report = explore(&opts(), ebr_body(EbrFences::CLEAN));
    assert!(
        report.failure.is_none(),
        "clean EBR protocol must admit no use-after-free: {:?}",
        report.failure
    );
    assert!(
        report.exhausted,
        "expected bounded-exhaustive coverage, ran {} iterations",
        report.iterations
    );
}

fn expect_uaf(fences: EbrFences, what: &str) {
    let report = explore(&opts(), ebr_body(fences));
    let failure = report
        .failure
        .unwrap_or_else(|| panic!("deleting {what} must produce a use-after-free counterexample"));
    assert!(
        failure.message.contains("use-after-free"),
        "unexpected failure kind for {what}: {failure:?}"
    );
    // Every counterexample must be a deterministic regression test.
    let replayed = skiphash_model::replay(&failure.token, ebr_body(fences));
    assert!(
        replayed
            .failure
            .as_ref()
            .is_some_and(|f| f.message.contains("use-after-free")),
        "token must replay to the same use-after-free: {replayed:?}"
    );
}

#[test]
fn ebr_missing_pin_fence_found() {
    expect_uaf(
        EbrFences {
            pin: false,
            ..EbrFences::CLEAN
        },
        "fence (1) in pin()",
    );
}

#[test]
fn ebr_missing_seal_fence_found() {
    expect_uaf(
        EbrFences {
            seal: false,
            ..EbrFences::CLEAN
        },
        "fence (2) in seal_local()",
    );
}

/// The collector-side scan fence is the one fence whose deletion is NOT
/// observable at the model's x86 strength, and the checker must agree:
/// every RMW is a `lock`-prefixed full barrier on x86, so the advance CAS
/// between two scans floors the collector's view and the second scan is
/// guaranteed to see any pinned reader the first one missed (one advance
/// is always safe — `tag + 2` keeps garbage across it).  On x86 the fence
/// accordingly compiles to nothing; it exists for the C11 memory model /
/// weaker architectures, where the CAS provides no such floor.  This
/// pins down that model semantics (and documents the limitation — see
/// docs/VERIFICATION.md).
#[cfg(not(model_mutation))]
#[test]
fn ebr_missing_scan_fence_unobservable_at_x86_strength() {
    let report = explore(
        &opts(),
        ebr_body(EbrFences {
            scan: false,
            ..EbrFences::CLEAN
        }),
    );
    assert!(
        report.failure.is_none(),
        "scan-fence deletion should be masked by RMW full-barrier strength: {:?}",
        report.failure
    );
    assert!(report.exhausted, "ran {} iterations", report.iterations);
}

/// At AArch64 strength the negative result above **flips**: the advance
/// CAS is only `AcqRel`, which no longer floors the collector's next slot
/// scan, so with the scan fence deleted the second scan can still miss a
/// pinned reader, advance twice, and free garbage the reader holds.  The
/// checker must find that use-after-free under `MemoryModel::Arm` — the
/// scan fence is load-bearing exactly where the x86 model said it wasn't —
/// and its token must carry the Arm header so it replays at Arm strength.
#[test]
fn ebr_missing_scan_fence_found_under_arm() {
    let fences = EbrFences {
        scan: false,
        ..EbrFences::CLEAN
    };
    let report = explore(&arm_opts(), ebr_body(fences));
    let failure = report
        .failure
        .expect("scan-fence deletion must be observable once RMWs stop being full barriers");
    assert!(
        failure.message.contains("use-after-free"),
        "unexpected failure kind: {failure:?}"
    );
    let meta = token_meta(&failure.token).expect("token must carry a header");
    assert_eq!(meta.memory_model, MemoryModel::Arm);
    let replayed = skiphash_model::replay(&failure.token, ebr_body(fences));
    assert!(
        replayed
            .failure
            .as_ref()
            .is_some_and(|f| f.message.contains("use-after-free")),
        "Arm token must replay to the same use-after-free: {replayed:?}"
    );
}

/// The full fence protocol stays clean under Arm too: SC fences keep their
/// full-barrier strength in both memory modes, so weakening only the RMWs
/// must not open any hole the fences were placed to close.
#[cfg(not(model_mutation))]
#[test]
fn ebr_all_fences_clean_under_arm() {
    let report = explore(&arm_opts(), ebr_body(EbrFences::CLEAN));
    assert!(
        report.failure.is_none(),
        "clean EBR protocol must stay safe at Arm strength: {:?}",
        report.failure
    );
    assert!(report.exhausted, "ran {} iterations", report.iterations);
}
