//! Race-detector checks for the two copy-on-write custody protocols.
//!
//! Unlike the seeded-bug suites gated on `model_mutation`, both polarities
//! here are *parameterized* transcriptions (see `registry`): the clean arm
//! proves the shipped ordering admits no data race over the exhausted
//! schedule space, and the broken arm proves the detector actually fires —
//! with a counterexample that names the location and replays from its
//! token.  Both arms run in every build of this crate.

use skiphash_model::{explore, replay, token_meta, MemoryModel, Options};
use skiphash_model_tests::registry::{orec_publish_body, snapshot_preserve_body};

fn opts() -> Options {
    Options::dfs().iterations(400_000).preemptions(Some(3))
}

/// The shipped orec unlock is a `Release` store: a reader validating at
/// the post-commit version is ordered after the payload install, so the
/// detector must stay quiet — exhaustively.
#[test]
fn orec_release_publish_is_race_free() {
    let report = explore(&opts(), orec_publish_body(true));
    assert!(
        report.failure.is_none(),
        "Release unlock must order installs before validated reads: {:?}",
        report.failure
    );
    assert!(
        report.exhausted,
        "expected bounded-exhaustive coverage, ran {} iterations",
        report.iterations
    );
}

/// Tearing the unlock down to `Relaxed` lets a reader validate at the new
/// version while keeping the displaced payload generation — a data race on
/// the payload slot, reported with a replayable token.
#[test]
fn orec_release_tear_is_detected_as_data_race() {
    let report = explore(&opts(), orec_publish_body(false));
    let failure = report
        .failure
        .expect("Relaxed unlock must admit a racy validated read");
    assert!(
        failure.message.contains("data race on `tcell.payload`"),
        "unexpected failure kind: {failure:?}"
    );
    let meta = token_meta(&failure.token).expect("token must carry a header");
    assert_eq!(meta.memory_model, MemoryModel::X86);
    let replayed = replay(&failure.token, orec_publish_body(false));
    assert!(
        replayed
            .failure
            .as_ref()
            .is_some_and(|f| f.message.contains("data race on `tcell.payload`")),
        "token must replay to the same race: {replayed:?}"
    );
}

/// The shipped commit path checks the pin count before recycling a
/// displaced payload; a live pin keeps the block out of the slab, so no
/// pinned read ever overlaps a fresh install.
#[test]
fn snapshot_preserve_is_race_free() {
    let report = explore(&opts(), snapshot_preserve_body(true));
    assert!(
        report.failure.is_none(),
        "pin check must keep recycling away from pinned readers: {:?}",
        report.failure
    );
    assert!(
        report.exhausted,
        "expected bounded-exhaustive coverage, ran {} iterations",
        report.iterations
    );
}

/// Skipping the pin check recycles the displaced block under a live pin:
/// the pinned read races with the next install into the same storage.
#[test]
fn snapshot_preserve_skip_is_detected_as_data_race() {
    let report = explore(&opts(), snapshot_preserve_body(false));
    let failure = report
        .failure
        .expect("skipping the pin check must race with a pinned reader");
    assert!(
        failure.message.contains("data race on `snapshot.gen0`"),
        "unexpected failure kind: {failure:?}"
    );
    let replayed = replay(&failure.token, snapshot_preserve_body(false));
    assert!(
        replayed
            .failure
            .as_ref()
            .is_some_and(|f| f.message.contains("data race on `snapshot.gen0`")),
        "token must replay to the same race: {replayed:?}"
    );
}
