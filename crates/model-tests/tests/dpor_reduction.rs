//! Partial-order-reduction effectiveness on a protocol-shaped model.
//!
//! The model mirrors the paper's §4.5 deferral-buffer flush: four workers
//! each mutate *private* per-thread state (their deferral slots) and then
//! publish through one shared counter.  Private steps commute, so plain
//! DFS wastes almost all of its iterations on orderings that differ only
//! in the interleaving of independent transitions; sleep-set DPOR
//! (`Options::dpor`) must prune them.
//!
//! The bar is quantitative and counts *explored* schedules — full
//! executions, i.e. iterations minus the pruned ones, which abort at their
//! first sleeping transition without exploring anything.  DPOR must
//! exhaust the model in at most 1/5th of the schedules a plain DFS needs:
//! the plain run is given 5x DPOR's explored count and must still fail to
//! finish, proving the >=5x reduction claimed in docs/VERIFICATION.md for
//! 4-thread protocol models (measured: ~30x explored-state reduction).

use skiphash_model::atomic::{AtomicUsize, Ordering};
use skiphash_model::{explore, Options};
use std::sync::Arc;

const WORKERS: usize = 4;

fn deferral_flush_body() -> impl Fn() + Send + Sync + 'static {
    || {
        let slots: Vec<_> = (0..WORKERS)
            .map(|_| Arc::new(AtomicUsize::new(0)))
            .collect();
        let flushed = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = slots
            .iter()
            .map(|slot| {
                let slot = Arc::clone(slot);
                let flushed = Arc::clone(&flushed);
                skiphash_model::thread::spawn(move || {
                    // Buffer two deferred operations in the private slot...
                    slot.store(1, Ordering::Relaxed);
                    slot.store(2, Ordering::Relaxed);
                    // SC: ...then publish the flush on the shared counter.
                    flushed.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        // SC: post-join asserts read the final state in the total order.
        assert_eq!(flushed.load(Ordering::SeqCst), WORKERS, "lost flush");
        for slot in &slots {
            assert_eq!(slot.load(Ordering::SeqCst), 2, "torn deferral slot");
        }
    }
}

#[test]
fn dpor_gives_5x_reduction_on_4_thread_deferral_flush() {
    let dpor = explore(
        &Options::dfs().iterations(2_000_000).dpor(true),
        deferral_flush_body(),
    );
    assert!(dpor.failure.is_none(), "{:?}", dpor.failure);
    assert!(
        dpor.exhausted,
        "DPOR must exhaust the model, ran {} iterations",
        dpor.iterations
    );
    assert!(dpor.pruned > 0, "commuting slot stores must be pruned");

    // Give plain DFS five times the schedules DPOR actually *explored*; it
    // must still fail to exhaust the schedule space.
    let explored = dpor.iterations - dpor.pruned;
    let budget = explored * 5;
    let plain = explore(&Options::dfs().iterations(budget), deferral_flush_body());
    assert!(plain.failure.is_none(), "{:?}", plain.failure);
    assert!(
        !plain.exhausted,
        "plain DFS exhausted within {budget} iterations — DPOR reduction is below 5x \
         (DPOR explored {explored} schedules, plus {} pruned)",
        dpor.pruned
    );
}
