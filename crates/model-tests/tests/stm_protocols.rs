//! Model checks for the STM's own synchronization protocols, driven through
//! the **real** `skiphash_stm` code compiled with `--features model` (every
//! atomic in `stm::sync` is a schedule point).
//!
//! Each protocol here reproduces a bug this repo actually had and fixed:
//!
//! * the TL2 acquire rule in `Txn::write` (the lost-update fix from the
//!   orec PR),
//! * `SampledClock::tick`'s claim-vs-fresh-tick distinction (the CAS-adopt
//!   tear fix from the clock PR),
//! * the pin-publish-before-clock-sample ordering in `SnapshotPin::new`
//!   (the custody protocol from the MVCC snapshot PR).
//!
//! The clean build (`cfg(not(model_mutation))`) asserts the shipped code
//! admits no counterexample within the budget.  The mutation build
//! (`RUSTFLAGS="--cfg model_mutation"`) re-seeds each original bug inside
//! `skiphash_stm` itself and asserts the checker *finds* it — proving the
//! model tests have teeth, not just green lights.
//!
//! These bodies run full `Stm::run` commits, which mix instrumented facade
//! atomics with real ones (`AtomicPtr` payload pointers, the epoch shim, the
//! scratch allocator).  Stale-load exploration is therefore OFF
//! (`.staleness(false)`): the hybrid would report unreachable stale reads
//! through the uninstrumented pointers.  All three seeded bugs are pure
//! *interleaving* races, observable at sequentially-consistent strength.

use skiphash_model::{explore, Failure, Options, Report};
use skiphash_stm::clock::{ClockSource, SampledClock};
use skiphash_stm::{Stm, TCell};
use std::sync::{Arc, Mutex};

/// Bounded-exhaustive search for the small clock model.
fn dfs_opts() -> Options {
    Options::dfs().iterations(200_000).preemptions(Some(3))
}

/// Randomized-priority search for the full-`Stm::run` bodies (their schedule
/// space is far beyond exhaustive reach; PCT gives probabilistic coverage
/// with a fixed seed for reproducibility).
fn pct_opts(seed: u64) -> Options {
    Options::pct(seed).iterations(600).staleness(false)
}

#[cfg_attr(not(model_mutation), allow(dead_code))]
fn expect_counterexample(report: Report, needle: &str, what: &str) -> Failure {
    let failure = report
        .failure
        .unwrap_or_else(|| panic!("{what}: expected a counterexample, found none"));
    assert!(
        failure.message.contains(needle),
        "{what}: unexpected failure kind: {failure:?}"
    );
    failure
}

// ---------------------------------------------------------------------------
// TL2 acquire rule (orec PR): write-acquiring a location whose version is
// newer than the attempt's read version must abort, or a concurrent update
// is silently lost (commit validation skips self-owned orecs).
// ---------------------------------------------------------------------------

fn lost_update_body() -> impl Fn() + Send + Sync + 'static {
    || {
        let stm = Arc::new(Stm::new());
        let cell = Arc::new(TCell::new(0u64));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let stm = Arc::clone(&stm);
                let cell = Arc::clone(&cell);
                skiphash_model::thread::spawn(move || {
                    stm.run(|tx| {
                        let v = cell.read(tx)?;
                        cell.write(tx, v + 1)
                    });
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let total = cell.load_atomic();
        assert_eq!(total, 2, "lost update: two increments yielded {total}");
    }
}

#[cfg(not(model_mutation))]
#[test]
fn tl2_acquire_rule_admits_no_lost_update() {
    let report = explore(&pct_opts(0x7e57_0001), lost_update_body());
    assert!(
        report.failure.is_none(),
        "shipped TL2 acquire rule must not lose updates: {:?}",
        report.failure
    );
}

#[cfg(model_mutation)]
#[test]
fn tl2_acquire_rule_reverted_loses_update() {
    let failure = expect_counterexample(
        explore(&pct_opts(0x7e57_0001), lost_update_body()),
        "lost update",
        "reverted TL2 acquire rule",
    );
    let replayed = skiphash_model::replay(&failure.token, lost_update_body());
    assert!(
        replayed
            .failure
            .as_ref()
            .is_some_and(|f| f.message.contains("lost update")),
        "token must replay to the same lost update: {replayed:?}"
    );
}

// ---------------------------------------------------------------------------
// SampledClock tick (clock PR): a loser of the rv -> rv + 1 claim must take
// a *fresh* tick, never adopt the winner's value — commit stamps are unique.
// ---------------------------------------------------------------------------

fn clock_tick_body() -> impl Fn() + Send + Sync + 'static {
    || {
        let clock = Arc::new(SampledClock::new());
        let stamps = Arc::new(Mutex::new(Vec::new()));
        let committers: Vec<_> = (0..2)
            .map(|_| {
                let clock = Arc::clone(&clock);
                let stamps = Arc::clone(&stamps);
                skiphash_model::thread::spawn(move || {
                    let rv = clock.now();
                    let stamp = clock.tick(rv);
                    stamps.lock().unwrap().push((rv, stamp));
                })
            })
            .collect();
        for c in committers {
            c.join().unwrap();
        }
        let stamps = stamps.lock().unwrap();
        let [(rv_a, a), (rv_b, b)] = stamps[..] else {
            unreachable!("exactly two committers");
        };
        assert!(
            a.wv > rv_a && b.wv > rv_b,
            "commit stamp not newer than its read sample: {stamps:?}"
        );
        assert_ne!(
            a.wv, b.wv,
            "duplicate commit stamp: a torn reader could admit a \
             mid-flight writer as already committed"
        );
    }
}

#[cfg(not(model_mutation))]
#[test]
fn sampled_clock_stamps_are_unique() {
    let report = explore(&dfs_opts(), clock_tick_body());
    assert!(
        report.failure.is_none(),
        "shipped SampledClock must hand out unique stamps: {:?}",
        report.failure
    );
    assert!(
        report.exhausted,
        "expected bounded-exhaustive coverage, ran {} iterations",
        report.iterations
    );
}

#[cfg(model_mutation)]
#[test]
fn sampled_clock_cas_adopt_tears() {
    let failure = expect_counterexample(
        explore(&dfs_opts(), clock_tick_body()),
        "duplicate commit stamp",
        "CAS-adopt SampledClock",
    );
    let replayed = skiphash_model::replay(&failure.token, clock_tick_body());
    assert!(
        replayed
            .failure
            .as_ref()
            .is_some_and(|f| f.message.contains("duplicate commit stamp")),
        "token must replay to the same duplicate stamp: {replayed:?}"
    );
}

// ---------------------------------------------------------------------------
// Snapshot pin custody (MVCC PR): the live-count raise must precede the
// clock sample, so a committer that observed `live() == 0` necessarily
// stamped *after* the pin's version and displaces nothing the pin can reach.
// Mutated builds raise the count after the sample; a commit ticking in
// between skips preservation and the pinned read finds no history.
// ---------------------------------------------------------------------------

fn snapshot_pin_body() -> impl Fn() + Send + Sync + 'static {
    || {
        let stm = Arc::new(Stm::new());
        let cell = Arc::new(TCell::new(0u64));

        let reader = {
            let stm = Arc::clone(&stm);
            let cell = Arc::clone(&cell);
            skiphash_model::thread::spawn(move || {
                let pin = stm.pin_snapshot();
                // Resolves at the pinned version or panics "found no
                // history" when the displacing commit skipped custody —
                // that panic is the counterexample the mutation seeds.
                let v = cell.read_pinned_with(&pin, |x| *x);
                assert!(v == 0 || v == 7, "impossible snapshot value {v}");
            })
        };
        let writer = {
            let stm = Arc::clone(&stm);
            let cell = Arc::clone(&cell);
            skiphash_model::thread::spawn(move || {
                stm.run(|tx| cell.write(tx, 7u64));
            })
        };
        reader.join().unwrap();
        writer.join().unwrap();
    }
}

#[cfg(not(model_mutation))]
#[test]
fn snapshot_pin_always_resolves() {
    let report = explore(&pct_opts(0x7e57_0003), snapshot_pin_body());
    assert!(
        report.failure.is_none(),
        "shipped pin protocol must always preserve reachable payloads: {:?}",
        report.failure
    );
}

#[cfg(model_mutation)]
#[test]
fn snapshot_pin_raise_after_sample_loses_custody() {
    let failure = expect_counterexample(
        explore(&pct_opts(0x7e57_0003), snapshot_pin_body()),
        "found no history",
        "late live-count raise",
    );
    let replayed = skiphash_model::replay(&failure.token, snapshot_pin_body());
    assert!(
        replayed
            .failure
            .as_ref()
            .is_some_and(|f| f.message.contains("found no history")),
        "token must replay to the same missing-history panic: {replayed:?}"
    );
}
