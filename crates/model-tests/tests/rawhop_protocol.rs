//! Model checks for the borrowed-hop dereference window.
//!
//! The raw scan loops in `skiphash::range` hop tower links through
//! `RawNode` handles: a link is loaded once and the resulting pointer is
//! dereferenced *later*, with nothing revalidated in between.  The only
//! thing standing between that dereference and a concurrent unstitch +
//! reclamation is the attempt's pinned epoch guard — exactly the contract
//! written on `RawNode::node()`.  `registry::rawhop_scan_body` transcribes
//! that borrow-then-dereference split against an unstitching remover whose
//! retirement defers to the guard census.
//!
//! Both polarities are parameterized and run in every build: the pinned
//! arm exhausts with no counterexample (the guard census and the
//! store-buffering pair close every window), the unpinned arm — a hop
//! dereferenced outside its guard — must produce the use-after-free as a
//! detected data race and replay from its token.

use skiphash_model::{explore, replay, Options};
use skiphash_model_tests::registry::rawhop_scan_body;

fn opts() -> Options {
    Options::dfs().iterations(400_000).preemptions(Some(3))
}

/// Under the guard, no interleaving of a borrowed hop and a concurrent
/// unstitch-and-retire ever frees the node mid-dereference.
#[test]
fn pinned_borrowed_hop_is_safe() {
    let report = explore(&opts(), rawhop_scan_body(true));
    assert!(
        report.failure.is_none(),
        "a pinned guard must keep reclamation off every borrowed hop: {:?}",
        report.failure
    );
    assert!(
        report.exhausted,
        "expected bounded-exhaustive coverage, ran {} iterations",
        report.iterations
    );
}

/// Dereferencing a borrowed hop outside the guard lets retirement recycle
/// the node between the borrow and the payload read.
#[test]
fn unpinned_hop_is_detected_as_use_after_free() {
    let report = explore(&opts(), rawhop_scan_body(false));
    let failure = report
        .failure
        .expect("an unguarded hop must race with reclamation");
    assert!(
        failure.message.contains("data race on `rawhop.node`"),
        "unexpected failure kind: {failure:?}"
    );
    let replayed = replay(&failure.token, rawhop_scan_body(false));
    assert!(
        replayed
            .failure
            .as_ref()
            .is_some_and(|f| f.message.contains("data race on `rawhop.node`")),
        "token must replay to the same race: {replayed:?}"
    );
}
