//! Instrumented atomic types.
//!
//! Each type wraps the corresponding `std::sync::atomic` type.  Outside a
//! model execution every operation forwards to the real atomic verbatim, so
//! code built with the `model` feature but running normally (unit tests,
//! setup code) behaves exactly like std.  Inside a model execution (under
//! [`crate::explore`]) every operation becomes a schedule point against the
//! engine's weak-memory state, and the real atomic is kept write-through
//! coherent with the modification-order head so mixed instrumented /
//! uninstrumented code agrees on "latest".
//!
//! Values are tracked as `u64` bit patterns; each wrapper converts at the
//! boundary.  `AtomicPtr` is intentionally *not* modeled — pointer-valued
//! protocol state in the modeled paths is either protected by the orec
//! protocol itself or exercised via the epoch-shim transcription in
//! `crates/model-tests`.

pub use std::sync::atomic::Ordering;

use crate::exec;

/// Trait mapping a primitive to/from the engine's `u64` bit representation.
trait Bits: Copy {
    fn to_bits(self) -> u64;
    fn from_bits(b: u64) -> Self;
}

impl Bits for u64 {
    fn to_bits(self) -> u64 {
        self
    }
    fn from_bits(b: u64) -> Self {
        b
    }
}
impl Bits for usize {
    fn to_bits(self) -> u64 {
        self as u64
    }
    fn from_bits(b: u64) -> Self {
        b as usize
    }
}
impl Bits for u32 {
    fn to_bits(self) -> u64 {
        u64::from(self)
    }
    fn from_bits(b: u64) -> Self {
        b as u32
    }
}
impl Bits for i64 {
    fn to_bits(self) -> u64 {
        self as u64
    }
    fn from_bits(b: u64) -> Self {
        b as i64
    }
}
impl Bits for bool {
    fn to_bits(self) -> u64 {
        u64::from(self)
    }
    fn from_bits(b: u64) -> Self {
        b != 0
    }
}

/// An atomic fence.  A schedule point + SC publish/floor under the model;
/// `std::sync::atomic::fence` otherwise.
pub fn fence(order: Ordering) {
    match exec::ctx() {
        Some(ctx) => ctx.shared.op_fence(ctx.task, order),
        None => std::sync::atomic::fence(order),
    }
}

macro_rules! model_atomic {
    ($(#[$meta:meta])* $name:ident, $std:ty, $prim:ty) => {
        $(#[$meta])*
        pub struct $name {
            real: $std,
            /// Packed `(exec_id << 32) | (loc + 1)` location cache; 0 = unset.
            /// Stale entries from earlier executions self-invalidate because
            /// the exec id no longer matches.
            cache: std::sync::atomic::AtomicU64,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(v: $prim) -> Self {
                Self {
                    real: <$std>::new(v),
                    cache: std::sync::atomic::AtomicU64::new(0),
                }
            }

            /// Resolve (registering on first touch) this atomic's location in
            /// the current model execution.
            fn loc(&self, ctx: &exec::TaskCtx) -> usize {
                let c = self.cache.load(Ordering::Relaxed);
                if c != 0 && (c >> 32) == (ctx.shared.exec_id & 0xffff_ffff) {
                    return (c & 0xffff_ffff) as usize - 1;
                }
                let initial = Bits::to_bits(self.real.load(Ordering::Relaxed));
                let loc = ctx.shared.register_loc(initial);
                self.cache.store(
                    ((ctx.shared.exec_id & 0xffff_ffff) << 32) | (loc as u64 + 1),
                    Ordering::Relaxed,
                );
                loc
            }

            /// Loads a value from the atomic.
            pub fn load(&self, order: Ordering) -> $prim {
                match exec::ctx() {
                    Some(ctx) => {
                        let loc = self.loc(&ctx);
                        Bits::from_bits(ctx.shared.op_load(ctx.task, loc, order))
                    }
                    None => self.real.load(order),
                }
            }

            /// Stores a value into the atomic.
            pub fn store(&self, val: $prim, order: Ordering) {
                match exec::ctx() {
                    Some(ctx) => {
                        let loc = self.loc(&ctx);
                        ctx.shared.op_store(ctx.task, loc, Bits::to_bits(val), order);
                        self.real.store(val, Ordering::SeqCst);
                    }
                    None => self.real.store(val, order),
                }
            }

            /// Stores a value, returning the previous value.
            pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                match exec::ctx() {
                    Some(ctx) => {
                        let loc = self.loc(&ctx);
                        let (read, _, latest) = ctx
                            .shared
                            .op_rmw(ctx.task, loc, order, order, |_| Some(Bits::to_bits(val)));
                        self.real.store(Bits::from_bits(latest), Ordering::SeqCst);
                        Bits::from_bits(read)
                    }
                    None => self.real.swap(val, order),
                }
            }

            /// Compare-and-exchange; on success returns `Ok(previous)`, on
            /// failure `Err(actual)`.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match exec::ctx() {
                    Some(ctx) => {
                        let loc = self.loc(&ctx);
                        let cur_bits = Bits::to_bits(current);
                        let (read, applied, latest) =
                            ctx.shared.op_rmw(ctx.task, loc, success, failure, |v| {
                                (v == cur_bits).then_some(Bits::to_bits(new))
                            });
                        self.real.store(Bits::from_bits(latest), Ordering::SeqCst);
                        if applied {
                            Ok(Bits::from_bits(read))
                        } else {
                            Err(Bits::from_bits(read))
                        }
                    }
                    None => self.real.compare_exchange(current, new, success, failure),
                }
            }

            /// Weak compare-and-exchange.  Modeled as strong (no spurious
            /// failures): strictly fewer behaviors, never a false positive.
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match exec::ctx() {
                    Some(_) => self.compare_exchange(current, new, success, failure),
                    None => self
                        .real
                        .compare_exchange_weak(current, new, success, failure),
                }
            }

            /// Returns a mutable reference to the underlying value.
            pub fn get_mut(&mut self) -> &mut $prim {
                self.real.get_mut()
            }

            /// Consumes the atomic and returns the contained value.
            pub fn into_inner(self) -> $prim {
                self.real.into_inner()
            }

            fn model_fetch(
                &self,
                order: Ordering,
                f: impl Fn($prim) -> $prim,
            ) -> Option<$prim> {
                let ctx = exec::ctx()?;
                let loc = self.loc(&ctx);
                let (read, _, latest) = ctx.shared.op_rmw(ctx.task, loc, order, order, |v| {
                    Some(Bits::to_bits(f(Bits::from_bits(v))))
                });
                self.real.store(Bits::from_bits(latest), Ordering::SeqCst);
                Some(Bits::from_bits(read))
            }

            /// Fetch-and-update with a fallible closure; `Ok(previous)` when
            /// `f` returned `Some(new)`, `Err(previous)` otherwise.  Modeled
            /// as a *single* RMW rather than std's CAS loop: the loop's
            /// retries only re-read values the single-RMW execution also
            /// explores, so behaviors are strictly fewer, never wrong —
            /// and transcription models get an atomic state transition
            /// they can lean on without spinning under DFS.
            pub fn fetch_update<F: FnMut($prim) -> Option<$prim>>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                mut f: F,
            ) -> Result<$prim, $prim> {
                match exec::ctx() {
                    Some(ctx) => {
                        let loc = self.loc(&ctx);
                        let (read, applied, latest) =
                            ctx.shared.op_rmw(ctx.task, loc, set_order, fetch_order, |v| {
                                f(Bits::from_bits(v)).map(Bits::to_bits)
                            });
                        self.real.store(Bits::from_bits(latest), Ordering::SeqCst);
                        if applied {
                            Ok(Bits::from_bits(read))
                        } else {
                            Err(Bits::from_bits(read))
                        }
                    }
                    None => self.real.fetch_update(set_order, fetch_order, f),
                }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // Reads the backing atomic (write-through coherent) without a
                // schedule point — Debug must not perturb the exploration.
                f.debug_tuple(stringify!($name))
                    .field(&self.real.load(Ordering::Relaxed))
                    .finish()
            }
        }

        impl From<$prim> for $name {
            fn from(v: $prim) -> Self {
                Self::new(v)
            }
        }
    };
}

macro_rules! model_atomic_int {
    ($name:ident, $std:ty, $prim:ty) => {
        impl $name {
            /// Adds to the current value, returning the previous value
            /// (wrapping on overflow).
            pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                self.model_fetch(order, |v| v.wrapping_add(val))
                    .unwrap_or_else(|| self.real.fetch_add(val, order))
            }

            /// Subtracts from the current value, returning the previous value
            /// (wrapping on overflow).
            pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                self.model_fetch(order, |v| v.wrapping_sub(val))
                    .unwrap_or_else(|| self.real.fetch_sub(val, order))
            }

            /// Bitwise AND, returning the previous value.
            pub fn fetch_and(&self, val: $prim, order: Ordering) -> $prim {
                self.model_fetch(order, |v| v & val)
                    .unwrap_or_else(|| self.real.fetch_and(val, order))
            }

            /// Bitwise OR, returning the previous value.
            pub fn fetch_or(&self, val: $prim, order: Ordering) -> $prim {
                self.model_fetch(order, |v| v | val)
                    .unwrap_or_else(|| self.real.fetch_or(val, order))
            }

            /// Bitwise XOR, returning the previous value.
            pub fn fetch_xor(&self, val: $prim, order: Ordering) -> $prim {
                self.model_fetch(order, |v| v ^ val)
                    .unwrap_or_else(|| self.real.fetch_xor(val, order))
            }

            /// Maximum of the current and given value, returning the previous
            /// value.
            pub fn fetch_max(&self, val: $prim, order: Ordering) -> $prim {
                self.model_fetch(order, |v| v.max(val))
                    .unwrap_or_else(|| self.real.fetch_max(val, order))
            }

            /// Minimum of the current and given value, returning the previous
            /// value.
            pub fn fetch_min(&self, val: $prim, order: Ordering) -> $prim {
                self.model_fetch(order, |v| v.min(val))
                    .unwrap_or_else(|| self.real.fetch_min(val, order))
            }
        }
    };
}

model_atomic!(
    /// Model-aware drop-in for [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
model_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);

model_atomic!(
    /// Model-aware drop-in for [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
model_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

model_atomic!(
    /// Model-aware drop-in for [`std::sync::atomic::AtomicU32`].
    AtomicU32,
    std::sync::atomic::AtomicU32,
    u32
);
model_atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);

model_atomic!(
    /// Model-aware drop-in for [`std::sync::atomic::AtomicI64`].
    AtomicI64,
    std::sync::atomic::AtomicI64,
    i64
);
model_atomic_int!(AtomicI64, std::sync::atomic::AtomicI64, i64);

model_atomic!(
    /// Model-aware drop-in for [`std::sync::atomic::AtomicBool`].
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool
);

impl AtomicBool {
    /// Logical AND, returning the previous value.
    pub fn fetch_and(&self, val: bool, order: Ordering) -> bool {
        self.model_fetch(order, |v| v & val)
            .unwrap_or_else(|| self.real.fetch_and(val, order))
    }

    /// Logical OR, returning the previous value.
    pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
        self.model_fetch(order, |v| v | val)
            .unwrap_or_else(|| self.real.fetch_or(val, order))
    }
}
