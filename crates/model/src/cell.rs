//! Shadow-tracked non-atomic locations.
//!
//! Two flavors, both feeding the FastTrack detector in `crate::race`:
//!
//! * [`UnsyncCell<T>`] holds real data behind an `UnsafeCell` and checks
//!   **every** access: reads race with unpublished writes, writes race with
//!   unpublished writes *and* reads.  Every access is also a schedule
//!   point, so the explorer can interleave right before the racing access.
//!   This is the loom-style cell for transcription models of non-atomic
//!   protocol state.
//! * [`ShadowSlot`] holds no data — it is a detector-only stand-in for a
//!   copy-on-write payload slot (a `TCell`'s boxed value).  TL2 readers
//!   are invisible and may overlap a writer's install of a *fresh*
//!   allocation, so reads are only checked once *validated*
//!   ([`ShadowSlot::on_read_confirmed`], after the orec recheck passes) and
//!   writes check prior writes only.  Slot hooks are deliberately **not**
//!   schedule points: the real crate's interleaving surface is its atomics,
//!   and adding decisions here would invalidate existing replay tokens.
//!
//! Outside a model execution both types degrade to plain storage / no-ops.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};

use crate::exec;

/// Resolve (registering on first touch) a shadow location id, mirroring the
/// per-atomic location cache in `atomic.rs`: packed
/// `(exec_id << 32) | (sid + 1)`, 0 = unset; entries from earlier
/// executions self-invalidate because the exec id no longer matches.
fn shadow_id(cache: &StdAtomicU64, name: &'static str, ctx: &exec::TaskCtx) -> usize {
    let c = cache.load(StdOrdering::Relaxed);
    if c != 0 && (c >> 32) == (ctx.shared.exec_id & 0xffff_ffff) {
        return (c & 0xffff_ffff) as usize - 1;
    }
    let sid = ctx.shared.register_shadow(name);
    cache.store(
        ((ctx.shared.exec_id & 0xffff_ffff) << 32) | (sid as u64 + 1),
        StdOrdering::Relaxed,
    );
    sid
}

/// A non-atomic memory location whose accesses are happens-before checked
/// by the model's race detector.
///
/// Inside a model execution every access is a schedule point and any pair
/// of accesses (at least one a write) not ordered by the instrumented
/// atomics is reported as a data race with a replay token.  Outside a model
/// execution this is a plain `UnsafeCell`; the caller must provide the
/// exclusion the shadowed protocol claims to provide (same contract as the
/// non-model code the cell stands in for).
pub struct UnsyncCell<T> {
    name: &'static str,
    cache: StdAtomicU64,
    value: UnsafeCell<T>,
}

// SAFETY: sending the cell moves the owned `T`, which is `Send`; no
// references escape the accessor closures.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for UnsyncCell<T> {}

// SAFETY: inside a model execution exactly one task holds the scheduler
// token at any time and every access goes through a schedule point, so
// accesses are serialized at runtime (and unsynchronized pairs are
// *reported*, not miscompiled — the data itself is never concurrently
// touched).  Outside a model execution the type provides no synchronization
// and the caller must uphold exclusion, which is the documented contract.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for UnsyncCell<T> {}

impl<T> UnsyncCell<T> {
    /// Create a cell; `name` labels race reports.
    pub const fn new(name: &'static str, value: T) -> Self {
        UnsyncCell {
            name,
            cache: StdAtomicU64::new(0),
            value: UnsafeCell::new(value),
        }
    }

    /// Read access: run `f` on a shared reference to the value.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        if let Some(ctx) = exec::ctx() {
            let sid = shadow_id(&self.cache, self.name, &ctx);
            ctx.shared.op_cell_read(ctx.task, sid);
        }
        // SAFETY: under the model the scheduler token serializes this deref
        // with all other accesses (see the `Sync` impl); outside the model
        // the caller guarantees exclusion.
        #[allow(unsafe_code)]
        f(unsafe { &*self.value.get() })
    }

    /// Write access: run `f` on an exclusive reference to the value.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        if let Some(ctx) = exec::ctx() {
            let sid = shadow_id(&self.cache, self.name, &ctx);
            ctx.shared.op_cell_write(ctx.task, sid);
        }
        // SAFETY: as in `with`; the token (or the caller's exclusion
        // outside the model) guarantees no aliasing access is live.
        #[allow(unsafe_code)]
        f(unsafe { &mut *self.value.get() })
    }

    /// Read the value (copy types).
    pub fn get(&self) -> T
    where
        T: Copy,
    {
        self.with(|v| *v)
    }

    /// Overwrite the value.
    pub fn set(&self, v: T) {
        self.with_mut(|slot| *slot = v);
    }

    /// Exclusive access through `&mut self` needs no tracking.
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }

    /// Consume the cell and return the value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for UnsyncCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Debug must not perturb the exploration (no schedule point, no
        // detector event): show only the label.
        f.debug_struct("UnsyncCell")
            .field("name", &self.name)
            .finish()
    }
}

/// Detector-only shadow for a copy-on-write payload slot.
///
/// Holds no data; the shadowed storage lives in the real structure (a
/// `TCell`'s boxed payload).  [`ShadowSlot::on_write`] marks the install of
/// a fresh allocation and checks it is ordered after the previous install;
/// [`ShadowSlot::on_read_confirmed`] marks a *validated* read (call it only
/// after the protocol's recheck passes) and checks the read is ordered
/// after the write that produced the value it kept.  Unvalidated overlap —
/// TL2's invisible-reader case — is deliberately not an error.  Neither
/// hook is a schedule point, so instrumenting a structure with slots does
/// not change its decision stream or invalidate replay tokens.
pub struct ShadowSlot {
    name: &'static str,
    cache: StdAtomicU64,
}

impl ShadowSlot {
    /// Create a slot; `name` labels race reports.
    pub const fn new(name: &'static str) -> Self {
        ShadowSlot {
            name,
            cache: StdAtomicU64::new(0),
        }
    }

    /// Record the install of a fresh value into the shadowed slot.
    pub fn on_write(&self) {
        if let Some(ctx) = exec::ctx() {
            let sid = shadow_id(&self.cache, self.name, &ctx);
            ctx.shared.op_slot_write(ctx.task, sid);
        }
    }

    /// Record a validated read of the shadowed slot.
    pub fn on_read_confirmed(&self) {
        if let Some(ctx) = exec::ctx() {
            let sid = shadow_id(&self.cache, self.name, &ctx);
            ctx.shared.op_slot_read_confirmed(ctx.task, sid);
        }
    }
}

impl std::fmt::Debug for ShadowSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShadowSlot")
            .field("name", &self.name)
            .finish()
    }
}
