//! FastTrack-style happens-before race detection over shadow locations.
//!
//! A *shadow location* stands for one non-atomic memory location (an
//! [`crate::cell::UnsyncCell`]'s value, or the payload slot of a `TCell`
//! under the `stm::sync` facade).  Every access is stamped with the
//! accessing task's [`Epoch`] and checked against the location's history:
//!
//! * a **read** races with the last write unless that write's epoch is
//!   covered by the reader's clock (the write was published to the reader
//!   through a chain of release/acquire/SC edges on *instrumented*
//!   atomics);
//! * a **write** races with the last write the same way, and — for
//!   locations with visible readers — with any recorded read its clock
//!   does not cover.
//!
//! Per FastTrack, the common cases need only epoch comparisons (one `<=`),
//! and full read *sets* are kept only while a location is read-shared.
//! Model executions are tiny, so the "read set" is a plain per-task-deduped
//! vector rather than FastTrack's adaptive epoch-or-clock representation —
//! same algebra, simpler code.
//!
//! Copy-on-write slots (`TCell` payloads) opt out of the read-set half:
//! TL2 readers are *invisible* by design and writers install fresh
//! allocations instead of mutating in place, so "write after
//! unsynchronized read" is the protocol's normal optimistic case, not a
//! race.  What must hold — and what [`ShadowState::check_read`] enforces —
//! is that every *validated* read is happens-after the write that produced
//! the value it kept (the orec release edge), and that writes are totally
//! ordered (the orec acquire edge).

use crate::vclock::{Epoch, VClock};

/// One recorded access: who, at what local time, at which schedule step,
/// optionally with a captured stack.
#[derive(Clone, Debug)]
pub(crate) struct ShadowAccess {
    pub epoch: Epoch,
    pub step: usize,
    pub stack: Option<Box<str>>,
}

/// Detector state for one shadow location.
#[derive(Debug, Default)]
pub(crate) struct ShadowState {
    pub name: &'static str,
    /// Last write (FastTrack's `W_x` epoch, with provenance).
    pub write: Option<ShadowAccess>,
    /// Reads since the last write, deduped per task (newest kept).
    pub reads: Vec<ShadowAccess>,
}

/// A detected race: the two unsynchronized accesses, earliest first.
pub(crate) struct RaceReport {
    pub prior_kind: &'static str,
    pub prior: ShadowAccess,
}

impl ShadowState {
    /// Check a read by a task whose clock is `clock`; on success record it
    /// (unless `invisible`, for validated COW reads that must not block
    /// later writers).
    pub fn on_read(
        &mut self,
        clock: &VClock,
        access: ShadowAccess,
        invisible: bool,
    ) -> Option<RaceReport> {
        if let Some(w) = &self.write {
            if !clock.covers(w.epoch) {
                return Some(RaceReport {
                    prior_kind: "write",
                    prior: w.clone(),
                });
            }
        }
        if !invisible {
            self.reads.retain(|r| r.epoch.tid != access.epoch.tid);
            self.reads.push(access);
        }
        None
    }

    /// Check a write by a task whose clock is `clock` and record it.
    /// `check_reads` is off for copy-on-write slots (invisible readers).
    pub fn on_write(
        &mut self,
        clock: &VClock,
        access: ShadowAccess,
        check_reads: bool,
    ) -> Option<RaceReport> {
        if let Some(w) = &self.write {
            if !clock.covers(w.epoch) {
                return Some(RaceReport {
                    prior_kind: "write",
                    prior: w.clone(),
                });
            }
        }
        if check_reads {
            for r in &self.reads {
                if !clock.covers(r.epoch) {
                    return Some(RaceReport {
                        prior_kind: "read",
                        prior: r.clone(),
                    });
                }
            }
        }
        self.reads.clear();
        self.write = Some(access);
        None
    }
}

/// Render a race as the engine's failure message.  Both access sites are
/// named; stacks appear when [`crate::Options::race_stacks`] captured them.
pub(crate) fn race_message(
    name: &'static str,
    report: &RaceReport,
    current_kind: &'static str,
    current: &ShadowAccess,
) -> String {
    let mut msg = format!(
        "data race on `{name}`: {} by thread {} (step {}) is unsynchronized with {} by thread {} (step {})",
        report.prior_kind,
        report.prior.epoch.tid,
        report.prior.step,
        current_kind,
        current.epoch.tid,
        current.step,
    );
    match (&report.prior.stack, &current.stack) {
        (Some(a), Some(b)) => {
            msg.push_str(&format!(
                "\n--- earlier {} stack ---\n{a}\n--- current {} stack ---\n{b}",
                report.prior_kind, current_kind
            ));
        }
        _ => msg.push_str(" (enable Options::race_stacks(true) for both access stacks)"),
    }
    msg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(tid: u32, clk: u32, step: usize) -> ShadowAccess {
        ShadowAccess {
            epoch: Epoch { tid, clk },
            step,
            stack: None,
        }
    }

    /// Write then unsynchronized read: flagged.  Write then read whose
    /// clock joined the writer's published clock: clean.
    #[test]
    fn read_after_unpublished_write_races() {
        let mut s = ShadowState {
            name: "x",
            ..Default::default()
        };
        let mut writer = VClock::new();
        writer.bump(0);
        assert!(s.on_write(&writer, acc(0, 1, 1), true).is_none());

        let unsynced = VClock::new();
        let race = s.on_read(&unsynced, acc(1, 0, 2), false);
        assert!(race.is_some_and(|r| r.prior_kind == "write"));

        let mut synced = VClock::new();
        synced.join(&writer); // as if acquiring the writer's release
        assert!(s.on_read(&synced, acc(1, 0, 3), false).is_none());
    }

    /// Visible read then unsynchronized write: flagged; invisible (COW)
    /// reads deliberately do not block later writers.
    #[test]
    fn write_after_unpublished_read_races_unless_invisible() {
        let mut s = ShadowState {
            name: "x",
            ..Default::default()
        };
        let mut reader = VClock::new();
        reader.bump(1);
        assert!(s.on_read(&reader, acc(1, 1, 1), false).is_none());

        let unsynced = VClock::new();
        let race = s.on_write(&unsynced, acc(0, 0, 2), true);
        assert!(race.is_some_and(|r| r.prior_kind == "read"));

        let mut cow = ShadowState {
            name: "slot",
            ..Default::default()
        };
        assert!(cow.on_read(&reader, acc(1, 1, 1), true).is_none());
        assert!(
            cow.on_write(&unsynced, acc(0, 0, 2), false).is_none(),
            "invisible readers never race with copy-on-write installs"
        );
    }

    /// A write clears the read set: post-write readers race with the write,
    /// not with stale pre-write reads.
    #[test]
    fn write_supersedes_read_history() {
        let mut s = ShadowState {
            name: "x",
            ..Default::default()
        };
        let mut reader = VClock::new();
        reader.bump(1);
        assert!(s.on_read(&reader, acc(1, 1, 1), false).is_none());
        let mut writer = VClock::new();
        writer.bump(0);
        writer.join(&reader);
        assert!(s.on_write(&writer, acc(0, 1, 2), true).is_none());
        assert!(s.reads.is_empty(), "write resets the read set");
    }
}
