//! `skiphash-model` — a loom-lite deterministic concurrency model checker.
//!
//! This crate is the engine behind the repo's model-checking story (see
//! `docs/VERIFICATION.md`).  It provides:
//!
//! * [`atomic`] — drop-in instrumented atomic types + [`atomic::fence`]
//!   that behave exactly like `std::sync::atomic` outside a model
//!   execution, and become schedule points against an operational
//!   weak-memory model inside one.  `stm::sync` re-exports these when the
//!   `model` feature of `skiphash_stm` is enabled.
//! * [`thread`] — model-aware `spawn` / `join` / `yield_now`.
//! * [`explore`] / [`check`] — drive a closure through many interleavings
//!   using either bounded-exhaustive DFS ([`Options::dfs`]) or seeded
//!   PCT-style randomized priority scheduling ([`Options::pct`]).
//! * [`replay`] — re-execute one exact interleaving from a serialized
//!   **replay token**, turning any counterexample into a deterministic
//!   regression test (the corpus test in `crates/model-tests` consumes
//!   these).
//!
//! # Example
//!
//! ```
//! use skiphash_model as model;
//! use model::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! // Two racing unsynchronized increments CAN lose an update; DFS finds
//! // the interleaving and hands back a replay token.
//! let report = model::explore(&model::Options::dfs(), || {
//!     let c = Arc::new(AtomicU64::new(0));
//!     let t: Vec<_> = (0..2)
//!         .map(|_| {
//!             let c = Arc::clone(&c);
//!             model::thread::spawn(move || {
//!                 let v = c.load(Ordering::SeqCst);
//!                 c.store(v + 1, Ordering::SeqCst);
//!             })
//!         })
//!         .collect();
//!     for h in t {
//!         h.join().unwrap();
//!     }
//!     assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
//! });
//! assert!(report.failure.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod thread;

mod exec;
mod rng;
mod token;

pub use exec::{check, explore, replay, Failure, Options, Report, Strategy};

#[cfg(test)]
mod tests {
    use super::atomic::{fence, AtomicU64, Ordering};
    use super::{explore, replay, Options};
    use std::sync::Arc;

    fn two<F1, F2>(a: F1, b: F2)
    where
        F1: FnOnce() + Send + 'static,
        F2: FnOnce() + Send + 'static,
    {
        let t1 = crate::thread::spawn(a);
        let t2 = crate::thread::spawn(b);
        t1.join().unwrap();
        t2.join().unwrap();
    }

    /// Unsynchronized read-modify-write: the classic lost update must be
    /// found by exhaustive DFS, and its token must replay to the same
    /// failure.
    #[test]
    fn dfs_finds_lost_update_and_token_replays() {
        let body = || {
            let c = Arc::new(AtomicU64::new(0));
            let (c1, c2) = (Arc::clone(&c), Arc::clone(&c));
            two(
                move || {
                    let v = c1.load(Ordering::SeqCst);
                    c1.store(v + 1, Ordering::SeqCst);
                },
                move || {
                    let v = c2.load(Ordering::SeqCst);
                    c2.store(v + 1, Ordering::SeqCst);
                },
            );
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        };
        let report = explore(&Options::dfs(), body);
        let failure = report.failure.expect("DFS must find the lost update");
        let re = replay(&failure.token, body);
        let re_failure = re.failure.expect("token must reproduce the failure");
        assert!(re_failure.message.contains("lost update"), "{re_failure:?}");
    }

    /// CAS-based increments never lose updates; the exhaustive search must
    /// come back clean AND exhaust the (small) tree.
    #[test]
    fn dfs_exhausts_clean_cas_counter() {
        let report = explore(&Options::dfs(), || {
            let c = Arc::new(AtomicU64::new(0));
            let (c1, c2) = (Arc::clone(&c), Arc::clone(&c));
            let bump = |c: Arc<AtomicU64>| loop {
                let v = c.load(Ordering::SeqCst);
                if c.compare_exchange(v, v + 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    break;
                }
            };
            two(move || bump(c1), move || bump(c2));
            assert_eq!(c.load(Ordering::SeqCst), 2);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.exhausted, "small model should be fully enumerated");
    }

    /// Store-buffering litmus (SB): with SC fences between the store and the
    /// opposite load, `r1 == 0 && r2 == 0` is forbidden and the checker must
    /// agree.
    #[test]
    fn sb_litmus_forbidden_with_fences() {
        let report = explore(&Options::dfs(), || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let r1 = Arc::new(AtomicU64::new(u64::MAX));
            let r2 = Arc::new(AtomicU64::new(u64::MAX));
            {
                let (x, y, r1) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r1));
                let (x2, y2, r2) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r2));
                two(
                    move || {
                        x.store(1, Ordering::Relaxed);
                        fence(Ordering::SeqCst);
                        let v = y.load(Ordering::Relaxed);
                        r1.store(v, Ordering::Relaxed);
                    },
                    move || {
                        y2.store(1, Ordering::Relaxed);
                        fence(Ordering::SeqCst);
                        let v = x2.load(Ordering::Relaxed);
                        r2.store(v, Ordering::Relaxed);
                    },
                );
            }
            let (a, b) = (r1.load(Ordering::SeqCst), r2.load(Ordering::SeqCst));
            assert!(
                !(a == 0 && b == 0),
                "SB: both threads read 0 despite fences"
            );
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
    }

    /// SB without the fences: relaxed stores may still be unpublished when
    /// the opposite load runs, so `r1 == r2 == 0` IS observable — exactly
    /// the load-load/store-load reordering a fence-deletion bug exposes.
    #[test]
    fn sb_litmus_observable_without_fences() {
        let report = explore(&Options::dfs(), || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let r1 = Arc::new(AtomicU64::new(u64::MAX));
            let r2 = Arc::new(AtomicU64::new(u64::MAX));
            {
                let (x, y, r1) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r1));
                let (x2, y2, r2) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r2));
                two(
                    move || {
                        x.store(1, Ordering::Relaxed);
                        let v = y.load(Ordering::Relaxed);
                        r1.store(v, Ordering::Relaxed);
                    },
                    move || {
                        y2.store(1, Ordering::Relaxed);
                        let v = x2.load(Ordering::Relaxed);
                        r2.store(v, Ordering::Relaxed);
                    },
                );
            }
            let (a, b) = (r1.load(Ordering::SeqCst), r2.load(Ordering::SeqCst));
            assert!(
                !(a == 0 && b == 0),
                "SB relaxed: both zeros (expected reachable)"
            );
        });
        assert!(
            report.failure.is_some(),
            "relaxed SB must admit the both-zeros outcome"
        );
    }

    /// Message passing: release store / acquire load synchronize, so the
    /// payload read after seeing the flag must be fresh.
    #[test]
    fn message_passing_release_acquire_clean() {
        let report = explore(&Options::dfs(), || {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d1, f1) = (Arc::clone(&data), Arc::clone(&flag));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            two(
                move || {
                    d1.store(42, Ordering::Relaxed);
                    f1.store(1, Ordering::Release);
                },
                move || {
                    if f2.load(Ordering::Acquire) == 1 {
                        assert_eq!(d2.load(Ordering::Relaxed), 42, "stale payload");
                    }
                },
            );
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
    }

    /// Message passing with relaxed flag: the stale payload is observable.
    #[test]
    fn message_passing_relaxed_flag_fails() {
        let report = explore(&Options::dfs(), || {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d1, f1) = (Arc::clone(&data), Arc::clone(&flag));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            two(
                move || {
                    d1.store(42, Ordering::Relaxed);
                    f1.store(1, Ordering::Relaxed);
                },
                move || {
                    if f2.load(Ordering::Relaxed) == 1 {
                        assert_eq!(d2.load(Ordering::Relaxed), 42, "stale payload");
                    }
                },
            );
        });
        assert!(report.failure.is_some(), "relaxed MP must admit stale read");
    }

    /// PCT finds the same lost update that DFS does.
    #[test]
    fn pct_finds_lost_update() {
        let report = explore(&Options::pct(0xfeed_beef).iterations(500), || {
            let c = Arc::new(AtomicU64::new(0));
            let (c1, c2) = (Arc::clone(&c), Arc::clone(&c));
            two(
                move || {
                    let v = c1.load(Ordering::SeqCst);
                    c1.store(v + 1, Ordering::SeqCst);
                },
                move || {
                    let v = c2.load(Ordering::SeqCst);
                    c2.store(v + 1, Ordering::SeqCst);
                },
            );
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        });
        assert!(report.failure.is_some(), "PCT should find the lost update");
    }

    /// A body that returns while a model thread is still running is a bug
    /// in the model (the schedule space would be ill-defined); the engine
    /// reports it instead of hanging.
    #[test]
    fn leaked_model_thread_is_reported() {
        let report = explore(&Options::dfs().iterations(10), || {
            let c = Arc::new(AtomicU64::new(0));
            let c1 = Arc::clone(&c);
            let _h = crate::thread::spawn(move || {
                c1.store(1, Ordering::SeqCst);
            });
            // no join
        });
        let f = report.failure.expect("leak must be reported");
        assert!(f.message.contains("live model threads"), "{f:?}");
    }

    /// Outside any model execution the instrumented types are plain std
    /// atomics (the fallback path the `model` feature relies on).
    #[test]
    fn fallback_behaves_like_std() {
        let a = AtomicU64::new(7);
        assert_eq!(a.load(Ordering::SeqCst), 7);
        assert_eq!(a.fetch_add(1, Ordering::SeqCst), 7);
        assert_eq!(a.swap(100, Ordering::SeqCst), 8);
        assert_eq!(
            a.compare_exchange(100, 5, Ordering::SeqCst, Ordering::SeqCst),
            Ok(100)
        );
        assert_eq!(a.load(Ordering::SeqCst), 5);
        fence(Ordering::SeqCst);
        let h = crate::thread::spawn(|| 3u32);
        assert_eq!(h.join().unwrap(), 3);
    }
}
