//! `skiphash-model` — a loom-lite deterministic concurrency model checker.
//!
//! This crate is the engine behind the repo's model-checking story (see
//! `docs/VERIFICATION.md`).  It provides:
//!
//! * [`atomic`] — drop-in instrumented atomic types + [`atomic::fence`]
//!   that behave exactly like `std::sync::atomic` outside a model
//!   execution, and become schedule points against an operational
//!   weak-memory model inside one.  `stm::sync` re-exports these when the
//!   `model` feature of `skiphash_stm` is enabled.
//! * [`thread`] — model-aware `spawn` / `join` / `yield_now`.
//! * [`explore`] / [`check`] — drive a closure through many interleavings
//!   using either bounded-exhaustive DFS ([`Options::dfs`]) or seeded
//!   PCT-style randomized priority scheduling ([`Options::pct`]).
//! * [`replay`] — re-execute one exact interleaving from a serialized
//!   **replay token**, turning any counterexample into a deterministic
//!   regression test (the corpus test in `crates/model-tests` consumes
//!   these).
//! * [`cell`] — shadow-tracked non-atomic locations ([`cell::UnsyncCell`],
//!   [`cell::ShadowSlot`]) feeding a FastTrack-style happens-before race
//!   detector: unsynchronized access pairs fail the execution with both
//!   access sites (and, with [`Options::race_stacks`], both stacks) plus a
//!   replay token.
//! * [`MemoryModel`] — exploration strength.  [`MemoryModel::X86`] keeps
//!   every RMW a full barrier (TSO-style, the historical behavior);
//!   [`MemoryModel::Arm`] lets release/acquire RMWs be exactly
//!   release/acquire, exposing reorderings only `SeqCst` (or an SC fence)
//!   forbids on AArch64.
//! * Sleep-set partial-order reduction ([`Options::dpor`]) and a
//!   wall-clock budget ([`Options::wall`]) to keep bigger models within CI
//!   budgets.
//!
//! # Example
//!
//! ```
//! use skiphash_model as model;
//! use model::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! // Two racing unsynchronized increments CAN lose an update; DFS finds
//! // the interleaving and hands back a replay token.
//! let report = model::explore(&model::Options::dfs(), || {
//!     let c = Arc::new(AtomicU64::new(0));
//!     let t: Vec<_> = (0..2)
//!         .map(|_| {
//!             let c = Arc::clone(&c);
//!             model::thread::spawn(move || {
//!                 let v = c.load(Ordering::SeqCst);
//!                 c.store(v + 1, Ordering::SeqCst);
//!             })
//!         })
//!         .collect();
//!     for h in t {
//!         h.join().unwrap();
//!     }
//!     assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
//! });
//! assert!(report.failure.is_some());
//! ```

// `deny` rather than `forbid`: `cell::UnsyncCell` needs two `unsafe impl`s
// and one deref, each carrying a SAFETY argument and a local `allow`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod cell;
pub mod thread;

mod exec;
mod memmodel;
mod race;
mod rng;
mod token;
mod vclock;

pub use exec::{check, explore, replay, Failure, Options, Report, Strategy};
pub use memmodel::MemoryModel;
pub use token::{token_meta, TokenHeader};

#[cfg(test)]
mod tests {
    use super::atomic::{fence, AtomicU64, Ordering};
    use super::cell::UnsyncCell;
    use super::{explore, replay, token_meta, MemoryModel, Options};
    use std::sync::Arc;
    use std::time::Duration;

    fn two<F1, F2>(a: F1, b: F2)
    where
        F1: FnOnce() + Send + 'static,
        F2: FnOnce() + Send + 'static,
    {
        let t1 = crate::thread::spawn(a);
        let t2 = crate::thread::spawn(b);
        t1.join().unwrap();
        t2.join().unwrap();
    }

    /// Unsynchronized read-modify-write: the classic lost update must be
    /// found by exhaustive DFS, and its token must replay to the same
    /// failure.
    #[test]
    fn dfs_finds_lost_update_and_token_replays() {
        let body = || {
            let c = Arc::new(AtomicU64::new(0));
            let (c1, c2) = (Arc::clone(&c), Arc::clone(&c));
            two(
                move || {
                    let v = c1.load(Ordering::SeqCst);
                    c1.store(v + 1, Ordering::SeqCst);
                },
                move || {
                    let v = c2.load(Ordering::SeqCst);
                    c2.store(v + 1, Ordering::SeqCst);
                },
            );
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        };
        let report = explore(&Options::dfs(), body);
        let failure = report.failure.expect("DFS must find the lost update");
        let re = replay(&failure.token, body);
        let re_failure = re.failure.expect("token must reproduce the failure");
        assert!(re_failure.message.contains("lost update"), "{re_failure:?}");
    }

    /// CAS-based increments never lose updates; the exhaustive search must
    /// come back clean AND exhaust the (small) tree.
    #[test]
    fn dfs_exhausts_clean_cas_counter() {
        let report = explore(&Options::dfs(), || {
            let c = Arc::new(AtomicU64::new(0));
            let (c1, c2) = (Arc::clone(&c), Arc::clone(&c));
            let bump = |c: Arc<AtomicU64>| loop {
                let v = c.load(Ordering::SeqCst);
                if c.compare_exchange(v, v + 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    break;
                }
            };
            two(move || bump(c1), move || bump(c2));
            assert_eq!(c.load(Ordering::SeqCst), 2);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.exhausted, "small model should be fully enumerated");
    }

    /// Store-buffering litmus (SB): with SC fences between the store and the
    /// opposite load, `r1 == 0 && r2 == 0` is forbidden and the checker must
    /// agree.
    #[test]
    fn sb_litmus_forbidden_with_fences() {
        let report = explore(&Options::dfs(), || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let r1 = Arc::new(AtomicU64::new(u64::MAX));
            let r2 = Arc::new(AtomicU64::new(u64::MAX));
            {
                let (x, y, r1) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r1));
                let (x2, y2, r2) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r2));
                two(
                    move || {
                        x.store(1, Ordering::Relaxed);
                        fence(Ordering::SeqCst);
                        let v = y.load(Ordering::Relaxed);
                        r1.store(v, Ordering::Relaxed);
                    },
                    move || {
                        y2.store(1, Ordering::Relaxed);
                        fence(Ordering::SeqCst);
                        let v = x2.load(Ordering::Relaxed);
                        r2.store(v, Ordering::Relaxed);
                    },
                );
            }
            let (a, b) = (r1.load(Ordering::SeqCst), r2.load(Ordering::SeqCst));
            assert!(
                !(a == 0 && b == 0),
                "SB: both threads read 0 despite fences"
            );
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
    }

    /// SB without the fences: relaxed stores may still be unpublished when
    /// the opposite load runs, so `r1 == r2 == 0` IS observable — exactly
    /// the load-load/store-load reordering a fence-deletion bug exposes.
    #[test]
    fn sb_litmus_observable_without_fences() {
        let report = explore(&Options::dfs(), || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let r1 = Arc::new(AtomicU64::new(u64::MAX));
            let r2 = Arc::new(AtomicU64::new(u64::MAX));
            {
                let (x, y, r1) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r1));
                let (x2, y2, r2) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r2));
                two(
                    move || {
                        x.store(1, Ordering::Relaxed);
                        let v = y.load(Ordering::Relaxed);
                        r1.store(v, Ordering::Relaxed);
                    },
                    move || {
                        y2.store(1, Ordering::Relaxed);
                        let v = x2.load(Ordering::Relaxed);
                        r2.store(v, Ordering::Relaxed);
                    },
                );
            }
            let (a, b) = (r1.load(Ordering::SeqCst), r2.load(Ordering::SeqCst));
            assert!(
                !(a == 0 && b == 0),
                "SB relaxed: both zeros (expected reachable)"
            );
        });
        assert!(
            report.failure.is_some(),
            "relaxed SB must admit the both-zeros outcome"
        );
    }

    /// Message passing: release store / acquire load synchronize, so the
    /// payload read after seeing the flag must be fresh.
    #[test]
    fn message_passing_release_acquire_clean() {
        let report = explore(&Options::dfs(), || {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d1, f1) = (Arc::clone(&data), Arc::clone(&flag));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            two(
                move || {
                    d1.store(42, Ordering::Relaxed);
                    f1.store(1, Ordering::Release);
                },
                move || {
                    if f2.load(Ordering::Acquire) == 1 {
                        assert_eq!(d2.load(Ordering::Relaxed), 42, "stale payload");
                    }
                },
            );
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
    }

    /// Message passing with relaxed flag: the stale payload is observable.
    #[test]
    fn message_passing_relaxed_flag_fails() {
        let report = explore(&Options::dfs(), || {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d1, f1) = (Arc::clone(&data), Arc::clone(&flag));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            two(
                move || {
                    d1.store(42, Ordering::Relaxed);
                    f1.store(1, Ordering::Relaxed);
                },
                move || {
                    if f2.load(Ordering::Relaxed) == 1 {
                        assert_eq!(d2.load(Ordering::Relaxed), 42, "stale payload");
                    }
                },
            );
        });
        assert!(report.failure.is_some(), "relaxed MP must admit stale read");
    }

    /// PCT finds the same lost update that DFS does.
    #[test]
    fn pct_finds_lost_update() {
        let report = explore(&Options::pct(0xfeed_beef).iterations(500), || {
            let c = Arc::new(AtomicU64::new(0));
            let (c1, c2) = (Arc::clone(&c), Arc::clone(&c));
            two(
                move || {
                    let v = c1.load(Ordering::SeqCst);
                    c1.store(v + 1, Ordering::SeqCst);
                },
                move || {
                    let v = c2.load(Ordering::SeqCst);
                    c2.store(v + 1, Ordering::SeqCst);
                },
            );
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        });
        assert!(report.failure.is_some(), "PCT should find the lost update");
    }

    /// A body that returns while a model thread is still running is a bug
    /// in the model (the schedule space would be ill-defined); the engine
    /// reports it instead of hanging.
    #[test]
    fn leaked_model_thread_is_reported() {
        let report = explore(&Options::dfs().iterations(10), || {
            let c = Arc::new(AtomicU64::new(0));
            let c1 = Arc::clone(&c);
            let _h = crate::thread::spawn(move || {
                c1.store(1, Ordering::SeqCst);
            });
            // no join
        });
        let f = report.failure.expect("leak must be reported");
        assert!(f.message.contains("live model threads"), "{f:?}");
    }

    /// Outside any model execution the instrumented types are plain std
    /// atomics (the fallback path the `model` feature relies on).
    #[test]
    fn fallback_behaves_like_std() {
        let a = AtomicU64::new(7);
        assert_eq!(a.load(Ordering::SeqCst), 7);
        assert_eq!(a.fetch_add(1, Ordering::SeqCst), 7);
        assert_eq!(a.swap(100, Ordering::SeqCst), 8);
        assert_eq!(
            a.compare_exchange(100, 5, Ordering::SeqCst, Ordering::SeqCst),
            Ok(100)
        );
        assert_eq!(a.load(Ordering::SeqCst), 5);
        fence(Ordering::SeqCst);
        let h = crate::thread::spawn(|| 3u32);
        assert_eq!(h.join().unwrap(), 3);
    }

    /// An `UnsyncCell` written by one thread and read by another with no
    /// synchronizing atomics in between is a data race: the detector must
    /// flag it, name the location, and hand back a replaying token.
    #[test]
    fn race_detector_flags_unsynced_cell() {
        let body = || {
            let cell = Arc::new(UnsyncCell::new("shared", 0u64));
            let (c1, c2) = (Arc::clone(&cell), Arc::clone(&cell));
            two(
                move || c1.set(1),
                move || {
                    let _ = c2.get();
                },
            );
        };
        let report = explore(&Options::dfs(), body);
        let f = report
            .failure
            .expect("unsynchronized cell access must race");
        assert!(
            f.message.contains("data race on `shared`"),
            "unexpected failure: {f:?}"
        );
        let re = replay(&f.token, body);
        let rf = re.failure.expect("race token must replay");
        assert!(rf.message.contains("data race on `shared`"), "{rf:?}");
    }

    /// The same cell published through a release store and consumed after an
    /// acquire load is properly synchronized: the detector must stay quiet
    /// over the *whole* (exhausted) interleaving space.
    #[test]
    fn race_detector_accepts_release_acquire_cell() {
        let report = explore(&Options::dfs(), || {
            let cell = Arc::new(UnsyncCell::new("payload", 0u64));
            let flag = Arc::new(AtomicU64::new(0));
            let (c1, f1) = (Arc::clone(&cell), Arc::clone(&flag));
            let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
            two(
                move || {
                    c1.set(42);
                    f1.store(1, Ordering::Release);
                },
                move || {
                    if f2.load(Ordering::Acquire) == 1 {
                        assert_eq!(c2.get(), 42);
                    }
                },
            );
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.exhausted, "small model should be fully enumerated");
    }

    /// With `race_stacks(true)` the report carries both access stacks
    /// instead of the "enable race_stacks" hint.
    #[test]
    fn race_stacks_capture_both_sites() {
        let report = explore(&Options::dfs().race_stacks(true), || {
            let cell = Arc::new(UnsyncCell::new("stacked", 0u64));
            let (c1, c2) = (Arc::clone(&cell), Arc::clone(&cell));
            two(move || c1.set(1), move || c2.set(2));
        });
        let f = report.failure.expect("race expected");
        assert!(f.message.contains("--- earlier write stack ---"), "{f:?}");
        assert!(f.message.contains("--- current write stack ---"), "{f:?}");
    }

    /// Store-buffering litmus with an `AcqRel` RMW standing in for the
    /// fence.  On [`MemoryModel::X86`] every RMW is a full barrier, so the
    /// both-zeros outcome stays forbidden — the historical behavior.
    #[test]
    fn acqrel_rmw_is_full_barrier_on_x86() {
        let report = explore(&Options::dfs(), sb_with_acqrel_rmw);
        assert!(report.failure.is_none(), "{:?}", report.failure);
    }

    /// The same litmus under [`MemoryModel::Arm`]: an `AcqRel` RMW is
    /// exactly release + acquire, which does NOT order a prior relaxed
    /// store against a later relaxed load of another location.  Both-zeros
    /// becomes reachable, the token records the Arm header, and the replay
    /// reproduces it at Arm strength.
    #[test]
    fn acqrel_rmw_is_not_a_full_barrier_on_arm() {
        let opts = Options::dfs().memory(MemoryModel::Arm);
        let report = explore(&opts, sb_with_acqrel_rmw);
        let f = report
            .failure
            .expect("Arm must admit the both-zeros outcome");
        let header = token_meta(&f.token).expect("token must carry a header");
        assert_eq!(header.memory_model, MemoryModel::Arm);
        let re = replay(&f.token, sb_with_acqrel_rmw);
        assert!(
            re.failure.is_some(),
            "Arm token must replay at Arm strength"
        );
    }

    fn sb_with_acqrel_rmw() {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let z1 = Arc::new(AtomicU64::new(0));
        let z2 = Arc::new(AtomicU64::new(0));
        let r1 = Arc::new(AtomicU64::new(u64::MAX));
        let r2 = Arc::new(AtomicU64::new(u64::MAX));
        {
            let (xa, ya, ra) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r1));
            let (xb, yb, rb) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r2));
            two(
                move || {
                    xa.store(1, Ordering::Relaxed);
                    z1.fetch_add(1, Ordering::AcqRel);
                    ra.store(ya.load(Ordering::Relaxed), Ordering::Relaxed);
                },
                move || {
                    yb.store(1, Ordering::Relaxed);
                    z2.fetch_add(1, Ordering::AcqRel);
                    rb.store(xb.load(Ordering::Relaxed), Ordering::Relaxed);
                },
            );
        }
        let (a, b) = (r1.load(Ordering::SeqCst), r2.load(Ordering::SeqCst));
        assert!(
            !(a == 0 && b == 0),
            "SB via AcqRel RMW: both threads read 0"
        );
    }

    /// DPOR is a *sound* reduction: pruned branches are equivalent to
    /// explored ones, so the lost update must still be found (and its
    /// token — which never encodes pruning decisions — must replay).
    #[test]
    fn dpor_still_finds_lost_update() {
        let body = || {
            let c = Arc::new(AtomicU64::new(0));
            let (c1, c2) = (Arc::clone(&c), Arc::clone(&c));
            two(
                move || {
                    let v = c1.load(Ordering::SeqCst);
                    c1.store(v + 1, Ordering::SeqCst);
                },
                move || {
                    let v = c2.load(Ordering::SeqCst);
                    c2.store(v + 1, Ordering::SeqCst);
                },
            );
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        };
        let report = explore(&Options::dfs().dpor(true), body);
        let f = report.failure.expect("DPOR must not hide the lost update");
        let re = replay(&f.token, body);
        assert!(re.failure.is_some(), "DPOR-found token must replay plain");
    }

    /// Threads touching disjoint locations commute; sleep sets must prune
    /// the redundant orderings while still exhausting the model.
    #[test]
    fn dpor_prunes_commuting_interleavings() {
        let body = || {
            let slots: Vec<_> = (0..3).map(|_| Arc::new(AtomicU64::new(0))).collect();
            let handles: Vec<_> = slots
                .iter()
                .map(|s| {
                    let s = Arc::clone(s);
                    crate::thread::spawn(move || {
                        s.store(1, Ordering::Relaxed);
                        s.store(2, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            for s in &slots {
                assert_eq!(s.load(Ordering::SeqCst), 2);
            }
        };
        let plain = explore(&Options::dfs(), body);
        assert!(plain.exhausted && plain.failure.is_none(), "{plain:?}");
        let dpor = explore(&Options::dfs().dpor(true), body);
        assert!(dpor.exhausted && dpor.failure.is_none(), "{dpor:?}");
        assert!(dpor.pruned > 0, "commuting stores must trigger pruning");
        assert!(
            dpor.iterations * 2 <= plain.iterations,
            "DPOR explored {} vs plain {} — expected at least 2x reduction",
            dpor.iterations,
            plain.iterations
        );
    }

    /// Exhausting the wall-clock budget is a loud diagnostic, not a silent
    /// green: `check` must panic and point at the budget/DPOR knobs.
    #[test]
    fn wall_budget_exhaustion_is_loud() {
        let res = std::panic::catch_unwind(|| {
            super::check(&Options::dfs().wall(Some(Duration::ZERO)), || {
                let c = Arc::new(AtomicU64::new(0));
                let c1 = Arc::clone(&c);
                let h = crate::thread::spawn(move || c1.store(1, Ordering::SeqCst));
                h.join().unwrap();
            });
        });
        let err = res.expect_err("zero wall budget must trip the guard");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("increase the budget"), "got: {msg}");
        assert!(msg.contains("Options::dpor"), "got: {msg}");
    }
}
