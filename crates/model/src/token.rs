//! Replay-token serialization.
//!
//! A failing schedule is fully determined by the sequence of scheduler
//! decisions (each an index into that step's option list).  Tokens encode
//! that sequence as LEB128 varints rendered in hex, prefixed with a format
//! version, so a counterexample found once can be re-executed verbatim as a
//! regression test (see `replay` in the crate root and the corpus test in
//! `crates/model-tests`).
//!
//! Format history: `shm1` carried the preemption bound and a staleness
//! flag; `shm2` adds the memory-model strength (flag bit 1) so a
//! counterexample found under [`MemoryModel::Arm`] replays under `Arm`
//! instead of silently defaulting to `X86` and diverging.  `shm1` tokens
//! are rejected as malformed — every corpus entry was re-minted.

use crate::memmodel::MemoryModel;

/// Format prefix; bump if the decision-stream semantics ever change.
const PREFIX: &str = "shm2.";

/// Flag bit: stale-load exploration was enabled when the token was found.
const FLAG_STALENESS: u32 = 1;

/// Flag bit: the schedule was found under [`MemoryModel::Arm`].
const FLAG_ARM: u32 = 2;

/// Exploration options a replay must reproduce for the decision stream to
/// line up: all three fields change which operations consume a decision
/// and/or which store a stale load may observe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TokenHeader {
    /// The preemption bound in force when the schedule was found.
    pub preemption_bound: Option<usize>,
    /// Whether stale-load exploration was on (loads of multi-store
    /// locations consume a value decision).
    pub value_staleness: bool,
    /// The memory-model strength the schedule was found under.
    pub memory_model: MemoryModel,
}

/// Decode only the header of a replay token (`None` if malformed).  Lets
/// corpus tests assert tokens carry the intended exploration options —
/// e.g. that an `Arm`-found counterexample does not silently replay at
/// `X86` strength.
pub fn token_meta(token: &str) -> Option<TokenHeader> {
    decode(token).map(|(h, _)| h)
}

/// Encode a decision stream into a printable replay token.
///
/// The header travels with the decisions (first varint the preemption
/// bound, `0` = unbounded else `bound + 1`; second varint a flag word):
/// all of it determines how the decision stream is consumed, so replay
/// must reproduce it exactly.
pub(crate) fn encode(choices: &[u32], header: TokenHeader) -> String {
    let bound = match header.preemption_bound {
        None => 0u32,
        Some(b) => u32::try_from(b.saturating_add(1)).unwrap_or(u32::MAX),
    };
    let mut flags = 0u32;
    if header.value_staleness {
        flags |= FLAG_STALENESS;
    }
    if header.memory_model == MemoryModel::Arm {
        flags |= FLAG_ARM;
    }
    let mut bytes = Vec::with_capacity(choices.len() + 2);
    for &c in [bound, flags].iter().chain(choices) {
        let mut v = c;
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                bytes.push(byte);
                break;
            }
            bytes.push(byte | 0x80);
        }
    }
    let mut out = String::with_capacity(PREFIX.len() + bytes.len() * 2);
    out.push_str(PREFIX);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decode a replay token back into its header and decision stream.
/// Returns `None` on any malformed input (wrong prefix — including the
/// retired `shm1` format — odd hex, truncated varint, missing header,
/// unknown flags).
pub(crate) fn decode(token: &str) -> Option<(TokenHeader, Vec<u32>)> {
    let hex = token.strip_prefix(PREFIX)?;
    if hex.len() % 2 != 0 {
        return None;
    }
    let mut bytes = Vec::with_capacity(hex.len() / 2);
    let raw = hex.as_bytes();
    for pair in raw.chunks(2) {
        let s = std::str::from_utf8(pair).ok()?;
        bytes.push(u8::from_str_radix(s, 16).ok()?);
    }
    let mut out: Vec<u32> = Vec::new();
    let mut cur: u32 = 0;
    let mut shift = 0u32;
    for b in bytes {
        cur |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            out.push(cur);
            cur = 0;
            shift = 0;
        } else {
            shift += 7;
            if shift > 28 {
                return None;
            }
        }
    }
    if shift != 0 {
        return None; // truncated trailing varint
    }
    if out.len() < 2 {
        return None; // missing header varints
    }
    let bound = out.remove(0);
    let flags = out.remove(0);
    if flags & !(FLAG_STALENESS | FLAG_ARM) != 0 {
        return None; // flags from a future format revision
    }
    let header = TokenHeader {
        preemption_bound: if bound == 0 {
            None
        } else {
            Some(bound as usize - 1)
        },
        value_staleness: flags & FLAG_STALENESS != 0,
        memory_model: if flags & FLAG_ARM != 0 {
            MemoryModel::Arm
        } else {
            MemoryModel::X86
        },
    };
    Some((header, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let cases: &[&[u32]] = &[&[], &[0], &[1, 2, 3], &[127, 128, 300, 70000]];
        let bounds = [None, Some(0), Some(3), Some(1000)];
        for c in cases {
            for b in bounds {
                for staleness in [false, true] {
                    for mm in [MemoryModel::X86, MemoryModel::Arm] {
                        let h = TokenHeader {
                            preemption_bound: b,
                            value_staleness: staleness,
                            memory_model: mm,
                        };
                        let t = encode(c, h);
                        let (dh, dc) = decode(&t).expect("token must decode");
                        assert_eq!((dh, dc.as_slice()), (h, *c), "token {t}");
                        assert_eq!(token_meta(&t), Some(h));
                    }
                }
            }
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(decode("nope").is_none());
        assert!(decode("shm1.0001").is_none()); // retired format revision
        assert!(decode("shm2.").is_none()); // missing header
        assert!(decode("shm2.00").is_none()); // missing flags varint
        assert!(decode("shm2.0").is_none()); // odd hex
        assert!(decode("shm2.zz").is_none()); // not hex
        assert!(decode("shm2.80").is_none()); // truncated varint
        assert!(decode("shm2.0008").is_none()); // unknown flag bit
    }
}
