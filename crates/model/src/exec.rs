//! Execution engine: cooperative scheduler + operational weak-memory model.
//!
//! # Scheduling
//!
//! Model threads are real OS threads, but exactly one holds the *token* at
//! any time; every instrumented atomic operation (and `thread::yield_now`,
//! spawn-join edges, …) is a **schedule point** where the engine may hand
//! the token to any runnable task.  The decision stream — one index per
//! schedule point with more than one option — fully determines an
//! execution, which is what makes replay tokens possible.
//!
//! # Memory model
//!
//! Per location the engine keeps the full modification order (append-only
//! store list).  Each task carries a *view*: per-location floors of the
//! oldest store it may still observe.  The rules are a C11-flavoured
//! operational model deliberately strengthened to x86 where that keeps the
//! engine simple and sound for bug-hunting on our reference hardware:
//!
//! * `Relaxed`/`Acquire` loads may read **any** store at or above the
//!   task's floor (each such choice is a decision, bounded to the last
//!   [`STALE_WINDOW`] stores); `Acquire` additionally joins the release
//!   view attached to the store it read.
//! * `Release` stores append to the modification order and attach a
//!   snapshot of the writer's view (so later acquirers synchronize).
//! * `SeqCst` loads/stores and **all RMWs** act as full fences (publish
//!   own view to the global SC frontier, then floor from it) and read the
//!   latest store — RMWs are `lock`-prefixed full barriers on x86, which
//!   is the strength the vendored epoch shim and the STM fast paths were
//!   written against.  Bugs that only manifest with genuinely weaker RMWs
//!   (e.g. on AArch64) are out of scope; see `docs/VERIFICATION.md`.
//! * `fence(SeqCst)` publishes + floors.  Weaker fences are modeled at
//!   `SeqCst` strength (strictly fewer behaviors: never a false positive,
//!   may miss a bug that needs the distinction — none of the modeled
//!   protocols do).
//!
//! The important consequence: *deleting* an SC fence from a protocol that
//! needs one re-introduces stale-read behaviors the checker can find, even
//! when the racing accesses are on different locations (load-load
//! reordering), which plain sequentially-consistent interleaving
//! exploration cannot express.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};
use std::time::Duration;

use crate::rng::{SplitMix64, GOLDEN};
use crate::token;

/// Stale loads may reach back at most this many stores behind the latest.
/// Bounding the window keeps DFS branching factors tractable; it only
/// removes behaviors (sound for "no false positives").
pub(crate) const STALE_WINDOW: usize = 4;

/// Sentinel panic payload used to unwind model tasks when an execution is
/// being torn down (truncation, failure elsewhere, replay divergence).
/// Never observable outside the engine.
pub(crate) struct ModelAbort;

pub(crate) fn panic_abort() -> ! {
    panic::panic_any(ModelAbort)
}

// ---------------------------------------------------------------------------
// Public configuration & results
// ---------------------------------------------------------------------------

/// Exploration strategy for [`explore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Bounded exhaustive depth-first enumeration of the decision tree.
    /// Complete for small models (subject to the iteration cap).
    Dfs,
    /// PCT-style randomized priority scheduling: each task gets a random
    /// priority, and `depth` random *priority change points* demote the
    /// running task mid-execution.  Good bug-finding probability on models
    /// too large to enumerate.
    Pct {
        /// Number of priority change points injected per execution.
        depth: usize,
    },
}

/// Configuration for a model-checking run.
#[derive(Clone, Debug)]
pub struct Options {
    /// Exploration strategy.
    pub strategy: Strategy,
    /// Maximum number of executions to explore.
    pub max_iterations: usize,
    /// Per-execution schedule-point cap; executions exceeding it count as
    /// truncated (inconclusive), not failing.
    pub max_steps: usize,
    /// Base seed for randomized strategies.
    pub seed: u64,
    /// When `false`, all loads read the latest store (pure interleaving
    /// exploration, sequentially consistent memory).  Use this for models
    /// that mix instrumented and *uninstrumented* shared state (e.g. full
    /// `Stm::run` transactions, whose TCell data words are real atomics):
    /// the hybrid would otherwise miss the synchronization those real
    /// accesses provide and report spurious stale reads.
    pub value_staleness: bool,
    /// CHESS-style preemption bound for DFS: at most this many *involuntary*
    /// context switches per execution (switches at blocking points are
    /// free).  Keeps exhaustive enumeration polynomial instead of
    /// exponential; empirically almost all concurrency bugs need very few
    /// preemptions.  `None` = unbounded.  Ignored by PCT (priorities
    /// already control switching).
    pub preemption_bound: Option<usize>,
}

impl Options {
    /// Exhaustive DFS with a generous default iteration cap.
    pub fn dfs() -> Self {
        Options {
            strategy: Strategy::Dfs,
            max_iterations: 100_000,
            max_steps: 20_000,
            seed: 0,
            value_staleness: true,
            preemption_bound: Some(3),
        }
    }

    /// Seeded PCT-style randomized search.
    pub fn pct(seed: u64) -> Self {
        Options {
            strategy: Strategy::Pct { depth: 3 },
            max_iterations: 2_000,
            max_steps: 50_000,
            seed,
            value_staleness: true,
            preemption_bound: None,
        }
    }

    /// Set the execution cap.
    pub fn iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Set the per-execution schedule-point cap.
    pub fn steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Enable/disable stale-load exploration (see [`Options::value_staleness`]).
    pub fn staleness(mut self, on: bool) -> Self {
        self.value_staleness = on;
        self
    }

    /// Set (or lift, with `None`) the DFS preemption bound.
    pub fn preemptions(mut self, bound: Option<usize>) -> Self {
        self.preemption_bound = bound;
        self
    }
}

/// A counterexample produced by the checker.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Replay token reproducing the failing schedule via [`replay`].
    pub token: String,
    /// Iteration index at which the failure was found.
    pub iteration: usize,
    /// Human-readable failure message (assertion text, deadlock, …).
    pub message: String,
}

/// Summary of an exploration run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions actually run.
    pub iterations: usize,
    /// Executions cut short by the step cap (inconclusive).
    pub truncated: usize,
    /// `true` when DFS exhausted the whole decision tree within the caps.
    pub exhausted: bool,
    /// First counterexample found, if any.
    pub failure: Option<Failure>,
}

// ---------------------------------------------------------------------------
// Engine state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RunState {
    Runnable,
    /// Blocked joining the given task.
    Blocked(usize),
    Finished,
}

struct Task {
    run: RunState,
    /// Per-location floor: oldest store index this task may still read.
    seen: Vec<usize>,
    /// PCT priority (higher runs first); unused by DFS/replay.
    priority: i64,
}

struct Store {
    value: u64,
    /// Release view attached by the writer (None for relaxed stores).
    view: Option<Arc<Vec<usize>>>,
}

struct Location {
    stores: Vec<Store>,
}

/// One DFS decision-tree node: the branch taken and the branching factor.
#[derive(Clone, Copy, Debug)]
struct DfsNode {
    chosen: u32,
    options: u32,
}

enum Chooser {
    Dfs {
        path: Vec<DfsNode>,
        cursor: usize,
    },
    Rand {
        rng: SplitMix64,
        change_points: Vec<usize>,
        next_cp: usize,
        min_priority: i64,
    },
    Replay {
        choices: Vec<u32>,
        cursor: usize,
    },
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    Aborting,
}

pub(crate) struct State {
    phase: Phase,
    truncated: bool,
    failure: Option<String>,
    tasks: Vec<Task>,
    current: usize,
    locs: Vec<Location>,
    /// Per-location SC frontier: highest store index published by an SC
    /// fence / SC access / RMW.
    sc_visible: Vec<usize>,
    steps: usize,
    max_steps: usize,
    staleness: bool,
    preemptions: usize,
    preemption_bound: usize,
    chooser: Chooser,
    /// Every decision taken this execution, in order (the replay token).
    record: Vec<u32>,
}

pub(crate) struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    /// Distinguishes executions so per-atomic location caches self-invalidate.
    pub(crate) exec_id: u64,
    /// OS handles of spawned model threads, joined at execution teardown.
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

static EXEC_IDS: StdAtomicU64 = StdAtomicU64::new(1);

impl Shared {
    fn new(opts: &Options, chooser: Chooser) -> Self {
        let mut chooser = chooser;
        let priority = match &mut chooser {
            Chooser::Rand { rng, .. } => (rng.next_u64() >> 2) as i64,
            _ => 0,
        };
        Shared {
            state: Mutex::new(State {
                phase: Phase::Running,
                truncated: false,
                failure: None,
                tasks: vec![Task {
                    run: RunState::Runnable,
                    seen: Vec::new(),
                    priority,
                }],
                current: 0,
                locs: Vec::new(),
                sc_visible: Vec::new(),
                steps: 0,
                max_steps: opts.max_steps,
                staleness: opts.value_staleness,
                preemptions: 0,
                preemption_bound: opts.preemption_bound.unwrap_or(usize::MAX),
                chooser,
                record: Vec::new(),
            }),
            cv: Condvar::new(),
            exec_id: EXEC_IDS.fetch_add(1, StdOrdering::Relaxed),
            os_handles: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn notify(&self) {
        self.cv.notify_all();
    }

    /// Park until this task holds the token again (or the execution aborts).
    fn wait_for_token<'a>(
        &'a self,
        mut st: MutexGuard<'a, State>,
        me: usize,
    ) -> MutexGuard<'a, State> {
        let mut stalls = 0u32;
        loop {
            if st.phase != Phase::Running {
                drop(st);
                panic_abort();
            }
            if st.current == me {
                return st;
            }
            let (g, to) = self
                .cv
                .wait_timeout(st, Duration::from_secs(10))
                .unwrap_or_else(|e| e.into_inner());
            st = g;
            if to.timed_out() {
                stalls += 1;
                if stalls >= 6 {
                    st.fail("internal: scheduler stall (lost wakeup?)".into());
                    self.notify();
                    drop(st);
                    panic_abort();
                }
            }
        }
    }

    /// One schedule point: bump the step counter and (maybe) hand the token
    /// to another runnable task.  Every instrumented operation calls this
    /// first; the operation itself executes once the token returns.
    pub(crate) fn schedule(&self, me: usize) {
        let mut st = self.lock();
        if st.phase != Phase::Running {
            drop(st);
            panic_abort();
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            st.truncated = true;
            st.phase = Phase::Aborting;
            self.notify();
            drop(st);
            panic_abort();
        }
        // PCT: a change point demotes whoever is running when it fires.
        let steps = st.steps;
        if let Chooser::Rand {
            change_points,
            next_cp,
            min_priority,
            ..
        } = &mut st.chooser
        {
            // At most one change point fires per schedule call; any others
            // already due fire on subsequent steps (keeps demotion gradual).
            if *next_cp < change_points.len() && change_points[*next_cp] <= steps {
                *next_cp += 1;
                *min_priority -= 1;
                let p = *min_priority;
                st.tasks[me].priority = p;
            }
        }
        let runnable = st.runnable();
        debug_assert!(runnable.contains(&me));
        // CHESS-style preemption bound: once exhausted, the running task
        // keeps the token at its own schedule points (switches at blocking
        // points — join, finish — stay free).  The restriction is a pure
        // function of the decision prefix, so DFS and replay agree on it.
        if runnable.len() > 1 && st.preemptions < st.preemption_bound {
            let k = st.decide_thread(&runnable);
            let next = runnable[k];
            if next != me {
                st.preemptions += 1;
                st.current = next;
                self.notify();
                let st = self.wait_for_token(st, me);
                drop(st);
            }
        }
    }

    /// Register (or re-register after a stale cache) a memory location.
    pub(crate) fn register_loc(&self, initial: u64) -> usize {
        let mut st = self.lock();
        st.locs.push(Location {
            stores: vec![Store {
                value: initial,
                view: None,
            }],
        });
        st.sc_visible.push(0);
        st.locs.len() - 1
    }

    pub(crate) fn op_load(&self, me: usize, loc: usize, ord: StdOrdering) -> u64 {
        self.schedule(me);
        let mut st = self.lock();
        st.check_running();
        let val = st.load(me, loc, ord);
        drop(st);
        val
    }

    /// Returns the stored value (for the caller's real-atomic write-through).
    pub(crate) fn op_store(&self, me: usize, loc: usize, val: u64, ord: StdOrdering) {
        self.schedule(me);
        let mut st = self.lock();
        st.check_running();
        st.store(me, loc, val, ord);
    }

    /// Generic RMW.  `f` maps the read value to `Some(new)` (apply) or
    /// `None` (CAS failure).  Returns `(read_value, applied, latest)` where
    /// `latest` is the location's new modification-order head, for the
    /// caller's write-through into the backing real atomic.
    pub(crate) fn op_rmw(
        &self,
        me: usize,
        loc: usize,
        f: impl FnOnce(u64) -> Option<u64>,
    ) -> (u64, bool, u64) {
        self.schedule(me);
        let mut st = self.lock();
        st.check_running();
        st.rmw(me, loc, f)
    }

    pub(crate) fn op_fence(&self, me: usize, _ord: StdOrdering) {
        self.schedule(me);
        let mut st = self.lock();
        st.check_running();
        st.sc_publish(me);
        st.sc_floor(me);
    }

    /// Explicit yield: a pure schedule point.
    pub(crate) fn op_yield(&self, me: usize) {
        self.schedule(me);
    }

    /// Register a new model task; returns its id.  Called by `thread::spawn`
    /// while the parent holds the token, so it is not itself a schedule
    /// point — the child simply becomes runnable.
    pub(crate) fn add_task(&self) -> usize {
        let mut st = self.lock();
        let priority = match &mut st.chooser {
            Chooser::Rand { rng, .. } => (rng.next_u64() >> 2) as i64,
            _ => 0,
        };
        st.tasks.push(Task {
            run: RunState::Runnable,
            seen: Vec::new(),
            priority,
        });
        st.tasks.len() - 1
    }

    pub(crate) fn push_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.os_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(h);
    }

    /// Entry point for a freshly spawned model task's OS thread: wait until
    /// first scheduled.
    pub(crate) fn wait_first_schedule(&self, me: usize) {
        let st = self.lock();
        let st = self.wait_for_token(st, me);
        drop(st);
    }

    /// Mark `me` finished, wake joiners, and pass the token on.
    pub(crate) fn finish_task(&self, me: usize) {
        let mut st = self.lock();
        st.tasks[me].run = RunState::Finished;
        for t in &mut st.tasks {
            if t.run == RunState::Blocked(me) {
                t.run = RunState::Runnable;
            }
        }
        if st.phase == Phase::Running {
            let runnable = st.runnable();
            if runnable.is_empty() {
                if st
                    .tasks
                    .iter()
                    .any(|t| matches!(t.run, RunState::Blocked(_)))
                {
                    st.fail("deadlock: all live tasks blocked on join".into());
                }
                // else: every task finished; nothing left to run.
            } else {
                let k = if runnable.len() > 1 {
                    st.decide_thread(&runnable)
                } else {
                    0
                };
                st.current = runnable[k];
            }
        }
        self.notify();
    }

    /// Record a real (non-sentinel) panic from a model task as the
    /// execution's failure and begin teardown.
    pub(crate) fn fail_from_panic(&self, msg: String) {
        let mut st = self.lock();
        st.fail(msg);
        self.notify();
    }

    /// Block `me` until `target` finishes.  Returns normally once the join
    /// can proceed; unwinds with `ModelAbort` if the execution aborts.
    pub(crate) fn join_task(&self, me: usize, target: usize) {
        let mut st = self.lock();
        if st.phase != Phase::Running {
            drop(st);
            panic_abort();
        }
        if st.tasks[target].run == RunState::Finished {
            return;
        }
        st.tasks[me].run = RunState::Blocked(target);
        let runnable = st.runnable();
        if runnable.is_empty() {
            st.fail("deadlock: all live tasks blocked on join".into());
            self.notify();
            drop(st);
            panic_abort();
        }
        let k = if runnable.len() > 1 {
            st.decide_thread(&runnable)
        } else {
            0
        };
        st.current = runnable[k];
        self.notify();
        let st = self.wait_for_token(st, me);
        drop(st);
    }
}

impl State {
    fn check_running(&self) {
        if self.phase != Phase::Running {
            panic_abort();
        }
    }

    fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.phase = Phase::Aborting;
    }

    fn runnable(&self) -> Vec<usize> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.run == RunState::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    /// Decide which runnable task runs next; records the decision.
    fn decide_thread(&mut self, runnable: &[usize]) -> usize {
        debug_assert!(runnable.len() > 1);
        let k = match &mut self.chooser {
            Chooser::Dfs { path, cursor } => {
                let k = if *cursor < path.len() {
                    let node = path[*cursor];
                    if node.options != runnable.len() as u32 {
                        // The replayed prefix diverged (nondeterminism in the
                        // model body, e.g. address-dependent hashing).  Clamp
                        // and keep going; DFS completeness is best-effort in
                        // that case.
                        (node.chosen as usize).min(runnable.len() - 1)
                    } else {
                        node.chosen as usize
                    }
                } else {
                    path.push(DfsNode {
                        chosen: 0,
                        options: runnable.len() as u32,
                    });
                    0
                };
                *cursor += 1;
                k
            }
            Chooser::Rand { .. } => {
                // Highest priority runs; ties broken by task id.
                let mut best = 0usize;
                for (i, &t) in runnable.iter().enumerate() {
                    if self.tasks[t].priority > self.tasks[runnable[best]].priority {
                        best = i;
                    }
                }
                best
            }
            Chooser::Replay { choices, cursor } => {
                if *cursor >= choices.len() || choices[*cursor] as usize >= runnable.len() {
                    let msg = format!(
                        "replay divergence: token does not match this model \
                         (thread decision {} of {}, {} runnable{})",
                        *cursor,
                        choices.len(),
                        runnable.len(),
                        if *cursor < choices.len() {
                            format!(", recorded choice {}", choices[*cursor])
                        } else {
                            String::new()
                        },
                    );
                    self.fail(msg);
                    panic_abort();
                }
                let k = choices[*cursor] as usize;
                *cursor += 1;
                k
            }
        };
        self.record.push(k as u32);
        k
    }

    /// Decide which of `options` readable stores a stale-capable load
    /// observes (0 = newest); records the decision.
    fn decide_value(&mut self, options: usize) -> usize {
        debug_assert!(options > 1);
        let k = match &mut self.chooser {
            Chooser::Dfs { path, cursor } => {
                let k = if *cursor < path.len() {
                    let node = path[*cursor];
                    (node.chosen as usize).min(options - 1)
                } else {
                    path.push(DfsNode {
                        chosen: 0,
                        options: options as u32,
                    });
                    0
                };
                *cursor += 1;
                k
            }
            Chooser::Rand { rng, .. } => {
                // Bias toward the newest store; occasionally reach back.
                if rng.next_u64() % 4 != 0 {
                    0
                } else {
                    1 + rng.next_below(options - 1)
                }
            }
            Chooser::Replay { choices, cursor } => {
                if *cursor >= choices.len() || choices[*cursor] as usize >= options {
                    let msg = format!(
                        "replay divergence: token does not match this model \
                         (value decision {} of {}, {} options)",
                        *cursor,
                        choices.len(),
                        options,
                    );
                    self.fail(msg);
                    panic_abort();
                }
                let k = choices[*cursor] as usize;
                *cursor += 1;
                k
            }
        };
        self.record.push(k as u32);
        k
    }

    fn seen_floor(&mut self, task: usize, loc: usize) -> usize {
        let seen = &mut self.tasks[task].seen;
        if seen.len() <= loc {
            seen.resize(loc + 1, 0);
        }
        seen[loc]
    }

    fn raise_floor(&mut self, task: usize, loc: usize, idx: usize) {
        let seen = &mut self.tasks[task].seen;
        if seen.len() <= loc {
            seen.resize(loc + 1, 0);
        }
        if seen[loc] < idx {
            seen[loc] = idx;
        }
    }

    fn join_view(&mut self, task: usize, view: &[usize]) {
        let seen = &mut self.tasks[task].seen;
        if seen.len() < view.len() {
            seen.resize(view.len(), 0);
        }
        for (s, &v) in seen.iter_mut().zip(view.iter()) {
            if *s < v {
                *s = v;
            }
        }
    }

    fn snapshot_view(&self, task: usize) -> Arc<Vec<usize>> {
        Arc::new(self.tasks[task].seen.clone())
    }

    /// Publish this task's view into the global SC frontier.
    fn sc_publish(&mut self, task: usize) {
        let seen = &self.tasks[task].seen;
        for (loc, &s) in seen.iter().enumerate() {
            if self.sc_visible[loc] < s {
                self.sc_visible[loc] = s;
            }
        }
    }

    /// Floor this task's view from the global SC frontier.
    fn sc_floor(&mut self, task: usize) {
        let sc = &self.sc_visible;
        let seen = &mut self.tasks[task].seen;
        if seen.len() < sc.len() {
            seen.resize(sc.len(), 0);
        }
        for (s, &v) in seen.iter_mut().zip(sc.iter()) {
            if *s < v {
                *s = v;
            }
        }
    }

    fn load(&mut self, task: usize, loc: usize, ord: StdOrdering) -> u64 {
        let sc = matches!(ord, StdOrdering::SeqCst);
        if sc {
            self.sc_publish(task);
            self.sc_floor(task);
        }
        let n = self.locs[loc].stores.len();
        let floor = self
            .seen_floor(task, loc)
            .max(n.saturating_sub(STALE_WINDOW));
        let idx = if sc || !self.staleness || n - floor == 1 {
            n - 1
        } else {
            let k = self.decide_value(n - floor);
            n - 1 - k
        };
        self.raise_floor(task, loc, idx);
        let acquire = matches!(
            ord,
            StdOrdering::Acquire | StdOrdering::AcqRel | StdOrdering::SeqCst
        );
        let (value, view) = {
            let store = &self.locs[loc].stores[idx];
            (store.value, store.view.clone())
        };
        if acquire {
            if let Some(view) = view {
                self.join_view(task, &view);
            }
        }
        value
    }

    fn store(&mut self, task: usize, loc: usize, val: u64, ord: StdOrdering) {
        let release = matches!(
            ord,
            StdOrdering::Release | StdOrdering::AcqRel | StdOrdering::SeqCst
        );
        let view = if release {
            Some(self.snapshot_view(task))
        } else {
            None
        };
        self.locs[loc].stores.push(Store { value: val, view });
        let idx = self.locs[loc].stores.len() - 1;
        self.raise_floor(task, loc, idx);
        if matches!(ord, StdOrdering::SeqCst) {
            // x86 strength: an SC store is a full barrier.
            self.sc_publish(task);
            self.sc_floor(task);
        }
    }

    fn rmw(
        &mut self,
        task: usize,
        loc: usize,
        f: impl FnOnce(u64) -> Option<u64>,
    ) -> (u64, bool, u64) {
        // All RMWs are modeled at full x86 `lock` strength: full fence,
        // read the modification-order head, full fence on the new store.
        self.sc_publish(task);
        self.sc_floor(task);
        let idx = self.locs[loc].stores.len() - 1;
        let (cur, view) = {
            let store = &self.locs[loc].stores[idx];
            (store.value, store.view.clone())
        };
        self.raise_floor(task, loc, idx);
        if let Some(view) = view {
            self.join_view(task, &view);
        }
        match f(cur) {
            Some(new) => {
                let view = Some(self.snapshot_view(task));
                self.locs[loc].stores.push(Store { value: new, view });
                let nidx = self.locs[loc].stores.len() - 1;
                self.raise_floor(task, loc, nidx);
                self.sc_publish(task);
                (cur, true, new)
            }
            None => (cur, false, cur),
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local task context
// ---------------------------------------------------------------------------

/// Identifies the model task running on the current OS thread.
#[derive(Clone)]
pub(crate) struct TaskCtx {
    pub(crate) shared: Arc<Shared>,
    pub(crate) task: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<TaskCtx>> = const { std::cell::RefCell::new(None) };
}

/// Clone the current task context out of TLS (cheap: one Arc bump).
pub(crate) fn ctx() -> Option<TaskCtx> {
    // While unwinding (including the `ModelAbort` teardown of an execution)
    // destructors may touch instrumented atomics; dispatching them to the
    // engine would panic again inside the unwind and abort the process.
    // Degrade to the real atomics instead — write-through keeps them
    // coherent with the model's modification-order head, and an aborting
    // execution records no further decisions anyway.
    if std::thread::panicking() {
        return None;
    }
    CTX.try_with(|c| c.borrow().clone()).ok().flatten()
}

pub(crate) fn set_ctx(v: Option<TaskCtx>) {
    CTX.with(|c| *c.borrow_mut() = v);
}

fn in_model_ctx() -> bool {
    CTX.try_with(|c| c.borrow().is_some()).unwrap_or(false)
}

// ---------------------------------------------------------------------------
// Panic-hook plumbing
// ---------------------------------------------------------------------------

/// Silence panic output for (a) the `ModelAbort` sentinel and (b) expected
/// assertion failures inside model executions — the engine captures the
/// message and reports it (with a replay token) instead.  Panics outside
/// model executions keep the previous hook's behavior.
fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ModelAbort>().is_some() || in_model_ctx() {
                return;
            }
            prev(info);
        }));
    });
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model task panicked (non-string payload)".to_string()
    }
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

struct IterationOutcome {
    failure: Option<String>,
    truncated: bool,
    record: Vec<u32>,
    /// Schedule points this execution consumed (PCT change-point sizing).
    steps: usize,
    /// DFS decision path actually taken (for the odometer).
    dfs_path: Option<Vec<DfsNode>>,
}

fn run_iteration<F: Fn()>(opts: &Options, chooser: Chooser, body: &F) -> IterationOutcome {
    let shared = Arc::new(Shared::new(opts, chooser));
    set_ctx(Some(TaskCtx {
        shared: Arc::clone(&shared),
        task: 0,
    }));
    let res = panic::catch_unwind(AssertUnwindSafe(body));
    set_ctx(None);
    {
        let mut st = shared.lock();
        st.tasks[0].run = RunState::Finished;
        match res {
            Ok(()) => {
                if st.phase == Phase::Running
                    && st.tasks.iter().any(|t| t.run != RunState::Finished)
                {
                    st.fail(
                        "model body returned with live model threads (join every \
                         handle before returning)"
                            .into(),
                    );
                }
            }
            Err(p) => {
                if p.downcast_ref::<ModelAbort>().is_none() {
                    st.fail(panic_message(&*p));
                }
            }
        }
        shared.notify();
    }
    // Tear down worker OS threads; under abort they wake, unwind with the
    // sentinel, and exit their closure.
    let handles = std::mem::take(&mut *shared.os_handles.lock().unwrap_or_else(|e| e.into_inner()));
    for h in handles {
        let _ = h.join();
    }
    let mut st = shared.lock();
    IterationOutcome {
        failure: st.failure.take(),
        truncated: st.truncated,
        record: std::mem::take(&mut st.record),
        steps: st.steps,
        dfs_path: match &mut st.chooser {
            Chooser::Dfs { path, .. } => Some(std::mem::take(path)),
            _ => None,
        },
    }
}

/// Advance the DFS odometer to the next unexplored path.  Returns `false`
/// when the tree is exhausted.
fn advance_dfs(path: &mut Vec<DfsNode>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.chosen + 1 < last.options {
            last.chosen += 1;
            return true;
        }
        path.pop();
    }
    false
}

/// Explore interleavings of `body` under the given options.
///
/// `body` is executed once per iteration on the calling thread (task 0); it
/// may spawn model threads via [`crate::thread::spawn`] and must join them
/// before returning.  Exploration stops at the first counterexample.
pub fn explore<F: Fn()>(opts: &Options, body: F) -> Report {
    install_panic_hook();
    assert!(
        !in_model_ctx(),
        "nested model executions are not supported (explore inside explore)"
    );
    let mut report = Report {
        iterations: 0,
        truncated: 0,
        exhausted: false,
        failure: None,
    };
    let mut dfs_path: Vec<DfsNode> = Vec::new();
    // PCT change points only matter if they land inside the execution, so
    // sample them over the previous iteration's observed length (CHESS/PCT
    // both learn the length the same way) rather than the step *cap*.
    let mut est_len: usize = 32;
    for iter in 0..opts.max_iterations {
        let chooser = match opts.strategy {
            Strategy::Dfs => Chooser::Dfs {
                path: std::mem::take(&mut dfs_path),
                cursor: 0,
            },
            Strategy::Pct { depth } => {
                let mut rng =
                    SplitMix64::new(opts.seed ^ (iter as u64).wrapping_mul(GOLDEN) ^ 0x5eed);
                let mut cps: Vec<usize> = (0..depth).map(|_| 1 + rng.next_below(est_len)).collect();
                cps.sort_unstable();
                Chooser::Rand {
                    rng,
                    change_points: cps,
                    next_cp: 0,
                    min_priority: 0,
                }
            }
        };
        let out = run_iteration(opts, chooser, &body);
        est_len = out.steps.clamp(8, opts.max_steps);
        report.iterations = iter + 1;
        if out.truncated {
            report.truncated += 1;
        }
        if let Some(message) = out.failure {
            report.failure = Some(Failure {
                token: token::encode(
                    &out.record,
                    token::TokenHeader {
                        preemption_bound: opts.preemption_bound,
                        value_staleness: opts.value_staleness,
                    },
                ),
                iteration: iter,
                message,
            });
            return report;
        }
        if let Some(mut path) = out.dfs_path {
            if !advance_dfs(&mut path) {
                report.exhausted = true;
                return report;
            }
            dfs_path = path;
        }
    }
    report
}

/// Re-execute a single schedule from a replay token.  The body must be the
/// same model the token was produced from; divergence is reported as a
/// failure rather than silently exploring something else.
pub fn replay<F: Fn()>(token_str: &str, body: F) -> Report {
    install_panic_hook();
    assert!(!in_model_ctx(), "nested model executions are not supported");
    let (header, choices) = match token::decode(token_str) {
        Some(c) => c,
        None => {
            return Report {
                iterations: 0,
                truncated: 0,
                exhausted: false,
                failure: Some(Failure {
                    token: token_str.to_string(),
                    iteration: 0,
                    message: "malformed replay token".into(),
                }),
            }
        }
    };
    let opts = Options {
        strategy: Strategy::Dfs, // unused by the Replay chooser
        max_iterations: 1,
        max_steps: usize::MAX / 2,
        seed: 0,
        // Both travel in the token: they decide which operations consume a
        // decision, so replay must mirror the original run exactly.
        value_staleness: header.value_staleness,
        preemption_bound: header.preemption_bound,
    };
    let out = run_iteration(&opts, Chooser::Replay { choices, cursor: 0 }, &body);
    Report {
        iterations: 1,
        truncated: if out.truncated { 1 } else { 0 },
        exhausted: false,
        failure: out.failure.map(|message| Failure {
            token: token_str.to_string(),
            iteration: 0,
            message,
        }),
    }
}

/// [`explore`], but panic with a diagnostic (including the replay token)
/// when a counterexample is found.  The usual entry point for clean-suite
/// model tests.
pub fn check<F: Fn()>(opts: &Options, body: F) -> Report {
    let report = explore(opts, body);
    if let Some(f) = &report.failure {
        panic!(
            "model check failed at iteration {}: {}\n  replay token: {}",
            f.iteration, f.message, f.token
        );
    }
    report
}
