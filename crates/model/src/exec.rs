//! Execution engine: cooperative scheduler + operational weak-memory model.
//!
//! # Scheduling
//!
//! Model threads are real OS threads, but exactly one holds the *token* at
//! any time; every instrumented atomic operation (and `thread::yield_now`,
//! spawn-join edges, …) is a **schedule point** where the engine may hand
//! the token to any runnable task.  The decision stream — one index per
//! schedule point with more than one option — fully determines an
//! execution, which is what makes replay tokens possible.
//!
//! # Memory model
//!
//! Per location the engine keeps the full modification order (append-only
//! store list).  Each task carries a *view*: per-location floors of the
//! oldest store it may still observe.  The rules are a C11-flavoured
//! operational model deliberately strengthened to x86 where that keeps the
//! engine simple and sound for bug-hunting on our reference hardware:
//!
//! * `Relaxed`/`Acquire` loads may read **any** store at or above the
//!   task's floor (each such choice is a decision, bounded to the last
//!   [`STALE_WINDOW`] stores); `Acquire` additionally joins the release
//!   view attached to the store it read.
//! * `Release` stores append to the modification order and attach a
//!   snapshot of the writer's view (so later acquirers synchronize).
//! * `SeqCst` loads/stores act as full fences (publish own view to the
//!   global SC frontier, then floor from it) and read the latest store.
//! * RMW strength depends on [`MemoryModel`]: under the default
//!   [`MemoryModel::X86`] **all** RMWs are `lock`-prefixed full barriers
//!   (the strength the vendored epoch shim and the STM fast paths were
//!   written against); under [`MemoryModel::Arm`] a non-`SeqCst` RMW
//!   orders exactly what its orderings promise and never touches the SC
//!   frontier — the `ldadd`/`cas` strength AArch64 actually provides.
//! * `fence(SeqCst)` publishes + floors.  Weaker fences are modeled at
//!   `SeqCst` strength (strictly fewer behaviors: never a false positive,
//!   may miss a bug that needs the distinction — none of the modeled
//!   protocols do).
//!
//! The important consequence: *deleting* an SC fence from a protocol that
//! needs one re-introduces stale-read behaviors the checker can find, even
//! when the racing accesses are on different locations (load-load
//! reordering), which plain sequentially-consistent interleaving
//! exploration cannot express.
//!
//! # Happens-before tracking & race detection
//!
//! In parallel with the view machinery, every task carries a vector clock
//! (see `vclock`) maintained along exactly the same synchronization edges:
//! where a view is attached to a release store the writer's clock is
//! attached too; where an acquire joins a view it joins the clock; where
//! the SC frontier is published/floored a global SC clock is joined the
//! same way; spawn and join edges transfer clocks.  After every *release*
//! point the owner bumps its own component, so whether an access was
//! published before or after a release is decidable from a single epoch
//! comparison (FastTrack).  Shadow locations ([`crate::cell`]) check each
//! access against that order and report unsynchronized pairs as data races
//! with a replay token.
//!
//! # Reduction & budgets
//!
//! DFS optionally layers **sleep sets** (classic Godefroid-style partial
//! order reduction) over the decision tree ([`Options::dpor`]): once a
//! transition's subtree is fully explored at a node, sibling branches put
//! it to sleep and any branch that would run a sleeping transition before
//! an op dependent with it is pruned as redundant.  A wall-clock budget
//! ([`Options::wall`]) bounds whole explorations; hitting it aborts with a
//! diagnostic instead of hanging CI.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};
use std::time::{Duration, Instant};

use crate::memmodel::MemoryModel;
use crate::race::{race_message, ShadowAccess, ShadowState};
use crate::rng::{SplitMix64, GOLDEN};
use crate::token;
use crate::vclock::VClock;

/// Stale loads may reach back at most this many stores behind the latest.
/// Bounding the window keeps DFS branching factors tractable; it only
/// removes behaviors (sound for "no false positives").
pub(crate) const STALE_WINDOW: usize = 4;

/// Sentinel panic payload used to unwind model tasks when an execution is
/// being torn down (truncation, failure elsewhere, replay divergence).
/// Never observable outside the engine.
pub(crate) struct ModelAbort;

pub(crate) fn panic_abort() -> ! {
    panic::panic_any(ModelAbort)
}

// ---------------------------------------------------------------------------
// Public configuration & results
// ---------------------------------------------------------------------------

/// Exploration strategy for [`explore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Bounded exhaustive depth-first enumeration of the decision tree.
    /// Complete for small models (subject to the iteration cap).
    Dfs,
    /// PCT-style randomized priority scheduling: each task gets a random
    /// priority, and `depth` random *priority change points* demote the
    /// running task mid-execution.  Good bug-finding probability on models
    /// too large to enumerate.
    Pct {
        /// Number of priority change points injected per execution.
        depth: usize,
    },
}

/// Configuration for a model-checking run.
#[derive(Clone, Debug)]
pub struct Options {
    /// Exploration strategy.
    pub strategy: Strategy,
    /// Maximum number of executions to explore.
    pub max_iterations: usize,
    /// Per-execution schedule-point cap; executions exceeding it count as
    /// truncated (inconclusive), not failing.
    pub max_steps: usize,
    /// Base seed for randomized strategies.
    pub seed: u64,
    /// When `false`, all loads read the latest store (pure interleaving
    /// exploration, sequentially consistent memory).  Use this for models
    /// that mix instrumented and *uninstrumented* shared state (e.g. full
    /// `Stm::run` transactions, whose TCell data words are real atomics):
    /// the hybrid would otherwise miss the synchronization those real
    /// accesses provide and report spurious stale reads.
    pub value_staleness: bool,
    /// CHESS-style preemption bound for DFS: at most this many *involuntary*
    /// context switches per execution (switches at blocking points are
    /// free).  Keeps exhaustive enumeration polynomial instead of
    /// exponential; empirically almost all concurrency bugs need very few
    /// preemptions.  `None` = unbounded.  Ignored by PCT (priorities
    /// already control switching).
    pub preemption_bound: Option<usize>,
    /// Memory-model strength for RMW operations (see [`MemoryModel`]).
    /// Travels in replay tokens: it changes which stale loads are
    /// reachable, so replay must reproduce it.
    pub memory_model: MemoryModel,
    /// Sleep-set partial order reduction for DFS (off by default).  Sound
    /// only for models whose *shared* effects all pass through instrumented
    /// operations at schedule points (registry transcriptions qualify;
    /// models mutating shared uninstrumented state between schedule points
    /// in order-sensitive ways do not).  Ignored by PCT and replay; pruning
    /// decisions never enter the token, so tokens stay portable.
    pub dpor: bool,
    /// Wall-clock budget for a whole exploration.  When exceeded the run
    /// aborts (reported via [`Report::wall_capped`]) instead of hanging;
    /// [`check`] turns that into a panic with an actionable diagnostic.
    /// `None` = unbounded (replay uses this).
    pub max_wall: Option<Duration>,
    /// Capture a backtrace at every shadow-location access so race reports
    /// carry both access stacks (off by default: captures are expensive and
    /// DFS touches shadow locations millions of times).  Turn on when
    /// re-running a found race for diagnosis.
    pub race_stacks: bool,
}

impl Options {
    /// Exhaustive DFS with a generous default iteration cap.
    pub fn dfs() -> Self {
        Options {
            strategy: Strategy::Dfs,
            max_iterations: 100_000,
            max_steps: 20_000,
            seed: 0,
            value_staleness: true,
            preemption_bound: Some(3),
            memory_model: MemoryModel::default(),
            dpor: false,
            max_wall: Some(Duration::from_secs(300)),
            race_stacks: false,
        }
    }

    /// Seeded PCT-style randomized search.
    pub fn pct(seed: u64) -> Self {
        Options {
            strategy: Strategy::Pct { depth: 3 },
            max_iterations: 2_000,
            max_steps: 50_000,
            seed,
            value_staleness: true,
            preemption_bound: None,
            memory_model: MemoryModel::default(),
            dpor: false,
            max_wall: Some(Duration::from_secs(300)),
            race_stacks: false,
        }
    }

    /// Set the execution cap.
    pub fn iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Set the per-execution schedule-point cap.
    pub fn steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Enable/disable stale-load exploration (see [`Options::value_staleness`]).
    pub fn staleness(mut self, on: bool) -> Self {
        self.value_staleness = on;
        self
    }

    /// Set (or lift, with `None`) the DFS preemption bound.
    pub fn preemptions(mut self, bound: Option<usize>) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Select the memory-model strength (see [`MemoryModel`]).
    pub fn memory(mut self, m: MemoryModel) -> Self {
        self.memory_model = m;
        self
    }

    /// Enable/disable sleep-set partial order reduction for DFS.
    pub fn dpor(mut self, on: bool) -> Self {
        self.dpor = on;
        self
    }

    /// Set (or lift, with `None`) the wall-clock budget.
    pub fn wall(mut self, budget: Option<Duration>) -> Self {
        self.max_wall = budget;
        self
    }

    /// Capture both access stacks in race reports (see
    /// [`Options::race_stacks`]).
    pub fn race_stacks(mut self, on: bool) -> Self {
        self.race_stacks = on;
        self
    }
}

/// A counterexample produced by the checker.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Replay token reproducing the failing schedule via [`replay`].
    pub token: String,
    /// Iteration index at which the failure was found.
    pub iteration: usize,
    /// Human-readable failure message (assertion text, deadlock, …).
    pub message: String,
}

/// Summary of an exploration run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions actually run.
    pub iterations: usize,
    /// Executions cut short by the step cap (inconclusive).
    pub truncated: usize,
    /// `true` when DFS exhausted the whole decision tree within the caps.
    pub exhausted: bool,
    /// First counterexample found, if any.
    pub failure: Option<Failure>,
    /// Branches sleep-set DPOR pruned as redundant (each costs one partial
    /// execution, counted in `iterations` too).  The reduction evidence:
    /// with `dpor` on, `iterations` shrinks and `pruned` says why.
    pub pruned: usize,
    /// `true` when the exploration hit [`Options::max_wall`] and stopped
    /// early (everything reported up to that point still holds).
    pub wall_capped: bool,
}

// ---------------------------------------------------------------------------
// Engine state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RunState {
    Runnable,
    /// Blocked joining the given task.
    Blocked(usize),
    Finished,
}

struct Task {
    run: RunState,
    /// Per-location floor: oldest store index this task may still read.
    seen: Vec<usize>,
    /// PCT priority (higher runs first); unused by DFS/replay.
    priority: i64,
    /// Happens-before clock (maintained along the same edges as `seen`).
    vc: VClock,
}

struct Store {
    value: u64,
    /// Release view attached by the writer (None for relaxed stores).
    view: Option<Arc<Vec<usize>>>,
    /// Writer's clock at the release (attached iff `view` is).
    vc: Option<Arc<VClock>>,
}

struct Location {
    stores: Vec<Store>,
}

/// Coarse signature of one instrumented operation, for the DPOR dependence
/// relation.  Atomic locations and shadow locations live in separate `loc`
/// namespaces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct OpSig {
    kind: SigKind,
    loc: u32,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SigKind {
    Load,
    /// Store or RMW (RMWs are classified as writes even when a CAS fails in
    /// the observed branch: the same transition may succeed in a sibling
    /// interleaving, so the conservative class keeps the reduction sound).
    Write,
    Fence,
    CellRead,
    CellWrite,
    Yield,
}

/// May the order of two adjacent operations affect the outcome?  Errs on
/// the side of `true`; every `false` must commute.
fn dependent(a: OpSig, b: OpSig) -> bool {
    use SigKind::*;
    match (a.kind, b.kind) {
        (Yield, _) | (_, Yield) => false,
        // Fences publish/floor the SC frontier: order-sensitive with every
        // memory op and with each other.
        (Fence, _) | (_, Fence) => true,
        (Load, Load) | (CellRead, CellRead) => false,
        (Load, Write) | (Write, Load) | (Write, Write) => a.loc == b.loc,
        (CellRead, CellWrite) | (CellWrite, CellRead) | (CellWrite, CellWrite) => a.loc == b.loc,
        // Atomic vs shadow namespaces never alias.
        _ => false,
    }
}

/// One DFS decision-tree node: the branch taken and the branching factor,
/// plus (under DPOR) the sleep-set bookkeeping for this tree position.
#[derive(Clone, Debug, Default)]
struct DfsNode {
    chosen: u32,
    options: u32,
    /// The transition actually taken from this node — chosen task and the
    /// signature of the first op it executed — filled in during the run,
    /// moved into `sleep` when the odometer advances past this choice.
    taken: Option<(u32, Option<OpSig>)>,
    /// Transitions whose subtrees are fully explored from this node:
    /// sibling branches running one of these before a dependent op are
    /// redundant and get pruned.
    sleep: Vec<(u32, OpSig)>,
}

enum Chooser {
    Dfs {
        path: Vec<DfsNode>,
        cursor: usize,
    },
    Rand {
        rng: SplitMix64,
        change_points: Vec<usize>,
        next_cp: usize,
        min_priority: i64,
    },
    Replay {
        choices: Vec<u32>,
        cursor: usize,
    },
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    Aborting,
}

pub(crate) struct State {
    phase: Phase,
    truncated: bool,
    failure: Option<String>,
    tasks: Vec<Task>,
    current: usize,
    locs: Vec<Location>,
    /// Per-location SC frontier: highest store index published by an SC
    /// fence / SC access / full-barrier RMW.
    sc_visible: Vec<usize>,
    /// Clock mirror of `sc_visible`: joined on SC publish, floored from on
    /// SC floor.
    sc_vc: VClock,
    /// Detector state for registered shadow locations.
    shadows: Vec<ShadowState>,
    steps: usize,
    max_steps: usize,
    staleness: bool,
    memory_model: MemoryModel,
    preemptions: usize,
    preemption_bound: usize,
    /// Sleep-set DPOR enabled (DFS only).
    dpor: bool,
    /// Running sleep set: transitions (task, next-op signature) covered by
    /// earlier branches; woken (removed) when a dependent op executes.
    cur_sleep: Vec<(usize, OpSig)>,
    /// DFS node index whose `taken` signature the next executed op fills.
    pending_sig: Option<usize>,
    /// This execution was pruned as sleep-set-redundant.
    pruned: bool,
    /// Absolute wall-clock deadline for the whole exploration.
    deadline: Option<Instant>,
    wall_capped: bool,
    race_stacks: bool,
    chooser: Chooser,
    /// Every decision taken this execution, in order (the replay token).
    record: Vec<u32>,
}

pub(crate) struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    /// Distinguishes executions so per-atomic location caches self-invalidate.
    pub(crate) exec_id: u64,
    /// OS handles of spawned model threads, joined at execution teardown.
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

static EXEC_IDS: StdAtomicU64 = StdAtomicU64::new(1);

impl Shared {
    fn new(opts: &Options, chooser: Chooser, deadline: Option<Instant>) -> Self {
        let mut chooser = chooser;
        let priority = match &mut chooser {
            Chooser::Rand { rng, .. } => (rng.next_u64() >> 2) as i64,
            _ => 0,
        };
        let mut vc = VClock::new();
        vc.bump(0);
        Shared {
            state: Mutex::new(State {
                phase: Phase::Running,
                truncated: false,
                failure: None,
                tasks: vec![Task {
                    run: RunState::Runnable,
                    seen: Vec::new(),
                    priority,
                    vc,
                }],
                current: 0,
                locs: Vec::new(),
                sc_visible: Vec::new(),
                sc_vc: VClock::new(),
                shadows: Vec::new(),
                steps: 0,
                max_steps: opts.max_steps,
                staleness: opts.value_staleness,
                memory_model: opts.memory_model,
                preemptions: 0,
                preemption_bound: opts.preemption_bound.unwrap_or(usize::MAX),
                dpor: opts.dpor && matches!(opts.strategy, Strategy::Dfs),
                cur_sleep: Vec::new(),
                pending_sig: None,
                pruned: false,
                deadline,
                wall_capped: false,
                race_stacks: opts.race_stacks,
                chooser,
                record: Vec::new(),
            }),
            cv: Condvar::new(),
            exec_id: EXEC_IDS.fetch_add(1, StdOrdering::Relaxed),
            os_handles: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn notify(&self) {
        self.cv.notify_all();
    }

    /// Park until this task holds the token again (or the execution aborts).
    fn wait_for_token<'a>(
        &'a self,
        mut st: MutexGuard<'a, State>,
        me: usize,
    ) -> MutexGuard<'a, State> {
        let mut stalls = 0u32;
        loop {
            if st.phase != Phase::Running {
                drop(st);
                panic_abort();
            }
            if st.current == me {
                return st;
            }
            let (g, to) = self
                .cv
                .wait_timeout(st, Duration::from_secs(10))
                .unwrap_or_else(|e| e.into_inner());
            st = g;
            if to.timed_out() {
                stalls += 1;
                if stalls >= 6 {
                    st.fail("internal: scheduler stall (lost wakeup?)".into());
                    self.notify();
                    drop(st);
                    panic_abort();
                }
            }
        }
    }

    /// One schedule point: bump the step counter and (maybe) hand the token
    /// to another runnable task.  Every instrumented operation calls this
    /// first; the operation itself executes once the token returns.
    pub(crate) fn schedule(&self, me: usize) {
        let mut st = self.lock();
        if st.phase != Phase::Running {
            drop(st);
            panic_abort();
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            st.truncated = true;
            st.phase = Phase::Aborting;
            self.notify();
            drop(st);
            panic_abort();
        }
        // Wall-clock budget: abort the whole exploration rather than hang.
        if let Some(dl) = st.deadline {
            if Instant::now() >= dl {
                st.wall_capped = true;
                st.truncated = true;
                st.phase = Phase::Aborting;
                self.notify();
                drop(st);
                panic_abort();
            }
        }
        // PCT: a change point demotes whoever is running when it fires.
        let steps = st.steps;
        if let Chooser::Rand {
            change_points,
            next_cp,
            min_priority,
            ..
        } = &mut st.chooser
        {
            // At most one change point fires per schedule call; any others
            // already due fire on subsequent steps (keeps demotion gradual).
            if *next_cp < change_points.len() && change_points[*next_cp] <= steps {
                *next_cp += 1;
                *min_priority -= 1;
                let p = *min_priority;
                st.tasks[me].priority = p;
            }
        }
        let runnable = st.runnable();
        debug_assert!(runnable.contains(&me));
        // CHESS-style preemption bound: once exhausted, the running task
        // keeps the token at its own schedule points (switches at blocking
        // points — join, finish — stay free).  The restriction is a pure
        // function of the decision prefix, so DFS and replay agree on it.
        if runnable.len() > 1 && st.preemptions < st.preemption_bound {
            let k = st.decide_thread(&runnable);
            let next = runnable[k];
            if next != me {
                st.preemptions += 1;
                st.current = next;
                self.notify();
                let st = self.wait_for_token(st, me);
                drop(st);
            }
        }
    }

    /// Register (or re-register after a stale cache) a memory location.
    pub(crate) fn register_loc(&self, initial: u64) -> usize {
        let mut st = self.lock();
        st.locs.push(Location {
            stores: vec![Store {
                value: initial,
                view: None,
                vc: None,
            }],
        });
        st.sc_visible.push(0);
        st.locs.len() - 1
    }

    /// DPOR prologue for one executed op: prune branches that schedule a
    /// sleeping transition, record the op's signature on the DFS node that
    /// chose it, and wake sleepers dependent with it.
    fn op_prologue(&self, st: &mut State, me: usize, sig: OpSig) {
        if !st.dpor {
            return;
        }
        if st.cur_sleep.iter().any(|&(t, _)| t == me) {
            // `me` was fully explored from the state that put it to sleep
            // and no dependent op has run since: this branch is a
            // reordering of an already-explored one.  Truncate the DFS path
            // to the consumed prefix so the odometer advances the last real
            // decision instead of a stale tail.
            st.pruned = true;
            if let Chooser::Dfs { path, cursor } = &mut st.chooser {
                path.truncate(*cursor);
            }
            st.phase = Phase::Aborting;
            self.notify();
            panic_abort();
        }
        if let Some(idx) = st.pending_sig.take() {
            if let Chooser::Dfs { path, .. } = &mut st.chooser {
                if let Some(node) = path.get_mut(idx) {
                    node.taken = Some((me as u32, Some(sig)));
                }
            }
        }
        st.cur_sleep.retain(|&(_, s)| !dependent(s, sig));
    }

    pub(crate) fn op_load(&self, me: usize, loc: usize, ord: StdOrdering) -> u64 {
        self.schedule(me);
        let mut st = self.lock();
        st.check_running();
        self.op_prologue(
            &mut st,
            me,
            OpSig {
                kind: SigKind::Load,
                loc: loc as u32,
            },
        );
        let val = st.load(me, loc, ord);
        drop(st);
        val
    }

    /// Returns the stored value (for the caller's real-atomic write-through).
    pub(crate) fn op_store(&self, me: usize, loc: usize, val: u64, ord: StdOrdering) {
        self.schedule(me);
        let mut st = self.lock();
        st.check_running();
        self.op_prologue(
            &mut st,
            me,
            OpSig {
                kind: SigKind::Write,
                loc: loc as u32,
            },
        );
        st.store(me, loc, val, ord);
    }

    /// Generic RMW.  `f` maps the read value to `Some(new)` (apply) or
    /// `None` (CAS failure).  `success`/`failure` are the orderings the
    /// source operation named; under [`MemoryModel::X86`] they are ignored
    /// (every RMW is a full barrier), under [`MemoryModel::Arm`] they bound
    /// exactly what the RMW orders.  Returns `(read_value, applied,
    /// latest)` where `latest` is the location's new modification-order
    /// head, for the caller's write-through into the backing real atomic.
    pub(crate) fn op_rmw(
        &self,
        me: usize,
        loc: usize,
        success: StdOrdering,
        failure: StdOrdering,
        f: impl FnOnce(u64) -> Option<u64>,
    ) -> (u64, bool, u64) {
        self.schedule(me);
        let mut st = self.lock();
        st.check_running();
        self.op_prologue(
            &mut st,
            me,
            OpSig {
                kind: SigKind::Write,
                loc: loc as u32,
            },
        );
        st.rmw(me, loc, success, failure, f)
    }

    pub(crate) fn op_fence(&self, me: usize, _ord: StdOrdering) {
        self.schedule(me);
        let mut st = self.lock();
        st.check_running();
        self.op_prologue(
            &mut st,
            me,
            OpSig {
                kind: SigKind::Fence,
                loc: 0,
            },
        );
        st.sc_publish(me);
        st.vc_sc_publish(me);
        st.sc_floor(me);
        st.vc_sc_floor(me);
    }

    /// Explicit yield: a pure schedule point.
    pub(crate) fn op_yield(&self, me: usize) {
        self.schedule(me);
        let mut st = self.lock();
        st.check_running();
        self.op_prologue(
            &mut st,
            me,
            OpSig {
                kind: SigKind::Yield,
                loc: 0,
            },
        );
    }

    /// Register a shadow (race-detected non-atomic) location.
    pub(crate) fn register_shadow(&self, name: &'static str) -> usize {
        let mut st = self.lock();
        st.shadows.push(ShadowState {
            name,
            write: None,
            reads: Vec::new(),
        });
        st.shadows.len() - 1
    }

    /// Visible read of an [`crate::cell::UnsyncCell`]: a schedule point +
    /// detector check.
    pub(crate) fn op_cell_read(&self, me: usize, sid: usize) {
        self.schedule(me);
        let mut st = self.lock();
        st.check_running();
        self.op_prologue(
            &mut st,
            me,
            OpSig {
                kind: SigKind::CellRead,
                loc: sid as u32,
            },
        );
        let res = st.shadow_op(me, sid, ShadowOp::Read { invisible: false });
        self.finish_shadow_op(st, res);
    }

    /// Write of an [`crate::cell::UnsyncCell`]: a schedule point + detector
    /// check against prior writes *and* reads.
    pub(crate) fn op_cell_write(&self, me: usize, sid: usize) {
        self.schedule(me);
        let mut st = self.lock();
        st.check_running();
        self.op_prologue(
            &mut st,
            me,
            OpSig {
                kind: SigKind::CellWrite,
                loc: sid as u32,
            },
        );
        let res = st.shadow_op(me, sid, ShadowOp::Write { check_reads: true });
        self.finish_shadow_op(st, res);
    }

    /// Copy-on-write slot install: detector check only (no schedule point,
    /// no read-set check — see [`crate::cell::ShadowSlot`]).
    pub(crate) fn op_slot_write(&self, me: usize, sid: usize) {
        let mut st = self.lock();
        st.check_running();
        let res = st.shadow_op(me, sid, ShadowOp::Write { check_reads: false });
        self.finish_shadow_op(st, res);
    }

    /// Validated copy-on-write slot read: detector check only (invisible —
    /// recorded reads would falsely block later installs).
    pub(crate) fn op_slot_read_confirmed(&self, me: usize, sid: usize) {
        let mut st = self.lock();
        st.check_running();
        let res = st.shadow_op(me, sid, ShadowOp::Read { invisible: true });
        self.finish_shadow_op(st, res);
    }

    fn finish_shadow_op(&self, mut st: MutexGuard<'_, State>, res: Result<(), String>) {
        if let Err(msg) = res {
            st.fail(msg);
            self.notify();
            drop(st);
            panic_abort();
        }
    }

    /// Register a new model task; returns its id.  Called by `thread::spawn`
    /// while the parent holds the token, so it is not itself a schedule
    /// point — the child simply becomes runnable.
    pub(crate) fn add_task(&self) -> usize {
        let mut st = self.lock();
        let priority = match &mut st.chooser {
            Chooser::Rand { rng, .. } => (rng.next_u64() >> 2) as i64,
            _ => 0,
        };
        // Spawn edge: the child inherits everything the parent has seen
        // (seen-floor inheritance is implicit — the child starts with empty
        // floors, which only *adds* stale-read behaviors; the clock edge
        // must be explicit so the detector knows parent-before-spawn
        // accesses are ordered before the child).  Spawn is a release point
        // for the parent: bump after handing the clock over.
        let parent = st.current;
        let child_id = st.tasks.len();
        let mut vc = st.tasks[parent].vc.clone();
        vc.bump(child_id);
        st.tasks[parent].vc.bump(parent);
        st.tasks.push(Task {
            run: RunState::Runnable,
            seen: Vec::new(),
            priority,
            vc,
        });
        child_id
    }

    pub(crate) fn push_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.os_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(h);
    }

    /// Entry point for a freshly spawned model task's OS thread: wait until
    /// first scheduled.
    pub(crate) fn wait_first_schedule(&self, me: usize) {
        let st = self.lock();
        let st = self.wait_for_token(st, me);
        drop(st);
    }

    /// Mark `me` finished, wake joiners, and pass the token on.
    pub(crate) fn finish_task(&self, me: usize) {
        let mut st = self.lock();
        st.tasks[me].run = RunState::Finished;
        for t in &mut st.tasks {
            if t.run == RunState::Blocked(me) {
                t.run = RunState::Runnable;
            }
        }
        if st.phase == Phase::Running {
            let runnable = st.runnable();
            if runnable.is_empty() {
                if st
                    .tasks
                    .iter()
                    .any(|t| matches!(t.run, RunState::Blocked(_)))
                {
                    st.fail("deadlock: all live tasks blocked on join".into());
                }
                // else: every task finished; nothing left to run.
            } else {
                let k = if runnable.len() > 1 {
                    st.decide_thread(&runnable)
                } else {
                    0
                };
                st.current = runnable[k];
            }
        }
        self.notify();
    }

    /// Record a real (non-sentinel) panic from a model task as the
    /// execution's failure and begin teardown.
    pub(crate) fn fail_from_panic(&self, msg: String) {
        let mut st = self.lock();
        st.fail(msg);
        self.notify();
    }

    /// Block `me` until `target` finishes.  Returns normally once the join
    /// can proceed; unwinds with `ModelAbort` if the execution aborts.
    pub(crate) fn join_task(&self, me: usize, target: usize) {
        let mut st = self.lock();
        if st.phase != Phase::Running {
            drop(st);
            panic_abort();
        }
        if st.tasks[target].run == RunState::Finished {
            st.vc_join_task(me, target);
            return;
        }
        st.tasks[me].run = RunState::Blocked(target);
        let runnable = st.runnable();
        if runnable.is_empty() {
            st.fail("deadlock: all live tasks blocked on join".into());
            self.notify();
            drop(st);
            panic_abort();
        }
        let k = if runnable.len() > 1 {
            st.decide_thread(&runnable)
        } else {
            0
        };
        st.current = runnable[k];
        self.notify();
        let mut st = self.wait_for_token(st, me);
        // Join edge: everything the joined task did happens-before the
        // join's return.
        st.vc_join_task(me, target);
        drop(st);
    }
}

impl State {
    fn check_running(&self) {
        if self.phase != Phase::Running {
            panic_abort();
        }
    }

    fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.phase = Phase::Aborting;
    }

    fn runnable(&self) -> Vec<usize> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.run == RunState::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    /// Decide which runnable task runs next; records the decision.
    fn decide_thread(&mut self, runnable: &[usize]) -> usize {
        debug_assert!(runnable.len() > 1);
        let mut dfs_node: Option<usize> = None;
        let k = match &mut self.chooser {
            Chooser::Dfs { path, cursor } => {
                let k = if *cursor < path.len() {
                    let node = &path[*cursor];
                    if node.options != runnable.len() as u32 {
                        // The replayed prefix diverged (nondeterminism in the
                        // model body, e.g. address-dependent hashing).  Clamp
                        // and keep going; DFS completeness is best-effort in
                        // that case.
                        (node.chosen as usize).min(runnable.len() - 1)
                    } else {
                        node.chosen as usize
                    }
                } else {
                    path.push(DfsNode {
                        chosen: 0,
                        options: runnable.len() as u32,
                        ..DfsNode::default()
                    });
                    0
                };
                dfs_node = Some(*cursor);
                *cursor += 1;
                k
            }
            Chooser::Rand { .. } => {
                // Highest priority runs; ties broken by task id.
                let mut best = 0usize;
                for (i, &t) in runnable.iter().enumerate() {
                    if self.tasks[t].priority > self.tasks[runnable[best]].priority {
                        best = i;
                    }
                }
                best
            }
            Chooser::Replay { choices, cursor } => {
                if *cursor >= choices.len() || choices[*cursor] as usize >= runnable.len() {
                    let msg = format!(
                        "replay divergence: token does not match this model \
                         (thread decision {} of {}, {} runnable{})",
                        *cursor,
                        choices.len(),
                        runnable.len(),
                        if *cursor < choices.len() {
                            format!(", recorded choice {}", choices[*cursor])
                        } else {
                            String::new()
                        },
                    );
                    self.fail(msg);
                    panic_abort();
                }
                let k = choices[*cursor] as usize;
                *cursor += 1;
                k
            }
        };
        self.record.push(k as u32);
        if self.dpor {
            if let Some(idx) = dfs_node {
                // Entering this tree position: its accumulated sleep set
                // (transitions exhausted by earlier sibling branches) joins
                // the running set, and the node waits for the chosen
                // transition's first op signature.
                if let Chooser::Dfs { path, .. } = &self.chooser {
                    let merged: Vec<(u32, OpSig)> = path[idx].sleep.clone();
                    for (t, sig) in merged {
                        let t = t as usize;
                        if !self.cur_sleep.iter().any(|&(ct, cs)| ct == t && cs == sig) {
                            self.cur_sleep.push((t, sig));
                        }
                    }
                }
                self.pending_sig = Some(idx);
            }
        }
        k
    }

    /// Decide which of `options` readable stores a stale-capable load
    /// observes (0 = newest); records the decision.
    fn decide_value(&mut self, options: usize) -> usize {
        debug_assert!(options > 1);
        let k = match &mut self.chooser {
            Chooser::Dfs { path, cursor } => {
                let k = if *cursor < path.len() {
                    (path[*cursor].chosen as usize).min(options - 1)
                } else {
                    path.push(DfsNode {
                        chosen: 0,
                        options: options as u32,
                        ..DfsNode::default()
                    });
                    0
                };
                *cursor += 1;
                k
            }
            Chooser::Rand { rng, .. } => {
                // Bias toward the newest store; occasionally reach back.
                if rng.next_u64() % 4 != 0 {
                    0
                } else {
                    1 + rng.next_below(options - 1)
                }
            }
            Chooser::Replay { choices, cursor } => {
                if *cursor >= choices.len() || choices[*cursor] as usize >= options {
                    let msg = format!(
                        "replay divergence: token does not match this model \
                         (value decision {} of {}, {} options)",
                        *cursor,
                        choices.len(),
                        options,
                    );
                    self.fail(msg);
                    panic_abort();
                }
                let k = choices[*cursor] as usize;
                *cursor += 1;
                k
            }
        };
        self.record.push(k as u32);
        k
    }

    fn seen_floor(&mut self, task: usize, loc: usize) -> usize {
        let seen = &mut self.tasks[task].seen;
        if seen.len() <= loc {
            seen.resize(loc + 1, 0);
        }
        seen[loc]
    }

    fn raise_floor(&mut self, task: usize, loc: usize, idx: usize) {
        let seen = &mut self.tasks[task].seen;
        if seen.len() <= loc {
            seen.resize(loc + 1, 0);
        }
        if seen[loc] < idx {
            seen[loc] = idx;
        }
    }

    fn join_view(&mut self, task: usize, view: &[usize]) {
        let seen = &mut self.tasks[task].seen;
        if seen.len() < view.len() {
            seen.resize(view.len(), 0);
        }
        for (s, &v) in seen.iter_mut().zip(view.iter()) {
            if *s < v {
                *s = v;
            }
        }
    }

    fn snapshot_view(&self, task: usize) -> Arc<Vec<usize>> {
        Arc::new(self.tasks[task].seen.clone())
    }

    /// Clock mirror of a release: snapshot the clock for attachment, then
    /// bump past the published time (events after the release must carry an
    /// epoch the released clock does not cover).
    fn vc_attach(&mut self, task: usize) -> Arc<VClock> {
        let snap = Arc::new(self.tasks[task].vc.clone());
        self.tasks[task].vc.bump(task);
        snap
    }

    /// Clock mirror of [`State::sc_publish`], including the post-publish
    /// bump (publishing to the SC frontier is a release point).
    fn vc_sc_publish(&mut self, task: usize) {
        let vc = self.tasks[task].vc.clone();
        self.sc_vc.join(&vc);
        self.tasks[task].vc.bump(task);
    }

    /// Clock mirror of [`State::sc_floor`].
    fn vc_sc_floor(&mut self, task: usize) {
        let sc = self.sc_vc.clone();
        self.tasks[task].vc.join(&sc);
    }

    /// Join edge from a finished (or finishing) task into a joiner.
    fn vc_join_task(&mut self, me: usize, target: usize) {
        let tvc = self.tasks[target].vc.clone();
        self.tasks[me].vc.join(&tvc);
    }

    /// One access to a shadow location: stamp it with the task's current
    /// epoch, check it against the location's history, and record it.
    /// Returns the rendered race message on a detected race.
    fn shadow_op(&mut self, me: usize, sid: usize, op: ShadowOp) -> Result<(), String> {
        let stack = if self.race_stacks {
            Some(
                std::backtrace::Backtrace::force_capture()
                    .to_string()
                    .into_boxed_str(),
            )
        } else {
            None
        };
        let access = ShadowAccess {
            epoch: self.tasks[me].vc.epoch(me),
            step: self.steps,
            stack,
        };
        let State { tasks, shadows, .. } = self;
        let vc = &tasks[me].vc;
        let shadow = &mut shadows[sid];
        let (kind, report) = match op {
            ShadowOp::Read { invisible } => ("read", shadow.on_read(vc, access.clone(), invisible)),
            ShadowOp::Write { check_reads } => {
                ("write", shadow.on_write(vc, access.clone(), check_reads))
            }
        };
        match report {
            None => Ok(()),
            Some(r) => Err(race_message(shadow.name, &r, kind, &access)),
        }
    }

    /// Publish this task's view into the global SC frontier.
    fn sc_publish(&mut self, task: usize) {
        let seen = &self.tasks[task].seen;
        for (loc, &s) in seen.iter().enumerate() {
            if self.sc_visible[loc] < s {
                self.sc_visible[loc] = s;
            }
        }
    }

    /// Floor this task's view from the global SC frontier.
    fn sc_floor(&mut self, task: usize) {
        let sc = &self.sc_visible;
        let seen = &mut self.tasks[task].seen;
        if seen.len() < sc.len() {
            seen.resize(sc.len(), 0);
        }
        for (s, &v) in seen.iter_mut().zip(sc.iter()) {
            if *s < v {
                *s = v;
            }
        }
    }

    fn load(&mut self, task: usize, loc: usize, ord: StdOrdering) -> u64 {
        let sc = matches!(ord, StdOrdering::SeqCst);
        if sc {
            self.sc_publish(task);
            self.vc_sc_publish(task);
            self.sc_floor(task);
            self.vc_sc_floor(task);
        }
        let n = self.locs[loc].stores.len();
        let floor = self
            .seen_floor(task, loc)
            .max(n.saturating_sub(STALE_WINDOW));
        let idx = if sc || !self.staleness || n - floor == 1 {
            n - 1
        } else {
            let k = self.decide_value(n - floor);
            n - 1 - k
        };
        self.raise_floor(task, loc, idx);
        let acquire = matches!(
            ord,
            StdOrdering::Acquire | StdOrdering::AcqRel | StdOrdering::SeqCst
        );
        let (value, view, svc) = {
            let store = &self.locs[loc].stores[idx];
            (store.value, store.view.clone(), store.vc.clone())
        };
        if acquire {
            if let Some(view) = view {
                self.join_view(task, &view);
            }
            if let Some(svc) = svc {
                self.tasks[task].vc.join(&svc);
            }
        }
        value
    }

    fn store(&mut self, task: usize, loc: usize, val: u64, ord: StdOrdering) {
        let release = matches!(
            ord,
            StdOrdering::Release | StdOrdering::AcqRel | StdOrdering::SeqCst
        );
        let (view, svc) = if release {
            (Some(self.snapshot_view(task)), Some(self.vc_attach(task)))
        } else {
            (None, None)
        };
        self.locs[loc].stores.push(Store {
            value: val,
            view,
            vc: svc,
        });
        let idx = self.locs[loc].stores.len() - 1;
        self.raise_floor(task, loc, idx);
        if matches!(ord, StdOrdering::SeqCst) {
            // An SC store is a full barrier in both memory models.
            self.sc_publish(task);
            self.vc_sc_publish(task);
            self.sc_floor(task);
            self.vc_sc_floor(task);
        }
    }

    fn rmw(
        &mut self,
        task: usize,
        loc: usize,
        success: StdOrdering,
        failure: StdOrdering,
        f: impl FnOnce(u64) -> Option<u64>,
    ) -> (u64, bool, u64) {
        // Under X86 (and for any SeqCst RMW in either model) the RMW is a
        // full `lock`-prefix barrier: full fence, read the
        // modification-order head, full fence on the new store.  Under Arm
        // a weaker RMW still reads the head (C11 RMW atomicity) but orders
        // only what its orderings promise and never touches the SC
        // frontier.
        let full = self.memory_model == MemoryModel::X86
            || matches!(success, StdOrdering::SeqCst)
            || matches!(failure, StdOrdering::SeqCst);
        if full {
            self.sc_publish(task);
            self.vc_sc_publish(task);
            self.sc_floor(task);
            self.vc_sc_floor(task);
        }
        let idx = self.locs[loc].stores.len() - 1;
        let (cur, view, svc) = {
            let store = &self.locs[loc].stores[idx];
            (store.value, store.view.clone(), store.vc.clone())
        };
        self.raise_floor(task, loc, idx);
        let applied = f(cur);
        let eff = if applied.is_some() { success } else { failure };
        let acquire = full || matches!(eff, StdOrdering::Acquire | StdOrdering::AcqRel);
        if acquire {
            if let Some(view) = view {
                self.join_view(task, &view);
            }
            if let Some(svc) = svc {
                self.tasks[task].vc.join(&svc);
            }
        }
        match applied {
            Some(new) => {
                let release = full || matches!(success, StdOrdering::Release | StdOrdering::AcqRel);
                let (view, svc) = if release {
                    (Some(self.snapshot_view(task)), Some(self.vc_attach(task)))
                } else {
                    (None, None)
                };
                self.locs[loc].stores.push(Store {
                    value: new,
                    view,
                    vc: svc,
                });
                let nidx = self.locs[loc].stores.len() - 1;
                self.raise_floor(task, loc, nidx);
                if full {
                    self.sc_publish(task);
                    self.vc_sc_publish(task);
                }
                (cur, true, new)
            }
            None => (cur, false, cur),
        }
    }
}

/// Kind of shadow-location access (see [`crate::cell`]).
enum ShadowOp {
    Read { invisible: bool },
    Write { check_reads: bool },
}

// ---------------------------------------------------------------------------
// Thread-local task context
// ---------------------------------------------------------------------------

/// Identifies the model task running on the current OS thread.
#[derive(Clone)]
pub(crate) struct TaskCtx {
    pub(crate) shared: Arc<Shared>,
    pub(crate) task: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<TaskCtx>> = const { std::cell::RefCell::new(None) };
}

/// Clone the current task context out of TLS (cheap: one Arc bump).
pub(crate) fn ctx() -> Option<TaskCtx> {
    // While unwinding (including the `ModelAbort` teardown of an execution)
    // destructors may touch instrumented atomics; dispatching them to the
    // engine would panic again inside the unwind and abort the process.
    // Degrade to the real atomics instead — write-through keeps them
    // coherent with the model's modification-order head, and an aborting
    // execution records no further decisions anyway.
    if std::thread::panicking() {
        return None;
    }
    CTX.try_with(|c| c.borrow().clone()).ok().flatten()
}

pub(crate) fn set_ctx(v: Option<TaskCtx>) {
    CTX.with(|c| *c.borrow_mut() = v);
}

fn in_model_ctx() -> bool {
    CTX.try_with(|c| c.borrow().is_some()).unwrap_or(false)
}

// ---------------------------------------------------------------------------
// Panic-hook plumbing
// ---------------------------------------------------------------------------

/// Silence panic output for (a) the `ModelAbort` sentinel and (b) expected
/// assertion failures inside model executions — the engine captures the
/// message and reports it (with a replay token) instead.  Panics outside
/// model executions keep the previous hook's behavior.
fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ModelAbort>().is_some() || in_model_ctx() {
                return;
            }
            prev(info);
        }));
    });
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model task panicked (non-string payload)".to_string()
    }
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

struct IterationOutcome {
    failure: Option<String>,
    truncated: bool,
    pruned: bool,
    wall_capped: bool,
    record: Vec<u32>,
    /// Schedule points this execution consumed (PCT change-point sizing).
    steps: usize,
    /// DFS decision path actually taken (for the odometer).
    dfs_path: Option<Vec<DfsNode>>,
}

fn run_iteration<F: Fn()>(
    opts: &Options,
    chooser: Chooser,
    deadline: Option<Instant>,
    body: &F,
) -> IterationOutcome {
    let shared = Arc::new(Shared::new(opts, chooser, deadline));
    set_ctx(Some(TaskCtx {
        shared: Arc::clone(&shared),
        task: 0,
    }));
    let res = panic::catch_unwind(AssertUnwindSafe(body));
    set_ctx(None);
    {
        let mut st = shared.lock();
        st.tasks[0].run = RunState::Finished;
        match res {
            Ok(()) => {
                if st.phase == Phase::Running
                    && st.tasks.iter().any(|t| t.run != RunState::Finished)
                {
                    st.fail(
                        "model body returned with live model threads (join every \
                         handle before returning)"
                            .into(),
                    );
                }
            }
            Err(p) => {
                if p.downcast_ref::<ModelAbort>().is_none() {
                    st.fail(panic_message(&*p));
                }
            }
        }
        shared.notify();
    }
    // Tear down worker OS threads; under abort they wake, unwind with the
    // sentinel, and exit their closure.
    let handles = std::mem::take(&mut *shared.os_handles.lock().unwrap_or_else(|e| e.into_inner()));
    for h in handles {
        let _ = h.join();
    }
    let mut st = shared.lock();
    IterationOutcome {
        failure: st.failure.take(),
        truncated: st.truncated,
        pruned: st.pruned,
        wall_capped: st.wall_capped,
        record: std::mem::take(&mut st.record),
        steps: st.steps,
        dfs_path: match &mut st.chooser {
            Chooser::Dfs { path, .. } => Some(std::mem::take(path)),
            _ => None,
        },
    }
}

/// Advance the DFS odometer to the next unexplored path.  Returns `false`
/// when the tree is exhausted.  Sleep-set bookkeeping happens here: when a
/// choice is advanced past, the transition it took (recorded during the
/// run) goes to sleep for the node's remaining branches; popping a node
/// discards its set (a different tree position is a different state).
fn advance_dfs(path: &mut Vec<DfsNode>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.chosen + 1 < last.options {
            if let Some((task, Some(sig))) = last.taken.take() {
                last.sleep.push((task, sig));
            }
            last.taken = None;
            last.chosen += 1;
            return true;
        }
        path.pop();
    }
    false
}

/// Explore interleavings of `body` under the given options.
///
/// `body` is executed once per iteration on the calling thread (task 0); it
/// may spawn model threads via [`crate::thread::spawn`] and must join them
/// before returning.  Exploration stops at the first counterexample.
pub fn explore<F: Fn()>(opts: &Options, body: F) -> Report {
    install_panic_hook();
    assert!(
        !in_model_ctx(),
        "nested model executions are not supported (explore inside explore)"
    );
    let mut report = Report {
        iterations: 0,
        truncated: 0,
        exhausted: false,
        failure: None,
        pruned: 0,
        wall_capped: false,
    };
    // One absolute deadline for the whole exploration (not per iteration).
    let deadline = opts.max_wall.map(|d| Instant::now() + d);
    let mut dfs_path: Vec<DfsNode> = Vec::new();
    // PCT change points only matter if they land inside the execution, so
    // sample them over the previous iteration's observed length (CHESS/PCT
    // both learn the length the same way) rather than the step *cap*.
    let mut est_len: usize = 32;
    for iter in 0..opts.max_iterations {
        let chooser = match opts.strategy {
            Strategy::Dfs => Chooser::Dfs {
                path: std::mem::take(&mut dfs_path),
                cursor: 0,
            },
            Strategy::Pct { depth } => {
                let mut rng =
                    SplitMix64::new(opts.seed ^ (iter as u64).wrapping_mul(GOLDEN) ^ 0x5eed);
                let mut cps: Vec<usize> = (0..depth).map(|_| 1 + rng.next_below(est_len)).collect();
                cps.sort_unstable();
                Chooser::Rand {
                    rng,
                    change_points: cps,
                    next_cp: 0,
                    min_priority: 0,
                }
            }
        };
        let out = run_iteration(opts, chooser, deadline, &body);
        est_len = out.steps.clamp(8, opts.max_steps);
        report.iterations = iter + 1;
        if out.wall_capped {
            report.wall_capped = true;
            return report;
        }
        if out.pruned {
            report.pruned += 1;
        } else if out.truncated {
            report.truncated += 1;
        }
        if let Some(message) = out.failure {
            report.failure = Some(Failure {
                token: token::encode(
                    &out.record,
                    token::TokenHeader {
                        preemption_bound: opts.preemption_bound,
                        value_staleness: opts.value_staleness,
                        memory_model: opts.memory_model,
                    },
                ),
                iteration: iter,
                message,
            });
            return report;
        }
        if let Some(mut path) = out.dfs_path {
            if !advance_dfs(&mut path) {
                report.exhausted = true;
                return report;
            }
            dfs_path = path;
        }
        if let Some(dl) = deadline {
            if Instant::now() >= dl {
                report.wall_capped = true;
                return report;
            }
        }
    }
    report
}

/// Re-execute a single schedule from a replay token.  The body must be the
/// same model the token was produced from; divergence is reported as a
/// failure rather than silently exploring something else.
pub fn replay<F: Fn()>(token_str: &str, body: F) -> Report {
    install_panic_hook();
    assert!(!in_model_ctx(), "nested model executions are not supported");
    let (header, choices) = match token::decode(token_str) {
        Some(c) => c,
        None => {
            return Report {
                iterations: 0,
                truncated: 0,
                exhausted: false,
                failure: Some(Failure {
                    token: token_str.to_string(),
                    iteration: 0,
                    message: "malformed replay token".into(),
                }),
                pruned: 0,
                wall_capped: false,
            }
        }
    };
    let opts = Options {
        strategy: Strategy::Dfs, // unused by the Replay chooser
        max_iterations: 1,
        max_steps: usize::MAX / 2,
        seed: 0,
        // All three travel in the token: staleness and the preemption bound
        // decide which operations consume a decision, and the memory model
        // decides which stale loads are reachable, so replay must mirror
        // the original run exactly.
        value_staleness: header.value_staleness,
        preemption_bound: header.preemption_bound,
        memory_model: header.memory_model,
        dpor: false,
        max_wall: None,
        race_stacks: false,
    };
    let out = run_iteration(&opts, Chooser::Replay { choices, cursor: 0 }, None, &body);
    Report {
        iterations: 1,
        truncated: if out.truncated { 1 } else { 0 },
        exhausted: false,
        failure: out.failure.map(|message| Failure {
            token: token_str.to_string(),
            iteration: 0,
            message,
        }),
        pruned: 0,
        wall_capped: false,
    }
}

/// [`explore`], but panic with a diagnostic (including the replay token)
/// when a counterexample is found.  The usual entry point for clean-suite
/// model tests.
pub fn check<F: Fn()>(opts: &Options, body: F) -> Report {
    let report = explore(opts, body);
    if let Some(f) = &report.failure {
        panic!(
            "model check failed at iteration {}: {}\n  replay token: {}",
            f.iteration, f.message, f.token
        );
    }
    if report.wall_capped {
        panic!(
            "model check hit its wall-clock budget after {} iterations \
             ({} truncated, {} pruned) without exhausting the model: \
             increase the budget (Options::wall / Options::iterations), \
             enable DPOR (Options::dpor), or tighten the preemption bound",
            report.iterations, report.truncated, report.pruned
        );
    }
    report
}
