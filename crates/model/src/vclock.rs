//! Vector clocks for happens-before tracking (the FastTrack substrate).
//!
//! Each model task `t` carries a clock `C_t`; `C_t[u]` is the number of
//! *release points* of task `u` that happen-before `t`'s current event.
//! Release points are the moments a task's clock becomes observable to
//! others — a release store, an RMW's store half, an SC fence, a spawn —
//! and the owner's own component is bumped right after each one, so any
//! event *after* a release carries an epoch the released clock does not
//! cover (that asymmetry is what makes "published before vs. after" a
//! decidable question; see [`crate::race`]).
//!
//! FastTrack's observation: a single access is fully described by the
//! *epoch* `(t, C_t[t])`, and the happens-before test against a full clock
//! is one comparison — `(t, c) ⪯ C_u  ⇔  c <= C_u[t]` — so the detector
//! only materializes whole clocks where it genuinely needs them.

/// A vector clock: per-task counters, absent entries are zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

/// One access stamp: task `tid` at its local time `clk`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Epoch {
    pub tid: u32,
    pub clk: u32,
}

impl VClock {
    pub fn new() -> Self {
        VClock(Vec::new())
    }

    /// The component for `tid` (zero when never set).
    pub fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Increment `tid`'s own component (a new local event horizon).
    pub fn bump(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Pointwise maximum with `other` (acquire: inherit everything the
    /// released clock had seen).
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, &o) in self.0.iter_mut().zip(other.0.iter()) {
            if *s < o {
                *s = o;
            }
        }
    }

    /// The epoch of `tid`'s current event under this clock.
    pub fn epoch(&self, tid: usize) -> Epoch {
        Epoch {
            tid: tid as u32,
            clk: self.get(tid),
        }
    }

    /// FastTrack's one-comparison happens-before test: does the event
    /// stamped `e` happen-before an event holding this clock?
    pub fn covers(&self, e: Epoch) -> bool {
        e.clk <= self.get(e.tid as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Join is a pointwise max and absent components read as zero.
    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.bump(0);
        a.bump(0);
        a.bump(2); // a = [2, 0, 1]
        let mut b = VClock::new();
        b.bump(1);
        b.bump(2);
        b.bump(2); // b = [0, 1, 2]
        a.join(&b);
        assert_eq!((a.get(0), a.get(1), a.get(2)), (2, 1, 2));
        assert_eq!(a.get(7), 0, "absent components are zero");
    }

    /// The epoch test `(t, c) ⪯ C` is exactly `c <= C[t]`.
    #[test]
    fn epoch_coverage_matches_component_compare() {
        let mut c = VClock::new();
        c.bump(1);
        c.bump(1); // C[1] = 2
        assert!(c.covers(Epoch { tid: 1, clk: 2 }));
        assert!(c.covers(Epoch { tid: 1, clk: 1 }));
        assert!(!c.covers(Epoch { tid: 1, clk: 3 }));
        assert!(
            c.covers(Epoch { tid: 5, clk: 0 }),
            "zero epochs are vacuous"
        );
        assert!(!c.covers(Epoch { tid: 5, clk: 1 }));
    }

    /// Hand-built release/acquire interleaving: a write *before* the
    /// release is covered by the acquirer's joined clock; a write *after*
    /// the release (post-bump) is not.  This is the exact asymmetry the
    /// race detector's "was the write published?" question reduces to.
    #[test]
    fn release_acquire_interleaving_orders_prior_writes_only() {
        let mut writer = VClock::new();
        writer.bump(0); // writer at local time 1
        let w_before = writer.epoch(0);

        // Release: snapshot the clock, then bump past the published time.
        let released = writer.clone();
        writer.bump(0);
        let w_after = writer.epoch(0);

        // Acquire on another task.
        let mut reader = VClock::new();
        reader.bump(1);
        reader.join(&released);

        assert!(reader.covers(w_before), "pre-release write must be ordered");
        assert!(
            !reader.covers(w_after),
            "post-release write must NOT be ordered"
        );
    }

    /// Transitivity through a chain of release/acquire hops.
    #[test]
    fn happens_before_is_transitive_across_hops() {
        let mut a = VClock::new();
        a.bump(0);
        let write = a.epoch(0);
        let rel_a = a.clone();
        a.bump(0);

        let mut b = VClock::new();
        b.bump(1);
        b.join(&rel_a); // a -> b
        let rel_b = b.clone();
        b.bump(1);

        let mut c = VClock::new();
        c.join(&rel_b); // b -> c
        assert!(c.covers(write), "a's write reaches c through b");
    }
}
