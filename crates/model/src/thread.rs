//! Model-aware thread spawning and yielding.
//!
//! Outside a model execution these forward to `std::thread`.  Inside one,
//! [`spawn`] registers a new *model task* backed by a real OS thread that
//! only runs while it holds the scheduler token, and [`JoinHandle::join`]
//! is a blocking edge the scheduler understands (join cycles are reported
//! as deadlock counterexamples, not hangs).

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use crate::exec::{self, panic_message, ModelAbort};

type ResultSlot<T> = Arc<Mutex<Option<std::thread::Result<T>>>>;

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        shared: Arc<exec::Shared>,
        task: usize,
        result: ResultSlot<T>,
    },
}

/// Handle to a spawned (model or OS) thread.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result.  Mirrors
    /// [`std::thread::JoinHandle::join`]: a panicking child yields `Err`.
    /// Under the model a child's panic is additionally recorded as the
    /// execution's counterexample.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Std(h) => h.join(),
            Inner::Model {
                shared,
                task,
                result,
            } => {
                let ctx = exec::ctx()
                    .expect("model JoinHandle joined outside the model execution that created it");
                ctx.shared.join_task(ctx.task, task);
                drop(shared);
                result
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("model task finished without storing a result")
            }
        }
    }
}

/// Spawn a thread.  A model task inside a model execution; a plain
/// `std::thread` otherwise.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    match exec::ctx() {
        None => JoinHandle(Inner::Std(std::thread::spawn(f))),
        Some(ctx) => {
            let shared = Arc::clone(&ctx.shared);
            let task = shared.add_task();
            let result: ResultSlot<T> = Arc::new(Mutex::new(None));
            let slot = Arc::clone(&result);
            let worker_shared = Arc::clone(&shared);
            let os = std::thread::Builder::new()
                .name(format!("model-task-{task}"))
                .spawn(move || {
                    exec::set_ctx(Some(exec::TaskCtx {
                        shared: Arc::clone(&worker_shared),
                        task,
                    }));
                    worker_shared.wait_first_schedule(task);
                    let res = panic::catch_unwind(AssertUnwindSafe(f));
                    match &res {
                        Err(p) if p.downcast_ref::<ModelAbort>().is_some() => {
                            // Teardown sentinel: exit quietly.
                        }
                        Err(p) => {
                            worker_shared.fail_from_panic(panic_message(&**p));
                        }
                        Ok(_) => {}
                    }
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(res);
                    exec::set_ctx(None);
                    worker_shared.finish_task(task);
                })
                .expect("failed to spawn model task OS thread");
            shared.push_os_handle(os);
            JoinHandle(Inner::Model {
                shared,
                task,
                result,
            })
        }
    }
}

/// Yield: a pure schedule point under the model, `std::thread::yield_now`
/// otherwise.
pub fn yield_now() {
    match exec::ctx() {
        Some(ctx) => ctx.shared.op_yield(ctx.task),
        None => std::thread::yield_now(),
    }
}
