//! Tiny deterministic PRNG for the randomized (PCT-style) scheduler.
//!
//! SplitMix64: a fixed, dependency-free generator whose entire state is one
//! `u64`, so per-iteration reseeding (`seed ^ iteration * GOLDEN`) is cheap
//! and reproducible across platforms.

/// SplitMix64 generator (public-domain constants from Steele et al.).
pub(crate) struct SplitMix64(u64);

/// Odd constant used to derive per-iteration seeds from the base seed.
pub(crate) const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(GOLDEN);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (n must be non-zero). Modulo bias is
    /// irrelevant for scheduling purposes.
    pub(crate) fn next_below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}
