//! Selectable memory-model strength for the executor.

/// How strongly the engine interprets atomic orderings.
///
/// The operational model (per-location modification order + per-task views,
/// see `exec`) is the same in both modes; what changes is which operations
/// act as *full barriers* against the global SC frontier:
///
/// * [`MemoryModel::X86`] (the default, and the only strength PR 7
///   shipped): every RMW and every `SeqCst` access is a full barrier —
///   RMWs are `lock`-prefixed instructions on x86 and order everything.
///   This is faithful to the TSO hardware the repo benchmarks on, but it
///   *masks* bugs that only weaker architectures expose (the epoch
///   scan-side fence was a documented negative result at this strength).
/// * [`MemoryModel::Arm`] (AArch64 strength): release/acquire stop
///   implying full barriers.  A non-`SeqCst` RMW orders exactly what its
///   ordering arguments promise — `Acquire`/`AcqRel` joins the release
///   view of the store it read, `Release`/`AcqRel` attaches the writer's
///   view to the new store, `Relaxed` does neither — and never touches the
///   SC frontier.  `ldadd`/`casal`-style sequences on AArch64 provide no
///   more than that.  `SeqCst` accesses and `fence(SeqCst)` remain full
///   barriers in both modes (stronger than the C11 minimum; sound — it
///   only removes behaviors).
///
/// Deliberate approximations under `Arm`, documented in
/// `docs/VERIFICATION.md`: load-buffering outcomes (a load reading from a
/// store that program-order-follows it on another thread) are not
/// representable in an interleaving-based operational model and are not
/// explored, and weaker-than-SC *fences* are still modeled at SC strength.
/// Both only remove behaviors relative to real AArch64, so a counterexample
/// found under `Arm` is always genuine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MemoryModel {
    /// Total-store-order strength: RMWs and SC accesses are full barriers.
    #[default]
    X86,
    /// AArch64 strength: release/acquire RMWs order only what they promise.
    Arm,
}
