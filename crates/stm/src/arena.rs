//! Size-classed recycling pools for *structure* blocks.
//!
//! The payload slab (the private `slab` module) removed the allocator from
//! the per-write payload path, but
//! the data structures built on the STM still paid `malloc`/`free` for every
//! **structural** mutation: a skip-hash insert allocated its node (an
//! `Arc<Node>` plus a boxed tower slice), and every copy-on-write hash-chain
//! update cloned a `Vec` buffer.  Those blocks are bigger and more variable
//! than cell payloads — a node block's size depends on its sampled tower
//! height — so they need their own pool rather than the fixed 16–256-byte
//! slab classes.
//!
//! This module is the raw engine: callers describe a block by `(size, align)`
//! and get back anonymous memory served from per-thread magazines over
//! mutex-protected global overflow pools, exactly the discipline proven out
//! by the payload slab (see `docs/PERF.md`).  It deliberately knows nothing
//! about *what* lives in a block; the typed glue (node layout, chain layout,
//! epoch retirement) lives with the client in the `skiphash` crate.
//!
//! # Contract
//!
//! * [`alloc_raw`] and [`free_raw`] must be called with the **same**
//!   `(size, align)` pair for a given block.  The class — or the
//!   global-allocator fallback for oversized/over-aligned/zero-sized
//!   requests — is a pure function of that pair, so both sides always agree
//!   about a pointer's provenance and blocks never need a header.
//! * Callers whose block size is *negotiable* (the hash chains) should round
//!   it up front with [`recommended_size`] and remember the rounded value:
//!   that fills the whole class instead of stranding its tail, and keeps the
//!   alloc/free pair trivially consistent.
//! * Like the slab, pooled blocks are never returned to the operating system;
//!   the pools are bounded by peak live structure memory.
//!
//! # Lifetime rules (why recycling is the *client's* problem)
//!
//! `free_raw` recycles immediately.  A block that was ever reachable by
//! concurrent readers must therefore be retired **through the epoch** (the
//! shim's `defer_with`, with reclamation glue that ends in `free_raw`), so it
//! re-enters a magazine only after every thread pinned at retirement time has
//! unpinned.  The skip hash's node blocks follow exactly the payload-slab
//! rule here; see the `node` module of the `skiphash` crate and
//! `docs/PERF.md`.
//!
//! # Recycle counters
//!
//! The structure pools also own the process-wide `node_recycle_hits` /
//! `chain_recycle_hits` counters surfaced by [`crate::StatsSnapshot`].  They
//! live here (not in per-`Stm` state) because blocks are recycled by whoever
//! drives epoch collection — often a different thread, sometimes a different
//! `Stm`, than the one that allocated them.  [`crate::Stm::reset_stats`]
//! snapshots a baseline so per-trial deltas still work.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::cell::RefCell;
// FACADE-EXEMPT: allocator internals run inside real `Mutex` critical
// sections and epoch callbacks; `stm::sync`'s module docs name this module
// as deliberately uninstrumented (schedule-space blowup + parking hazard).
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Block sizes, one free list per class.  Chosen so consecutive classes
/// differ by at most 50%: a skip-hash node block grows by one `Level`
/// (two cells) per tower height, and coarse classes would let a single
/// unlucky height sample mint a block no earlier insert warmed up.
const CLASS_SIZES: [usize; 14] = [
    32, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096,
];
const NUM_CLASSES: usize = CLASS_SIZES.len();

/// Every pooled block is aligned to this; stricter alignments fall back to
/// the global allocator (same policy as the payload slab).
///
/// One cache line: pooled blocks back skip-hash node headers and hash-chain
/// buffers, and cache-line alignment is what makes the node header's
/// "scan-hot fields in the first line" layout rule (docs/PERF.md, Mechanism
/// 6) mean an actual line rather than an arbitrary 64-byte window.  The
/// cost is only alignment slack on the global allocator's side — class
/// sizes themselves are unchanged.
const BLOCK_ALIGN: usize = 64;

/// Magazine size at which half the blocks are flushed to the global pool.
const MAGAZINE_CAP: usize = 32;

/// Blocks moved from the global pool per magazine refill.
const REFILL_BATCH: usize = 16;

/// Fresh blocks minted per allocator miss (one returned, the rest pooled).
/// Same high-water-convergence rationale as the payload slab's batch mint:
/// epoch reclamation returns blocks in bursts, so a pool sized exactly at
/// mean demand would mint a trickle forever; over-minting by a small batch
/// per miss makes misses self-extinguishing.
const MINT_BATCH: usize = 8;

/// The class serving `size`, or `None` when the request must use the global
/// allocator (zero-sized, oversized, or — checked by the callers — strictly
/// aligned).  Pure function of the size, so alloc and free always agree.
const fn class_of_size(size: usize) -> Option<usize> {
    if size == 0 || size > CLASS_SIZES[NUM_CLASSES - 1] {
        return None;
    }
    let mut class = 0;
    while class < NUM_CLASSES {
        if size <= CLASS_SIZES[class] {
            return Some(class);
        }
        class += 1;
    }
    None
}

/// True when `(size, align)` is served by the pools rather than the global
/// allocator.
pub fn pooled(size: usize, align: usize) -> bool {
    align <= BLOCK_ALIGN && class_of_size(size).is_some()
}

/// Round a *negotiable* block size up to the full size of the class that
/// would serve it, so the block's tail capacity is usable instead of
/// stranded.  Sizes the pools cannot serve come back unchanged.
///
/// Callers must remember the rounded size and pass it to both [`alloc_raw`]
/// and [`free_raw`].
pub fn recommended_size(size: usize, align: usize) -> usize {
    if align <= BLOCK_ALIGN {
        match class_of_size(size) {
            Some(class) => CLASS_SIZES[class],
            None => size,
        }
    } else {
        size
    }
}

/// Global overflow pools, one per class; block addresses stored as `usize`
/// so the `static` is trivially `Sync`.
static GLOBAL_POOLS: [Mutex<Vec<usize>>; NUM_CLASSES] =
    [const { Mutex::new(Vec::new()) }; NUM_CLASSES];

/// Process-wide recycle counters (see module docs for why they are global).
static NODE_RECYCLE_HITS: AtomicU64 = AtomicU64::new(0);
static CHAIN_RECYCLE_HITS: AtomicU64 = AtomicU64::new(0);

/// Record that a skip-hash node block was served from a recycled arena block.
pub fn note_node_recycle() {
    NODE_RECYCLE_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Record that a hash-chain buffer was served from a recycled arena block.
pub fn note_chain_recycle() {
    CHAIN_RECYCLE_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Process-wide total of node blocks served from recycled memory.
pub fn node_recycle_hits() -> u64 {
    NODE_RECYCLE_HITS.load(Ordering::Relaxed)
}

/// Process-wide total of chain buffers served from recycled memory.
pub fn chain_recycle_hits() -> u64 {
    CHAIN_RECYCLE_HITS.load(Ordering::Relaxed)
}

/// Per-thread block magazines; flushed to the global pools on thread exit.
struct Magazines {
    classes: [Vec<usize>; NUM_CLASSES],
}

impl Magazines {
    fn new() -> Self {
        Self {
            classes: [const { Vec::new() }; NUM_CLASSES],
        }
    }
}

impl Drop for Magazines {
    fn drop(&mut self) {
        for (class, magazine) in self.classes.iter_mut().enumerate() {
            if !magazine.is_empty() {
                GLOBAL_POOLS[class]
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .append(magazine);
            }
        }
    }
}

thread_local! {
    static MAGAZINES: RefCell<Magazines> = RefCell::new(Magazines::new());
}

fn class_layout(class: usize) -> Layout {
    Layout::from_size_align(CLASS_SIZES[class], BLOCK_ALIGN).expect("valid class layout")
}

#[cold]
fn mint_block(layout: Layout) -> *mut u8 {
    // SAFETY: every caller passes a non-zero-size layout (class layouts are
    // non-empty; the fallback path checks for zero before calling).
    let ptr = unsafe { alloc(layout) };
    if ptr.is_null() {
        handle_alloc_error(layout);
    }
    ptr
}

/// Allocate a block of at least `size` bytes aligned to `align`.  The flag
/// reports whether the block was recycled (`false` = fresh mint from the
/// global allocator).
///
/// Free with [`free_raw`] and the **same** `(size, align)` pair.
///
/// # Panics
///
/// Panics when the fallback path cannot form a valid `Layout` from the
/// request — `align` not a power of two, or `size` overflowing when rounded
/// up to `align`.  Pooled requests never panic, and zero-size fallback
/// requests are served as one byte rather than rejected.
pub fn alloc_raw(size: usize, align: usize) -> (*mut u8, bool) {
    let class = if align <= BLOCK_ALIGN {
        class_of_size(size)
    } else {
        None
    };
    let Some(class) = class else {
        let layout = Layout::from_size_align(size.max(1), align).expect("valid fallback layout");
        return (mint_block(layout), false);
    };
    MAGAZINES
        .try_with(|magazines| {
            let mut magazines = magazines.borrow_mut();
            let magazine = &mut magazines.classes[class];
            if let Some(addr) = magazine.pop() {
                return (addr as *mut u8, true);
            }
            {
                let mut pool = GLOBAL_POOLS[class]
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                let keep = pool.len().saturating_sub(REFILL_BATCH);
                magazine.extend(pool.drain(keep..));
            }
            match magazine.pop() {
                Some(addr) => (addr as *mut u8, true),
                None => {
                    for _ in 0..MINT_BATCH - 1 {
                        magazine.push(mint_block(class_layout(class)) as usize);
                    }
                    (mint_block(class_layout(class)), false)
                }
            }
        })
        // Thread-local teardown: go straight to the global pool.
        .unwrap_or_else(|_| {
            let recycled = GLOBAL_POOLS[class]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .pop();
            match recycled {
                Some(addr) => (addr as *mut u8, true),
                None => (mint_block(class_layout(class)), false),
            }
        })
}

/// Return a block obtained from [`alloc_raw`] with the same `(size, align)`.
///
/// Pooled blocks go to the calling thread's magazine (overflow drains to the
/// global pool in a batch); fallback blocks go back to the global allocator.
///
/// # Safety
///
/// `ptr` must have come from `alloc_raw(size, align)` with exactly these
/// arguments, the caller must have exclusive access to the block, and the
/// block must not be used afterwards.  If the block was ever visible to
/// concurrent readers, the call must be sequenced after their quiescence
/// (epoch retirement — see the module docs).
pub unsafe fn free_raw(ptr: *mut u8, size: usize, align: usize) {
    let class = if align <= BLOCK_ALIGN {
        class_of_size(size)
    } else {
        None
    };
    let Some(class) = class else {
        let layout = Layout::from_size_align(size.max(1), align).expect("valid fallback layout");
        // SAFETY: per the contract, `ptr` came from `alloc_raw`'s fallback
        // path with this exact layout.
        unsafe { dealloc(ptr, layout) };
        return;
    };
    let addr = ptr as usize;
    let stored = MAGAZINES.try_with(|magazines| {
        let mut magazines = magazines.borrow_mut();
        let magazine = &mut magazines.classes[class];
        magazine.push(addr);
        if magazine.len() >= MAGAZINE_CAP {
            GLOBAL_POOLS[class]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .extend(magazine.drain(MAGAZINE_CAP / 2..));
        }
    });
    if stored.is_err() {
        GLOBAL_POOLS[class]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_sizes_and_reject_extremes() {
        assert!(pooled(1, 1));
        assert!(pooled(4096, 16));
        assert!(pooled(64, 64), "cache-line alignment is pooled");
        assert!(!pooled(4097, 8), "oversized blocks fall back");
        assert!(!pooled(0, 8), "zero-size requests fall back");
        assert!(!pooled(64, 128), "over-aligned blocks fall back");
        // Exhaustive on native runs; Miri strides to keep the interpreted
        // run fast while still probing every class boundary region.
        let step = if cfg!(miri) { 7 } else { 1 };
        for size in (1..=4096usize).step_by(step) {
            let class = class_of_size(size).expect("covered");
            assert!(CLASS_SIZES[class] >= size);
            if class > 0 {
                assert!(CLASS_SIZES[class - 1] < size, "smallest fitting class");
            }
        }
    }

    #[test]
    fn recommended_size_fills_the_class() {
        assert_eq!(recommended_size(1, 8), 32);
        assert_eq!(recommended_size(33, 8), 64);
        assert_eq!(recommended_size(4096, 8), 4096);
        assert_eq!(recommended_size(5000, 8), 5000, "oversize is unchanged");
        assert_eq!(recommended_size(48, 64), 64, "cache-line alignment pools");
        assert_eq!(recommended_size(48, 128), 48, "over-aligned is unchanged");
        // The round-trip invariant chains rely on: a recommended size maps to
        // the class whose full size it is.  (Strided under Miri, as above.)
        let step = if cfg!(miri) { 7 } else { 1 };
        for size in (1..=4096usize).step_by(step) {
            let rounded = recommended_size(size, 8);
            assert_eq!(class_of_size(rounded), class_of_size(size));
            assert_eq!(recommended_size(rounded, 8), rounded);
        }
    }

    #[test]
    fn freed_blocks_are_recycled_lifo() {
        // A distinctive size class to avoid interference from other tests.
        let (first, _) = alloc_raw(3000, 16);
        // SAFETY: `first` came from `alloc_raw` with the same size/align and is not used again.
        unsafe { free_raw(first, 3000, 16) };
        let (second, recycled) = alloc_raw(3000, 16);
        assert!(recycled, "the freed block must come from the magazine");
        assert_eq!(first, second, "LIFO magazine returns the same block");
        // SAFETY: `second` came from `alloc_raw` with the same size/align and is not used again.
        unsafe { free_raw(second, 3000, 16) };
    }

    #[test]
    fn different_sizes_in_one_class_share_blocks() {
        // 400 and 500 both live in the 512 class; the free/alloc pair must
        // agree through the size alone.
        let (a, _) = alloc_raw(400, 8);
        // SAFETY: `a` came from `alloc_raw` with the same size/align and is not used again.
        unsafe { free_raw(a, 400, 8) };
        let (b, recycled) = alloc_raw(500, 8);
        assert!(recycled);
        assert_eq!(a, b);
        // SAFETY: `b` came from `alloc_raw` with the same size/align and is not used again.
        unsafe { free_raw(b, 500, 8) };
    }

    #[test]
    fn fallback_blocks_round_trip() {
        let (big, recycled) = alloc_raw(8192, 8);
        assert!(!recycled);
        // SAFETY: `big` came from `alloc_raw` with the same size/align and is not used again.
        unsafe { free_raw(big, 8192, 8) };
        let (aligned, recycled) = alloc_raw(128, 128);
        assert!(!recycled);
        assert_eq!(aligned as usize % 128, 0);
        // SAFETY: `aligned` came from `alloc_raw` with the same size/align and is not used again.
        unsafe { free_raw(aligned, 128, 128) };
    }

    #[test]
    fn recycle_counters_accumulate() {
        let node_before = node_recycle_hits();
        let chain_before = chain_recycle_hits();
        note_node_recycle();
        note_chain_recycle();
        note_chain_recycle();
        assert!(node_recycle_hits() > node_before);
        assert!(chain_recycle_hits() >= chain_before + 2);
    }

    #[test]
    fn blocks_are_aligned() {
        for &size in &[32usize, 100, 777, 4096] {
            let (ptr, _) = alloc_raw(size, 16);
            assert_eq!(ptr as usize % BLOCK_ALIGN, 0);
            // SAFETY: `ptr` came from `alloc_raw` with the same size/align and is not used again.
            unsafe { free_raw(ptr, size, 16) };
        }
    }
}
