//! Error and abort types used by the STM.

use std::error::Error;
use std::fmt;

/// The reason a transaction attempt could not commit.
///
/// A value of this type flowing out of a transaction body (via `?`) causes
/// the enclosing [`crate::Stm::run`] loop to retry the transaction, or
/// [`crate::Stm::try_once`] to report failure to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxAbort {
    /// A read observed a location that was locked or modified since the
    /// transaction began.
    ReadConflict,
    /// A write could not acquire the location's ownership record because
    /// another transaction owns it, or the location changed since it was
    /// read.
    WriteConflict,
    /// Commit-time validation of the read set failed.
    ValidationFailed,
    /// The transaction body requested an explicit abort (and retry).
    Explicit,
}

impl TxAbort {
    /// Short human-readable label for statistics output.
    pub fn label(self) -> &'static str {
        match self {
            TxAbort::ReadConflict => "read-conflict",
            TxAbort::WriteConflict => "write-conflict",
            TxAbort::ValidationFailed => "validation-failed",
            TxAbort::Explicit => "explicit",
        }
    }
}

impl fmt::Display for TxAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl Error for TxAbort {}

/// Result type returned by transactional operations and transaction bodies.
///
/// # Contract
///
/// An `Err(TxAbort)` means the current transaction *attempt* observed an
/// inconsistent snapshot and must not continue.  Bodies must propagate it
/// with `?` — never match on it, log it, or substitute a default — so that
/// the enclosing [`crate::Stm::run`] loop can retry the whole body from the
/// top (or [`crate::Stm::try_once`] can report the failure).  Values read
/// before the abort may be torn relative to each other; discard them.
pub type TxResult<T> = Result<T, TxAbort>;

/// Error returned by [`crate::Stm::try_once`] when the single attempt aborts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleAttemptFailed {
    /// Why the attempt aborted.
    pub cause: TxAbort,
}

impl fmt::Display for SingleAttemptFailed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction attempt aborted: {}", self.cause)
    }
}

impl Error for SingleAttemptFailed {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_labels_are_distinct() {
        let labels = [
            TxAbort::ReadConflict.label(),
            TxAbort::WriteConflict.label(),
            TxAbort::ValidationFailed.label(),
            TxAbort::Explicit.label(),
        ];
        for (i, a) in labels.iter().enumerate() {
            for (j, b) in labels.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                }
            }
        }
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(TxAbort::ReadConflict.to_string(), "read-conflict");
        let err = SingleAttemptFailed {
            cause: TxAbort::Explicit,
        };
        assert!(err.to_string().contains("explicit"));
    }
}
