//! Atomics / fence / thread facade for the whole skiphash stack.
//!
//! Every crate in the workspace imports its atomic primitives from here (or
//! re-exports of here) instead of `std::sync::atomic`:
//!
//! * **Normal builds** (`model` feature off — the default, and what every
//!   tier-1 build uses): straight re-exports of `std::sync::atomic`,
//!   `std::sync::atomic::fence`, and `std::thread::yield_now`.  Zero cost,
//!   zero behavior change.
//! * **Model builds** (`--features model`, used only by
//!   `crates/model-tests`): the same names resolve to the instrumented
//!   types from `skiphash-model`, whose every load/store/RMW/fence is a
//!   schedule point for the deterministic concurrency checker.  Outside a
//!   model execution the instrumented types forward to std, so ordinary
//!   code keeps working even in model builds.
//!
//! Deliberately **not** routed through the facade: `stm::slab`,
//! `stm::arena`, and `stm::scratch`.  Their atomics guard allocator
//! internals that run *inside* real `Mutex` critical sections and epoch
//! callbacks; instrumenting them would (a) blow up the schedule space with
//! uninteresting allocator interleavings and (b) risk scheduler deadlock if
//! a model task parks while holding a real lock another task needs.  The
//! ordering protocols the model checker targets (orec, clock, snapshot,
//! epoch) never span those modules.  `AtomicPtr` is likewise re-exported
//! from std unconditionally — pointer-valued state is exercised through the
//! epoch-shim transcription in `crates/model-tests` instead.

#[cfg(not(feature = "model"))]
pub use std::sync::atomic::{
    fence, AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
};

#[cfg(not(feature = "model"))]
pub use std::thread::yield_now;

#[cfg(feature = "model")]
pub use skiphash_model::atomic::{
    fence, AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
};

#[cfg(feature = "model")]
pub use skiphash_model::thread::yield_now;

pub use std::sync::atomic::AtomicPtr;

// Not part of any modeled protocol (harness/test bookkeeping only); always
// the std type, like `AtomicPtr`.
pub use std::sync::atomic::AtomicIsize;

/// Detector shadow for a copy-on-write payload slot (a `TCell`'s boxed
/// value).  In model builds this is `skiphash_model::cell::ShadowSlot` and
/// feeds the FastTrack race detector: `on_write` marks the install of a
/// fresh payload, `on_read_confirmed` marks a read that *passed* the orec
/// recheck.  Neither is a schedule point, so replay tokens are unaffected.
#[cfg(feature = "model")]
pub use skiphash_model::cell::ShadowSlot;

/// No-op stand-in for the model build's payload-slot shadow: normal builds
/// carry the field and the hook calls at zero size and zero cost, so the
/// `TCell` layout and call sites do not fork on the feature flag.
#[cfg(not(feature = "model"))]
#[derive(Debug)]
pub struct ShadowSlot {}

#[cfg(not(feature = "model"))]
impl ShadowSlot {
    /// Create a slot shadow; the name only matters in model builds.
    #[inline]
    pub const fn new(_name: &'static str) -> Self {
        ShadowSlot {}
    }

    /// Record a fresh payload install (no-op outside model builds).
    #[inline]
    pub fn on_write(&self) {}

    /// Record a validated payload read (no-op outside model builds).
    #[inline]
    pub fn on_read_confirmed(&self) {}
}

/// Best-effort software prefetch of the cache line holding `ptr`, for a
/// read that is about to happen (all cache levels, temporal locality).
///
/// This is a *hint*: prefetch instructions never fault — even on dangling
/// or unmapped addresses — and have no architectural effect beyond warming
/// the cache, so passing a pointer that is about to be validated (e.g. a
/// borrowed skip-list link before its orec recheck) is fine.  Compiles to
/// nothing on targets without a prefetch instruction and in model builds
/// (the checker schedules no caches, and an extra hint would change
/// nothing it can observe).
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(all(target_arch = "x86_64", not(feature = "model")))]
    // SAFETY: `prefetcht0` is architecturally defined to never fault and
    // to have no effect other than a cache-fill hint, for any address.
    unsafe {
        core::arch::x86_64::_mm_prefetch(ptr.cast::<i8>(), core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(all(target_arch = "aarch64", not(feature = "model")))]
    // SAFETY: `prfm pldl1keep` is a hint instruction: it never faults and
    // has no architectural effect, for any address.
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{0}]",
            in(reg) ptr,
            options(nostack, preserves_flags, readonly)
        );
    }
    #[cfg(any(
        not(any(target_arch = "x86_64", target_arch = "aarch64")),
        feature = "model"
    ))]
    let _ = ptr;
}
