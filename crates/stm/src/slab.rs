//! Size-classed slab recycling for [`crate::TCell`] value payloads.
//!
//! Every transactional write installs a freshly allocated value and retires
//! the displaced one through the epoch.  Before this module existed, both
//! ends of that exchange hit the global allocator — one `Box::new` per write
//! and one `Box::from_raw` drop per reclamation — which made the allocator
//! the hottest shared resource in update-heavy workloads (the skip hash's
//! `Link` towers churn several cells per insert/remove).
//!
//! The slab breaks that round trip: payloads are carved from size-classed
//! blocks, and reclamation returns the *block* to a free list instead of the
//! operating system, so a steady-state workload recycles the same handful of
//! blocks forever.
//!
//! # Design
//!
//! * **Eligibility is decided per type, at compile time.**  A `T` with
//!   `1 <= size_of::<T>() <= 256` and `align_of::<T>() <= 16` always uses the
//!   slab; anything else (zero-sized types, huge or over-aligned values)
//!   always uses plain `Box`es.  Because the decision is a pure function of
//!   the type, the reclamation glue ([`drop_glue`]) never needs a per-block
//!   header to know how to free a pointer.
//! * **Blocks are process-global, not per-`Stm`.**  Retired payloads live in
//!   epoch garbage bags that can outlive the `Stm` (and the `TCell`) that
//!   produced them, so block ownership must not be tied to any shorter-lived
//!   object; a block is just anonymous size-classed memory and may be reused
//!   by any cell of any runtime.  (The issue sketch said "per-`Stm`"; this is
//!   the lifetime-safe refinement of it.)
//! * **Per-thread magazines over a global overflow pool.**  Allocation and
//!   free touch only a thread-local `Vec` of block addresses; the global
//!   mutex-protected pool is touched in batches of [`REFILL_BATCH`] when a
//!   magazine runs dry or overflows, and when a thread exits.  Blocks freed
//!   by the epoch collector land in the collector thread's magazine and are
//!   reused by its next writes.
//!
//! Pooled blocks are intentionally never returned to the operating system
//! (the pool is bounded by peak live payloads, the same policy as the epoch
//! shim's slot registry).  Note for sanitizer runs: recycling means ASan
//! cannot observe use-after-free *within* a reused block; the logical
//! equivalence and linearizability suites are the backstop for slab clients.

use std::alloc::{alloc, handle_alloc_error, Layout};
use std::cell::RefCell;
use std::sync::Mutex;

/// Block payload sizes, one free list per class.
const CLASS_SIZES: [usize; 8] = [16, 32, 48, 64, 96, 128, 192, 256];
const NUM_CLASSES: usize = CLASS_SIZES.len();

/// Every block is aligned to this; types with stricter alignment fall back
/// to `Box`.
const BLOCK_ALIGN: usize = 16;

/// Magazine size at which half the blocks are flushed to the global pool.
const MAGAZINE_CAP: usize = 64;

/// Blocks moved from the global pool per magazine refill.
const REFILL_BATCH: usize = 32;

/// Fresh blocks minted per allocator miss (one returned, the rest pooled).
///
/// Epoch reclamation returns blocks in bursts, ~2 collection cycles after
/// they were retired, so instantaneous demand fluctuates around the mean —
/// especially for the skip hash, whose per-operation cell count follows the
/// random tower height.  Minting a batch per miss converges the pool's
/// capacity to the workload's high-water mark in a handful of misses instead
/// of one miss per block, which is what lets the steady state reach *zero*
/// allocator hits rather than a trickle.
const MINT_BATCH: usize = 8;

/// True when values of `T` are carved from the slab; false when they use
/// plain `Box`es.  A compile-time function of the type, so allocation and
/// reclamation can never disagree about a pointer's provenance.
pub(crate) const fn eligible<T>() -> bool {
    let size = std::mem::size_of::<T>();
    size >= 1 && size <= CLASS_SIZES[NUM_CLASSES - 1] && std::mem::align_of::<T>() <= BLOCK_ALIGN
}

const fn class_of_size(size: usize) -> usize {
    let mut class = 0;
    while class < NUM_CLASSES {
        if size <= CLASS_SIZES[class] {
            return class;
        }
        class += 1;
    }
    // Unreachable for eligible types; keeps the const fn total.
    usize::MAX
}

const fn class_of<T>() -> usize {
    class_of_size(std::mem::size_of::<T>())
}

/// Global overflow pools, one per class; block addresses stored as `usize`
/// so the `static` is trivially `Sync`.
static GLOBAL_POOLS: [Mutex<Vec<usize>>; NUM_CLASSES] =
    [const { Mutex::new(Vec::new()) }; NUM_CLASSES];

/// Per-thread block magazines; flushed to the global pools on thread exit.
struct Magazines {
    classes: [Vec<usize>; NUM_CLASSES],
}

impl Magazines {
    fn new() -> Self {
        Self {
            classes: [const { Vec::new() }; NUM_CLASSES],
        }
    }
}

impl Drop for Magazines {
    fn drop(&mut self) {
        for (class, magazine) in self.classes.iter_mut().enumerate() {
            if !magazine.is_empty() {
                GLOBAL_POOLS[class]
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .append(magazine);
            }
        }
    }
}

thread_local! {
    static MAGAZINES: RefCell<Magazines> = RefCell::new(Magazines::new());
}

fn class_layout(class: usize) -> Layout {
    // SAFETY-adjacent invariant: sizes are small powers-of-16 multiples and
    // BLOCK_ALIGN is a power of two, so the layout is always valid.
    Layout::from_size_align(CLASS_SIZES[class], BLOCK_ALIGN).expect("valid class layout")
}

#[cold]
fn mint_block(class: usize) -> *mut u8 {
    let layout = class_layout(class);
    // SAFETY: the layout has non-zero size for every class.
    let ptr = unsafe { alloc(layout) };
    if ptr.is_null() {
        handle_alloc_error(layout);
    }
    ptr
}

/// Pop a block for `class`, refilling the magazine from the global pool when
/// dry and minting a fresh block only when both are empty.  The flag reports
/// whether the block was recycled (false = fresh mint from the allocator).
fn alloc_block(class: usize) -> (*mut u8, bool) {
    MAGAZINES
        .try_with(|magazines| {
            let mut magazines = magazines.borrow_mut();
            let magazine = &mut magazines.classes[class];
            if let Some(addr) = magazine.pop() {
                return (addr as *mut u8, true);
            }
            {
                let mut pool = GLOBAL_POOLS[class]
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                let keep = pool.len().saturating_sub(REFILL_BATCH);
                magazine.extend(pool.drain(keep..));
            }
            match magazine.pop() {
                Some(addr) => (addr as *mut u8, true),
                None => {
                    for _ in 0..MINT_BATCH - 1 {
                        magazine.push(mint_block(class) as usize);
                    }
                    (mint_block(class), false)
                }
            }
        })
        // Thread-local teardown: go straight to the global pool.
        .unwrap_or_else(|_| {
            let recycled = GLOBAL_POOLS[class]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .pop();
            match recycled {
                Some(addr) => (addr as *mut u8, true),
                None => (mint_block(class), false),
            }
        })
}

/// Return a block to the calling thread's magazine (overflow goes to the
/// global pool in a batch).
fn free_block(ptr: *mut u8, class: usize) {
    let addr = ptr as usize;
    let stored = MAGAZINES.try_with(|magazines| {
        let mut magazines = magazines.borrow_mut();
        let magazine = &mut magazines.classes[class];
        magazine.push(addr);
        if magazine.len() >= MAGAZINE_CAP {
            GLOBAL_POOLS[class]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .extend(magazine.drain(MAGAZINE_CAP / 2..));
        }
    });
    if stored.is_err() {
        GLOBAL_POOLS[class]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(addr);
    }
}

/// Allocate storage for `value` (slab block or `Box`, per [`eligible`]) and
/// move it in.  The flag reports whether a recycled slab block served the
/// request.
pub(crate) fn alloc_value<T>(value: T) -> (*mut T, bool) {
    if eligible::<T>() {
        let (block, recycled) = alloc_block(class_of::<T>());
        let ptr = block.cast::<T>();
        // SAFETY: the block is exclusively ours, at least `size_of::<T>()`
        // bytes, and `BLOCK_ALIGN`-aligned (eligibility checked the type's
        // alignment fits).
        unsafe { ptr.write(value) };
        (ptr, recycled)
    } else {
        (Box::into_raw(Box::new(value)), false)
    }
}

/// Drop the pointee and release its storage immediately.
///
/// # Safety
///
/// `ptr` must have come from [`alloc_value::<T>`], the caller must have
/// exclusive access to it, and it must not be used afterwards.
pub(crate) unsafe fn free_value_now<T>(ptr: *mut T) {
    if eligible::<T>() {
        // SAFETY: per the contract, `ptr` holds a live `T` in a slab block.
        unsafe {
            ptr.drop_in_place();
            free_block(ptr.cast::<u8>(), class_of::<T>());
        }
    } else {
        // SAFETY: ineligible types are always boxed by `alloc_value`.
        drop(unsafe { Box::from_raw(ptr) });
    }
}

/// The type-erased reclamation glue for `T` payloads, for use with the epoch
/// shim's `defer_with`: drops the value and returns its block to the slab
/// (or frees the `Box` for ineligible types).
pub(crate) fn drop_glue<T>() -> unsafe fn(*mut ()) {
    // SAFETY: contract — forwarded verbatim from `free_value_now`.
    unsafe fn glue<T>(ptr: *mut ()) {
        // SAFETY: forwarded from `free_value_now`'s contract via the epoch
        // retirement protocol (called exactly once, after unreachability).
        unsafe { free_value_now(ptr.cast::<T>()) }
    }
    glue::<T>
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eligibility_matches_size_and_alignment() {
        assert!(eligible::<u64>());
        assert!(eligible::<[u8; 256]>());
        assert!(!eligible::<[u8; 257]>(), "oversized values are boxed");
        assert!(!eligible::<()>(), "zero-sized values are boxed");
        #[repr(align(64))]
        struct Overaligned(#[allow(dead_code)] u8);
        assert!(!eligible::<Overaligned>(), "over-aligned values are boxed");
    }

    #[test]
    fn classes_cover_the_eligible_range() {
        assert_eq!(class_of::<u64>(), 0);
        assert_eq!(class_of::<[u8; 17]>(), 1);
        assert_eq!(class_of::<[u8; 256]>(), NUM_CLASSES - 1);
        for size in 1..=CLASS_SIZES[NUM_CLASSES - 1] {
            let class = class_of_size(size);
            assert!(class < NUM_CLASSES);
            assert!(CLASS_SIZES[class] >= size);
        }
    }

    #[test]
    fn freed_blocks_are_recycled() {
        // Use a distinctive size class to avoid interference from the rest
        // of the test process.
        type Block = [u64; 24]; // 192-byte class
        let (first, _) = alloc_value::<Block>([7; 24]);
        // SAFETY: `first` came from `alloc_value::<Block>` and is not reused.
        unsafe { free_value_now(first) };
        let (second, recycled) = alloc_value::<Block>([9; 24]);
        assert!(recycled, "the freed block must be served from the magazine");
        assert_eq!(first, second, "LIFO magazine returns the same block");
        // SAFETY: `second` came from `alloc_value::<Block>` and is not reused.
        unsafe { free_value_now(second) };
    }

    #[test]
    fn drop_glue_runs_destructors() {
        use crate::sync::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted(#[allow(dead_code)] u64);
        impl Drop for Counted {
            fn drop(&mut self) {
                // SC: test drop counter — strongest ordering, not perf-sensitive.
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (ptr, _) = alloc_value(Counted(1));
        // SAFETY: `ptr` came from `alloc_value::<Counted>`; freed exactly once.
        unsafe { drop_glue::<Counted>()(ptr.cast()) };
        // SC: test drop counter read.
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn ineligible_values_round_trip_through_boxes() {
        let (ptr, recycled) = alloc_value([0u8; 1024]);
        assert!(!recycled);
        // SAFETY: `ptr` came from `alloc_value` with the same type; not reused.
        unsafe { free_value_now(ptr) };
    }
}
