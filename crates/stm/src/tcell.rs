//! Transactional memory cells.

use std::fmt;
use std::sync::atomic::Ordering;

use crossbeam_epoch::{self as epoch, Atomic, Owned};

use crate::error::TxResult;
use crate::orec::{Orec, OrecState};
use crate::txn::Txn;

/// A transactionally managed memory location holding a value of type `T`.
///
/// Each cell carries its own ownership record (orec), following the paper's
/// guidance that orecs be co-located with the data they protect.  The value
/// itself lives behind an epoch-managed pointer so that optimistic readers
/// can never observe a torn value: writers install a freshly allocated value
/// and retire the previous one through epoch-based reclamation.
///
/// Cells are accessed inside transactions via [`TCell::read`] and
/// [`TCell::write`].  Outside of transactions, [`TCell::load_atomic`]
/// provides a consistent single-location snapshot (used by tests, statistics,
/// and destructors — never on the concurrent hot path).
///
/// # Example
///
/// ```
/// use skiphash_stm::{Stm, TCell};
///
/// let stm = Stm::new();
/// let cell = TCell::new(vec![1, 2, 3]);
/// stm.run(|tx| {
///     let mut v = cell.read(tx)?;
///     v.push(4);
///     cell.write(tx, v)
/// });
/// assert_eq!(cell.load_atomic(), vec![1, 2, 3, 4]);
/// ```
pub struct TCell<T> {
    pub(crate) orec: Orec,
    pub(crate) data: Atomic<T>,
}

impl<T> TCell<T> {
    /// Create a new cell holding `value`, with version 0.
    pub fn new(value: T) -> Self {
        Self {
            orec: Orec::new(0),
            data: Atomic::new(value),
        }
    }
}

impl<T: Clone + Send + Sync + 'static> TCell<T> {
    /// Transactionally read the cell, returning a clone of its value.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TxAbort::ReadConflict`] if the location is owned by a
    /// concurrent writer or has been written since the transaction began; the
    /// enclosing [`crate::Stm::run`] loop will retry the transaction.
    #[inline]
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn read(&self, tx: &mut Txn<'_>) -> TxResult<T> {
        tx.read_cell(self)
    }

    /// Transactionally overwrite the cell with `value`.
    ///
    /// The ownership record is acquired eagerly (on first write) and the new
    /// value becomes visible to the transaction's own subsequent reads
    /// immediately.  If the transaction aborts, the previous value is
    /// restored.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TxAbort::WriteConflict`] if the location is owned by
    /// a concurrent writer.
    #[inline]
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn write(&self, tx: &mut Txn<'_>, value: T) -> TxResult<()> {
        tx.write_cell(self, value)
    }

    /// Overwrite the cell outside of any transaction.
    ///
    /// Spin-acquires the ownership record, installs the new value, and
    /// releases the orec at its previous version (so concurrent readers see
    /// the store as a regular committed write).  Intended for initialization
    /// and single-threaded teardown (e.g. severing links in destructors);
    /// concurrent algorithms should use transactions.
    pub fn store_atomic(&self, value: T) {
        let backoff = crossbeam_utils::Backoff::new();
        loop {
            let o1 = self.orec.raw();
            if let OrecState::Unlocked { version } = Orec::decode_raw(o1) {
                // Use a reserved owner id (u64::MAX >> 1) for non-transactional
                // stores; transaction attempt ids start at 1 and increment, so
                // they can never collide with it in practice.
                const STORE_OWNER: u64 = (1 << 62) - 1;
                if self.orec.try_acquire(version, STORE_OWNER) {
                    let guard = epoch::pin();
                    let old = self.data.swap(Owned::new(value), Ordering::AcqRel, &guard);
                    if !old.is_null() {
                        // SAFETY: `old` is unreachable once swapped out.
                        unsafe { guard.defer_destroy(old) };
                    }
                    self.orec.release(version.saturating_add(1));
                    return;
                }
            }
            backoff.snooze();
        }
    }

    /// Read the cell outside of any transaction.
    ///
    /// Spins until it observes the location unlocked with an unchanged
    /// version before and after copying the value, so the returned value is
    /// always a committed one.  Intended for tests, reporting, and
    /// single-threaded teardown; concurrent algorithms should use
    /// transactions.
    pub fn load_atomic(&self) -> T {
        let backoff = crossbeam_utils::Backoff::new();
        loop {
            let guard = epoch::pin();
            let o1 = self.orec.raw();
            if let OrecState::Unlocked { .. } = Orec::decode_raw(o1) {
                let shared = self.data.load(Ordering::Acquire, &guard);
                // SAFETY: the pointer was installed by `new` or a
                // transactional write and cannot be reclaimed while `guard`
                // is pinned.
                let value = unsafe { shared.deref() }.clone();
                if self.orec.raw() == o1 {
                    return value;
                }
            }
            backoff.snooze();
        }
    }
}

impl<T> Drop for TCell<T> {
    fn drop(&mut self) {
        // We have exclusive access; reclaim the current value immediately.
        // SAFETY: `&mut self` guarantees no concurrent access, and the
        // pointer is either null or owned by this cell.
        unsafe {
            let shared = self.data.load(Ordering::Relaxed, epoch::unprotected());
            if !shared.is_null() {
                drop(shared.into_owned());
            }
        }
    }
}

impl<T: Clone + Send + Sync + fmt::Debug + 'static> fmt::Debug for TCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TCell")
            .field("value", &self.load_atomic())
            .finish()
    }
}

impl<T: Clone + Send + Sync + Default + 'static> Default for TCell<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

// SAFETY: all shared-state mutation goes through the orec protocol plus
// atomic pointer swaps; values are only dropped through epoch-based
// reclamation or with exclusive access.
unsafe impl<T: Send + Sync> Send for TCell<T> {}
unsafe impl<T: Send + Sync> Sync for TCell<T> {}

pub(crate) struct CellWrite<T> {
    pub(crate) cell: *const TCell<T>,
    pub(crate) old_version: u64,
    pub(crate) old_data: *const T,
}

/// Type-erased handle to a pending transactional write, used by the undo log.
///
/// Displaced values are not retired through the epoch one at a time; they are
/// collected into the transaction's [`epoch::Bag`] and flushed in a single
/// thread-local access when the transaction finishes, so a commit with `k`
/// writes pins once and flushes once.
pub(crate) trait WriteBack {
    /// Restore the pre-transaction value, release the orec at its old
    /// version, and park the displaced value in `retired`.  Called on abort.
    ///
    /// # Safety
    ///
    /// Must only be called by the owning transaction, exactly once, with the
    /// transaction's epoch guard still pinned; `retired` must be flushed
    /// through that guard before it is unpinned.
    unsafe fn abort(&self, guard: &epoch::Guard, retired: &mut epoch::Bag);

    /// Park the pre-transaction value in `retired` and release the orec at
    /// `version`.  Called on commit.
    ///
    /// # Safety
    ///
    /// Must only be called by the owning transaction, exactly once, with the
    /// transaction's epoch guard still pinned; `retired` must be flushed
    /// through that guard before it is unpinned.
    unsafe fn commit(&self, retired: &mut epoch::Bag, version: u64);
}

impl<T: Send + Sync + 'static> WriteBack for CellWrite<T> {
    unsafe fn abort(&self, guard: &epoch::Guard, retired: &mut epoch::Bag) {
        let cell = &*self.cell;
        let old = epoch::Shared::from(self.old_data);
        let current = cell.data.swap(old, Ordering::AcqRel, guard);
        if !current.is_null() {
            retired.defer_destroy(current);
        }
        cell.orec.release(self.old_version);
    }

    unsafe fn commit(&self, retired: &mut epoch::Bag, version: u64) {
        let old = epoch::Shared::from(self.old_data);
        if !old.is_null() {
            retired.defer_destroy(old);
        }
        let cell = &*self.cell;
        cell.orec.release(version);
    }
}

// The raw pointers inside `CellWrite` refer to data owned by the transaction
// (which is single-threaded); entries never cross threads.
#[allow(dead_code)]
fn _assert_owned_has_into_shared(o: Owned<u32>) -> Owned<u32> {
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stm;

    #[test]
    fn new_cell_holds_initial_value() {
        let cell = TCell::new(41u32);
        assert_eq!(cell.load_atomic(), 41);
    }

    #[test]
    fn default_cell_is_default_value() {
        let cell: TCell<u64> = TCell::default();
        assert_eq!(cell.load_atomic(), 0);
    }

    #[test]
    fn debug_includes_value() {
        let cell = TCell::new(7u8);
        assert!(format!("{cell:?}").contains('7'));
    }

    #[test]
    fn write_is_visible_after_commit() {
        let stm = Stm::new();
        let cell = TCell::new(String::from("a"));
        stm.run(|tx| cell.write(tx, String::from("b")));
        assert_eq!(cell.load_atomic(), "b");
    }

    #[test]
    fn read_after_write_sees_own_update() {
        let stm = Stm::new();
        let cell = TCell::new(1u64);
        let observed = stm.run(|tx| {
            cell.write(tx, 2)?;
            cell.read(tx)
        });
        assert_eq!(observed, 2);
    }

    #[test]
    fn multiple_writes_in_one_txn_keep_last() {
        let stm = Stm::new();
        let cell = TCell::new(0u64);
        stm.run(|tx| {
            for i in 1..=10u64 {
                cell.write(tx, i)?;
            }
            Ok(())
        });
        assert_eq!(cell.load_atomic(), 10);
    }

    #[test]
    fn dropping_cell_reclaims_value() {
        // Mostly a miri/asan target: construct and drop cells holding heap
        // data and ensure no double free / leak panics.
        for _ in 0..100 {
            let cell = TCell::new(vec![1u8; 128]);
            drop(cell);
        }
    }
}
