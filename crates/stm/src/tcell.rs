//! Transactional memory cells.

use crate::sync::{Ordering, ShadowSlot};
use std::fmt;

use crossbeam_epoch::{self as epoch, Atomic, Shared};

use crate::error::TxResult;
use crate::orec::{Orec, OrecState};
use crate::slab;
use crate::snapshot::{self, CommitCtx, SnapshotPin};
use crate::txn::Txn;

/// A transactionally managed memory location holding a value of type `T`.
///
/// Each cell carries its own ownership record (orec), following the paper's
/// guidance that orecs be co-located with the data they protect.  The value
/// itself lives behind an epoch-managed pointer so that optimistic readers
/// can never observe a torn value: writers install a freshly allocated value
/// and retire the previous one through epoch-based reclamation.
///
/// Value storage comes from the size-classed slab (see `docs/PERF.md`):
/// small payloads are carved from recycled blocks rather than the global
/// allocator, so steady-state write churn — the `Link` towers of the skip
/// hash above all — performs no heap allocation.  Types that are too large
/// or over-aligned fall back to plain `Box`es transparently.
///
/// Cells are accessed inside transactions via [`TCell::read`] and
/// [`TCell::write`].  Outside of transactions, [`TCell::load_atomic`]
/// provides a consistent single-location snapshot (used by tests, statistics,
/// and destructors — never on the concurrent hot path).
///
/// # Example
///
/// ```
/// use skiphash_stm::{Stm, TCell};
///
/// let stm = Stm::new();
/// let cell = TCell::new(vec![1, 2, 3]);
/// stm.run(|tx| {
///     let mut v = cell.read(tx)?;
///     v.push(4);
///     cell.write(tx, v)
/// });
/// assert_eq!(cell.load_atomic(), vec![1, 2, 3, 4]);
/// ```
pub struct TCell<T> {
    pub(crate) orec: Orec,
    pub(crate) data: Atomic<T>,
    /// Race-detector shadow for the payload slot; zero-sized no-op outside
    /// model builds.  Writers mark installs, readers mark *validated* reads
    /// (after the orec recheck), and the model checker verifies each kept
    /// read is happens-after the install that produced its value.
    pub(crate) shadow: ShadowSlot,
}

impl<T> TCell<T> {
    /// Create a new cell holding `value`, with version 0.
    pub fn new(value: T) -> Self {
        Self::new_at(value, 0)
    }

    /// Create a new cell holding `value`, with its ownership record already
    /// at `version` — its *birth version*.
    ///
    /// For cells allocated at a runtime's birth, [`TCell::new`] (version 0)
    /// is always right.  Cells allocated **mid-lifetime** — a fresh node
    /// spliced into a long-lived structure — should instead be stamped with
    /// the creating attempt's [`read version`](crate::Txn::read_version):
    /// the snapshot registry decides whether a displaced payload is still
    /// needed by comparing pinned versions against the payload's start
    /// version, and a birth version of 0 makes every later-born cell look
    /// old enough to matter to *every* live snapshot, turning bounded
    /// custody into custody that grows with allocation churn.
    ///
    /// # Contract
    ///
    /// `version` must have been issued by the clock of the
    /// [`Stm`](crate::Stm) runtime that will manage this cell (any value at
    /// or below the clock's current reading, such as a transaction's read
    /// version).  A made-up version breaks snapshot validation: readers
    /// abort on any version above their read version, so a cell stamped
    /// ahead of the clock conflicts with every transaction until the clock
    /// catches up.
    pub fn new_at(value: T, version: u64) -> Self {
        let (ptr, _) = slab::alloc_value(value);
        let data = Atomic::null();
        data.store(Shared::from(ptr as *const T), Ordering::Relaxed);
        Self {
            orec: Orec::new(version),
            data,
            shadow: ShadowSlot::new("tcell.payload"),
        }
    }
}

impl<T: Clone + Send + Sync + 'static> TCell<T> {
    /// Transactionally read the cell, returning a clone of its value.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TxAbort::ReadConflict`] if the location is owned by a
    /// concurrent writer or has been written since the transaction began; the
    /// enclosing [`crate::Stm::run`] loop will retry the transaction.
    #[inline]
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn read(&self, tx: &mut Txn<'_>) -> TxResult<T> {
        tx.read_cell(self)
    }

    /// Transactionally overwrite the cell with `value`.
    ///
    /// The ownership record is acquired eagerly (on first write) and the new
    /// value becomes visible to the transaction's own subsequent reads
    /// immediately.  If the transaction aborts, the previous value is
    /// restored.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TxAbort::WriteConflict`] if the location is owned by
    /// a concurrent writer.
    #[inline]
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn write(&self, tx: &mut Txn<'_>, value: T) -> TxResult<()> {
        tx.write_cell(self, value)
    }

    /// Transactionally read the cell, mapping the committed value through
    /// `f` by reference instead of returning a clone.
    ///
    /// This is the zero-copy sibling of [`TCell::read`] for values that are
    /// expensive to clone or whose clone has side effects (reference-counted
    /// handles, buffers).  The value reference is only valid inside `f`;
    /// `f` **must be a pure function of its argument** — the orec is
    /// re-validated after `f` returns, and on a conflict the result is
    /// discarded and the transaction aborts, so `f` may observe a value
    /// that never validates.
    ///
    /// # Errors
    ///
    /// Same contract as [`TCell::read`].
    #[inline]
    #[must_use = "a TxAbort must be propagated with `?` so the enclosing transaction retries"]
    pub fn read_with<R>(&self, tx: &mut Txn<'_>, f: impl FnOnce(&T) -> R) -> TxResult<R> {
        tx.read_cell_with(self, f)
    }

    /// Overwrite the cell outside of any transaction.
    ///
    /// Spin-acquires the ownership record, installs the new value, and
    /// releases the orec at its **unchanged** version.  Intended for
    /// initialization (before the cell is shared) and single-threaded
    /// teardown (e.g. severing links in destructors); concurrent algorithms
    /// should use transactions.
    ///
    /// The store is atomic per location (an epoch-protected pointer swap —
    /// no reader ever observes a torn value), but it is *not* a committed
    /// transactional write: the version does not change, so a concurrent
    /// transaction's snapshot validation cannot order itself against it.
    /// The version deliberately must not be bumped here — orec versions are
    /// commit timestamps, and inventing one the clock never issued breaks
    /// logical clocks: a fresh `Counter`/`Sampled` runtime sits at 0, so a
    /// cell stamped `1` by initialization would make every transaction abort
    /// with `ReadConflict` forever (the clock only advances on commits, and
    /// no transaction can commit).  The old `Hardware` default masked
    /// exactly that livelock.
    pub fn store_atomic(&self, value: T) {
        let backoff = crossbeam_utils::Backoff::new();
        loop {
            let o1 = self.orec.raw();
            if let OrecState::Unlocked { version } = Orec::decode_raw(o1) {
                // Use a reserved owner id (u64::MAX >> 1) for non-transactional
                // stores; transaction attempt ids start at 1 and increment, so
                // they can never collide with it in practice.
                const STORE_OWNER: u64 = (1 << 62) - 1;
                if self.orec.try_acquire(version, STORE_OWNER) {
                    let (ptr, _) = slab::alloc_value(value);
                    let guard = epoch::pin();
                    let old =
                        self.data
                            .swap(Shared::from(ptr as *const T), Ordering::AcqRel, &guard);
                    self.shadow.on_write();
                    // SAFETY: `old` is unreachable once swapped out; the glue
                    // matches this cell's allocation path.
                    unsafe { guard.defer_with(old.as_raw() as *mut (), slab::drop_glue::<T>()) };
                    self.orec.release(version);
                    return;
                }
            }
            backoff.snooze();
        }
    }

    /// Resolve the cell at a pinned snapshot version, mapping the resolved
    /// value through `f` by reference.
    ///
    /// Returns exactly the value that was committed at the pin's version:
    /// the current payload when the cell has not been written since the pin,
    /// otherwise the payload preserved for the pin by the displacing commit
    /// (see the `snapshot` module docs for the custody protocol).  Never
    /// aborts and never conflicts with writers — at worst it spins briefly
    /// while the location is locked by an in-flight commit.
    ///
    /// `f` must be a pure function of its argument: on the current-value
    /// path the orec is re-validated after `f` runs and a concurrent change
    /// retries, so `f` may observe a value that is then discarded.
    ///
    /// # Panics
    ///
    /// Panics if `pin` was created by a different [`crate::Stm`] runtime
    /// than the one whose transactions version this cell — clock domains are
    /// incomparable, and the history the pin relies on was never preserved.
    /// (This is detectable only indirectly, as a missing history entry.)
    pub fn read_pinned_with<R>(&self, pin: &SnapshotPin, f: impl Fn(&T) -> R) -> R {
        let p = pin.version();
        let backoff = crossbeam_utils::Backoff::new();
        loop {
            let o1 = self.orec.raw();
            match Orec::decode_raw(o1) {
                OrecState::Unlocked { version } if version <= p => {
                    // Not written since the pin: the current payload *is* the
                    // payload at version `p`.  Same validated optimistic read
                    // as `load_atomic`, minus the clone.
                    let guard = epoch::pin();
                    let shared = self.data.load(Ordering::Acquire, &guard);
                    // SAFETY: protected by the pinned guard; a concurrent
                    // replacement defers reclamation past it, and the re-check
                    // below discards the result.
                    let result = f(unsafe { shared.deref() });
                    if self.orec.raw() == o1 {
                        self.shadow.on_read_confirmed();
                        return result;
                    }
                }
                OrecState::Unlocked { .. } => {
                    // Written after the pin: the payload at `p` was displaced
                    // and — because the displacing commit either collected
                    // this pin or its stamp precedes it — preserved in the
                    // history table (push precedes the orec release we just
                    // observed, so the entry is visible).
                    // SAFETY: `self` is a live `TCell<T>`, so every history
                    // entry keyed on its address holds a `T`.
                    let resolved = unsafe {
                        snapshot::read_history::<T, R>(self as *const Self as usize, p, &f)
                    };
                    match resolved {
                        Some(result) => return result,
                        None => panic!(
                            "snapshot pin at version {p} found no history for a cell at \
                             version {:?}; was the pin created by a different Stm runtime?",
                            Orec::decode_raw(o1)
                        ),
                    }
                }
                OrecState::Locked { .. } => {}
            }
            backoff.snooze();
        }
    }

    /// Read the cell outside of any transaction.
    ///
    /// Spins until it observes the location unlocked with an unchanged
    /// version before and after copying the value, so the returned value is
    /// always a committed one.  Intended for tests, reporting, and
    /// single-threaded teardown; concurrent algorithms should use
    /// transactions.
    pub fn load_atomic(&self) -> T {
        let backoff = crossbeam_utils::Backoff::new();
        loop {
            let guard = epoch::pin();
            let o1 = self.orec.raw();
            if let OrecState::Unlocked { .. } = Orec::decode_raw(o1) {
                let shared = self.data.load(Ordering::Acquire, &guard);
                // SAFETY: the pointer was installed by `new` or a
                // transactional write and cannot be reclaimed while `guard`
                // is pinned.
                let value = unsafe { shared.deref() }.clone();
                if self.orec.raw() == o1 {
                    self.shadow.on_read_confirmed();
                    return value;
                }
            }
            backoff.snooze();
        }
    }
}

impl<T> Drop for TCell<T> {
    fn drop(&mut self) {
        // Snapshot custody may still hold payloads this cell displaced; they
        // are dead now (no pinned reader can reach a cell being torn down)
        // and the chain must not survive the address being reused.  Gated so
        // snapshot-free workloads never touch the table.
        if snapshot::any_history() {
            snapshot::purge_cell(self as *const Self as usize);
        }
        // We have exclusive access; reclaim the current value immediately
        // (returning its block to the slab).
        // SAFETY: `&mut self` guarantees no concurrent access, and the
        // pointer is either null or owned by this cell.
        unsafe {
            let shared = self.data.load(Ordering::Relaxed, epoch::unprotected());
            if !shared.is_null() {
                slab::free_value_now(shared.as_raw() as *mut T);
            }
        }
    }
}

impl<T: Clone + Send + Sync + fmt::Debug + 'static> fmt::Debug for TCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TCell")
            .field("value", &self.load_atomic())
            .finish()
    }
}

impl<T: Clone + Send + Sync + Default + 'static> Default for TCell<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

// SAFETY: all shared-state mutation goes through the orec protocol plus
// atomic pointer swaps; values are only dropped through epoch-based
// reclamation or with exclusive access.
unsafe impl<T: Send + Sync> Send for TCell<T> {}
unsafe impl<T: Send + Sync> Sync for TCell<T> {}

/// One undo-log entry: a pending transactional write, type-erased through
/// monomorphic function pointers instead of a `Box<dyn ...>` object.
///
/// The previous design heap-allocated a trait object per write; this record
/// is plain data that lives in the pooled write log, so logging a write costs
/// a `Vec` push.  Displaced values are not retired through the epoch one at
/// a time either: they are collected into the transaction's
/// [`epoch::Bag`] and flushed in a single thread-local access when the
/// transaction finishes, so a commit with `k` writes pins once and flushes
/// once.
pub(crate) struct WriteEntry {
    cell: *const (),
    old_version: u64,
    old_data: *const (),
    commit_fn: unsafe fn(*const (), *const (), u64, &mut epoch::Bag, u64, &CommitCtx<'_>),
    abort_fn: unsafe fn(*const (), *const (), u64, &epoch::Guard, &mut epoch::Bag),
}

// SAFETY: contract — `cell` must point at the live `TCell<T>` recorded by
// `WriteEntry::new`, with this transaction owning its orec; called exactly
// once per entry, from the committing transaction, with its guard pinned.
unsafe fn commit_write<T: Send + Sync + 'static>(
    cell: *const (),
    old_data: *const (),
    old_version: u64,
    retired: &mut epoch::Bag,
    version: u64,
    ctx: &CommitCtx<'_>,
) {
    // SAFETY: forwarded from `WriteEntry::commit`'s contract; `old_data` was
    // displaced by this transaction's own write and is unreachable to new
    // readers.
    unsafe {
        if !old_data.is_null() {
            if ctx.covers(old_version, version) {
                // A live snapshot pin resolves inside this payload's validity
                // window `[old_version, version)`: preserve it in the history
                // table instead of retiring it.  The push must precede the
                // orec release below — a pinned reader that observes the new
                // version must find the entry.
                snapshot::push_history(
                    cell as usize,
                    ctx.tag,
                    old_version,
                    old_data as *mut (),
                    slab::drop_glue::<T>(),
                );
            } else {
                retired.defer_with(old_data as *mut (), slab::drop_glue::<T>());
            }
        }
        (*(cell as *const TCell<T>)).orec.release(version);
    }
}

// SAFETY: contract — same as `commit_write`, from the aborting transaction
// while it still owns the orec.
unsafe fn abort_write<T: Send + Sync + 'static>(
    cell: *const (),
    old_data: *const (),
    old_version: u64,
    guard: &epoch::Guard,
    retired: &mut epoch::Bag,
) {
    // SAFETY: forwarded from `WriteEntry::abort`'s contract; the transaction
    // owns the orec, so nobody else can swap the data pointer concurrently.
    unsafe {
        let cell = &*(cell as *const TCell<T>);
        let old = Shared::from(old_data as *const T);
        let current = cell.data.swap(old, Ordering::AcqRel, guard);
        cell.shadow.on_write();
        if !current.is_null() {
            retired.defer_with(current.as_raw() as *mut (), slab::drop_glue::<T>());
        }
        cell.orec.release(old_version);
    }
}

impl WriteEntry {
    pub(crate) fn new<T: Send + Sync + 'static>(
        cell: *const TCell<T>,
        old_version: u64,
        old_data: *const T,
    ) -> Self {
        Self {
            cell: cell as *const (),
            old_version,
            old_data: old_data as *const (),
            commit_fn: commit_write::<T>,
            abort_fn: abort_write::<T>,
        }
    }

    /// Park the pre-transaction value in `retired` (or preserve it for a
    /// live snapshot pin per `ctx`) and release the orec at `version`.
    /// Called on commit.
    ///
    /// # Safety
    ///
    /// Must only be called by the owning transaction, exactly once, with the
    /// transaction's epoch guard still pinned; `retired` must be flushed
    /// through that guard before it is unpinned.
    pub(crate) unsafe fn commit(
        &self,
        retired: &mut epoch::Bag,
        version: u64,
        ctx: &CommitCtx<'_>,
    ) {
        // SAFETY: forwarded to the monomorphic glue under the same contract.
        unsafe {
            (self.commit_fn)(
                self.cell,
                self.old_data,
                self.old_version,
                retired,
                version,
                ctx,
            )
        }
    }

    /// Restore the pre-transaction value, release the orec at its old
    /// version, and park the displaced value in `retired`.  Called on abort.
    ///
    /// # Safety
    ///
    /// Same contract as [`WriteEntry::commit`].
    pub(crate) unsafe fn abort(&self, guard: &epoch::Guard, retired: &mut epoch::Bag) {
        // SAFETY: forwarded to the monomorphic glue under the same contract.
        unsafe { (self.abort_fn)(self.cell, self.old_data, self.old_version, guard, retired) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stm;

    #[test]
    fn new_cell_holds_initial_value() {
        let cell = TCell::new(41u32);
        assert_eq!(cell.load_atomic(), 41);
    }

    #[test]
    fn default_cell_is_default_value() {
        let cell: TCell<u64> = TCell::default();
        assert_eq!(cell.load_atomic(), 0);
    }

    #[test]
    fn debug_includes_value() {
        let cell = TCell::new(7u8);
        assert!(format!("{cell:?}").contains('7'));
    }

    #[test]
    fn write_is_visible_after_commit() {
        let stm = Stm::new();
        let cell = TCell::new(String::from("a"));
        stm.run(|tx| cell.write(tx, String::from("b")));
        assert_eq!(cell.load_atomic(), "b");
    }

    #[test]
    fn read_after_write_sees_own_update() {
        let stm = Stm::new();
        let cell = TCell::new(1u64);
        let observed = stm.run(|tx| {
            cell.write(tx, 2)?;
            cell.read(tx)
        });
        assert_eq!(observed, 2);
    }

    #[test]
    fn multiple_writes_in_one_txn_keep_last() {
        let stm = Stm::new();
        let cell = TCell::new(0u64);
        stm.run(|tx| {
            for i in 1..=10u64 {
                cell.write(tx, i)?;
            }
            Ok(())
        });
        assert_eq!(cell.load_atomic(), 10);
    }

    #[test]
    fn dropping_cell_reclaims_value() {
        // Mostly a miri/asan target: construct and drop cells holding heap
        // data and ensure no double free / leak panics.
        for _ in 0..100 {
            let cell = TCell::new(vec![1u8; 128]);
            drop(cell);
        }
    }

    #[test]
    fn slab_ineligible_values_still_round_trip() {
        // 1 KiB payloads exceed every slab class, exercising the Box
        // fallback across write, overwrite, and store_atomic.
        let stm = Stm::new();
        let cell = TCell::new([1u8; 1024]);
        stm.run(|tx| {
            cell.write(tx, [2u8; 1024])?;
            cell.write(tx, [3u8; 1024])
        });
        assert_eq!(cell.load_atomic()[0], 3);
        cell.store_atomic([4u8; 1024]);
        assert_eq!(cell.load_atomic()[0], 4);
    }

    #[test]
    fn heap_values_survive_slab_round_trips() {
        // Values owning heap data (String) exercise the drop glue: the value
        // must be dropped exactly once when its block is recycled.
        let stm = Stm::new();
        let cell = TCell::new(String::from("start"));
        // Enough churn to cycle blocks through the slab several times; Miri
        // runs a scaled-down count (interpreted execution is ~1000x slower).
        let rounds: usize = if cfg!(miri) { 64 } else { 1000 };
        for i in 0..rounds {
            stm.run(|tx| cell.write(tx, format!("value-{i}")));
        }
        assert_eq!(cell.load_atomic(), format!("value-{}", rounds - 1));
    }
}
