//! Ownership records.
//!
//! An orec is a single 64-bit word co-located with the data it protects (the
//! paper's design principle: "orecs should be co-located with the objects
//! they protect, not kept in a separate table").  The word encodes either
//!
//! * an **unlocked** state holding the version (commit timestamp) of the last
//!   transaction that wrote the location, or
//! * a **locked** state holding the id of the transaction attempt that
//!   currently owns the location.
//!
//! The low bit is the lock flag; the remaining 63 bits hold the version or
//! the owner id.

use crate::sync::{AtomicU64, Ordering};
use std::fmt;

/// Decoded view of an orec word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrecState {
    /// Unlocked; the payload is the version of the last committed write.
    Unlocked {
        /// Commit timestamp of the last writer.
        version: u64,
    },
    /// Locked; the payload is the owning transaction attempt's id.
    Locked {
        /// Owner transaction attempt id.
        owner: u64,
    },
}

/// Raw orec word plus encode/decode helpers.
pub struct Orec {
    word: AtomicU64,
}

impl fmt::Debug for Orec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Orec")
            .field("state", &self.state())
            .finish()
    }
}

const LOCK_BIT: u64 = 1;

#[inline]
fn encode_version(version: u64) -> u64 {
    debug_assert!(version < (1 << 63), "version overflow");
    version << 1
}

#[inline]
fn encode_owner(owner: u64) -> u64 {
    debug_assert!(owner < (1 << 63), "owner id overflow");
    (owner << 1) | LOCK_BIT
}

#[inline]
fn decode(word: u64) -> OrecState {
    if word & LOCK_BIT == LOCK_BIT {
        OrecState::Locked { owner: word >> 1 }
    } else {
        OrecState::Unlocked { version: word >> 1 }
    }
}

impl Orec {
    /// Create an orec recording an initial version.
    pub fn new(version: u64) -> Self {
        Self {
            word: AtomicU64::new(encode_version(version)),
        }
    }

    /// Load and decode the orec.
    #[inline]
    pub fn state(&self) -> OrecState {
        decode(self.word.load(Ordering::Acquire))
    }

    /// Load the raw word (used by read-set validation, which only needs to
    /// compare for equality).
    #[inline]
    pub fn raw(&self) -> u64 {
        self.word.load(Ordering::Acquire)
    }

    /// Decode a previously sampled raw word.
    #[inline]
    pub fn decode_raw(word: u64) -> OrecState {
        decode(word)
    }

    /// Returns true if the raw word encodes a lock held by `owner`.
    #[inline]
    pub fn raw_is_owned_by(word: u64, owner: u64) -> bool {
        word == encode_owner(owner)
    }

    /// Attempt to acquire the orec for `owner`, expecting it to currently be
    /// unlocked at exactly `expected_version`.
    ///
    /// Returns `true` on success.  On failure the orec was either locked by
    /// another transaction or its version changed, both of which the caller
    /// must treat as a write conflict.
    #[inline]
    pub fn try_acquire(&self, expected_version: u64, owner: u64) -> bool {
        self.word
            .compare_exchange(
                encode_version(expected_version),
                encode_owner(owner),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Release the orec, installing `version` as the new committed version.
    ///
    /// Only the owner may call this (enforced by the transaction machinery).
    #[inline]
    pub fn release(&self, version: u64) {
        self.word.store(encode_version(version), Ordering::Release);
    }

    /// True if the orec is currently locked by `owner`.
    #[inline]
    pub fn is_owned_by(&self, owner: u64) -> bool {
        self.word.load(Ordering::Acquire) == encode_owner(owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_orec_is_unlocked_at_version() {
        let o = Orec::new(7);
        assert_eq!(o.state(), OrecState::Unlocked { version: 7 });
    }

    #[test]
    fn acquire_succeeds_only_at_expected_version() {
        let o = Orec::new(3);
        assert!(!o.try_acquire(2, 99), "wrong version must fail");
        assert!(o.try_acquire(3, 99));
        assert_eq!(o.state(), OrecState::Locked { owner: 99 });
        assert!(o.is_owned_by(99));
        assert!(!o.is_owned_by(98));
        // A second acquire while locked must fail.
        assert!(!o.try_acquire(3, 100));
    }

    #[test]
    fn release_installs_new_version() {
        let o = Orec::new(0);
        assert!(o.try_acquire(0, 5));
        o.release(42);
        assert_eq!(o.state(), OrecState::Unlocked { version: 42 });
        assert!(!o.is_owned_by(5));
    }

    #[test]
    fn raw_round_trips() {
        let o = Orec::new(10);
        let raw = o.raw();
        assert_eq!(Orec::decode_raw(raw), OrecState::Unlocked { version: 10 });
        assert!(o.try_acquire(10, 77));
        assert!(Orec::raw_is_owned_by(o.raw(), 77));
        assert!(!Orec::raw_is_owned_by(o.raw(), 78));
    }
}
