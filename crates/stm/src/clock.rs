//! Global version clock sources.
//!
//! The STM orders transactions with a global version clock.  The paper
//! evaluates three flavours:
//!
//! * `gv1` — a single shared counter incremented on every writer commit.
//! * `gv5`-style — a shared counter that writers bump lazily (commits may
//!   share a timestamp, trading precision for fewer contended increments).
//! * `rdtscp` — the hardware timestamp counter, which provides monotonically
//!   increasing values without any shared cache line.
//!
//! All the skip hash experiments in the paper use the hardware clock; the
//! logical clocks are provided for the ablation discussed in §5.1.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A source of monotonically non-decreasing timestamps used as transaction
/// read and write versions.
pub trait ClockSource: Send + Sync + fmt::Debug {
    /// Sample the clock without advancing it (used to pick a transaction's
    /// read version).
    fn now(&self) -> u64;

    /// Advance the clock and return a value strictly greater than every value
    /// returned by `now` before this call on any thread (used as a writer's
    /// commit version).
    fn tick(&self) -> u64;

    /// A short name for reports.
    fn name(&self) -> &'static str;
}

/// Identifies one of the built-in clock implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockKind {
    /// Shared counter incremented on every writer commit (TL2 `gv1`).
    Counter,
    /// Shared counter incremented only when a writer observes that the clock
    /// has not moved since its read version was taken (`gv5`-style).
    Sampled,
    /// Hardware timestamp counter (`rdtscp`-style).  Falls back to a striped
    /// logical clock on targets without a TSC.
    Hardware,
}

impl ClockKind {
    /// Instantiate the clock.
    pub fn build(self) -> Box<dyn ClockSource> {
        match self {
            ClockKind::Counter => Box::new(CounterClock::new()),
            ClockKind::Sampled => Box::new(SampledClock::new()),
            ClockKind::Hardware => Box::new(HardwareClock::new()),
        }
    }
}

impl fmt::Display for ClockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClockKind::Counter => "gv1-counter",
            ClockKind::Sampled => "gv5-sampled",
            ClockKind::Hardware => "hardware-tsc",
        };
        f.write_str(s)
    }
}

/// `gv1`: a single shared counter, incremented on every writer commit.
#[derive(Debug, Default)]
pub struct CounterClock {
    counter: AtomicU64,
}

impl CounterClock {
    /// Create a counter clock starting at zero.
    pub fn new() -> Self {
        Self {
            counter: AtomicU64::new(0),
        }
    }
}

impl ClockSource for CounterClock {
    fn now(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }

    fn tick(&self) -> u64 {
        self.counter.fetch_add(1, Ordering::SeqCst) + 1
    }

    fn name(&self) -> &'static str {
        "gv1-counter"
    }
}

/// `gv5`-style clock: writers reuse the current value when it has already
/// advanced past their read version, so many commits can share a timestamp.
///
/// This reduces contention on the shared counter at the cost of spurious
/// validation failures (two writers sharing a timestamp cannot be ordered by
/// it).  The skip hash paper reports that this clock interacts poorly with
/// the range query coordinator's assumptions, which our reproduction of
/// Table 1/Fig. 6 can demonstrate by switching clock kinds.
#[derive(Debug, Default)]
pub struct SampledClock {
    counter: AtomicU64,
}

impl SampledClock {
    /// Create a sampled clock starting at zero.
    pub fn new() -> Self {
        Self {
            counter: AtomicU64::new(0),
        }
    }
}

impl ClockSource for SampledClock {
    fn now(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }

    fn tick(&self) -> u64 {
        // Advance by one, but only if nobody else already advanced the clock
        // "recently".  A failed CAS means another writer advanced it for us
        // and we can reuse the new value, emulating gv5's shared increments.
        let cur = self.counter.load(Ordering::SeqCst);
        match self
            .counter
            .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => cur + 1,
            Err(newer) => newer,
        }
    }

    fn name(&self) -> &'static str {
        "gv5-sampled"
    }
}

/// Hardware timestamp clock.
///
/// On `x86_64` this reads the time-stamp counter, which modern CPUs keep
/// synchronized and monotonic across cores ("invariant TSC"), giving
/// transactions timestamps without touching a shared cache line — exactly the
/// `rdtscp` optimization the paper applies to the skip hash and to the vCAS /
/// bundling baselines.  On other targets it falls back to a shared counter
/// advanced with relaxed increments, preserving monotonicity.
#[derive(Debug, Default)]
pub struct HardwareClock {
    #[cfg_attr(target_arch = "x86_64", allow(dead_code))]
    fallback: AtomicU64,
}

impl HardwareClock {
    /// Create a hardware clock.
    pub fn new() -> Self {
        Self {
            fallback: AtomicU64::new(1),
        }
    }

    #[cfg(target_arch = "x86_64")]
    fn sample(&self) -> u64 {
        // SAFETY: `_rdtsc` has no preconditions; it merely reads the TSC.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    #[cfg(not(target_arch = "x86_64"))]
    fn sample(&self) -> u64 {
        self.fallback.fetch_add(1, Ordering::Relaxed)
    }
}

impl ClockSource for HardwareClock {
    fn now(&self) -> u64 {
        self.sample()
    }

    fn tick(&self) -> u64 {
        self.sample()
    }

    fn name(&self) -> &'static str {
        "hardware-tsc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn exercise(clock: &dyn ClockSource) {
        let a = clock.now();
        let b = clock.tick();
        let c = clock.now();
        assert!(b >= a, "tick must not go backwards: {a} -> {b}");
        assert!(c >= a, "now must not go backwards: {a} -> {c}");
    }

    #[test]
    fn counter_clock_monotonic() {
        exercise(&CounterClock::new());
    }

    #[test]
    fn sampled_clock_monotonic() {
        exercise(&SampledClock::new());
    }

    #[test]
    fn hardware_clock_monotonic() {
        exercise(&HardwareClock::new());
    }

    #[test]
    fn counter_ticks_are_unique_across_threads() {
        let clock = Arc::new(CounterClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let clock = Arc::clone(&clock);
            handles.push(thread::spawn(move || {
                (0..1000).map(|_| clock.tick()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "gv1 ticks must be unique");
    }

    #[test]
    fn clock_kind_builds_named_clocks() {
        assert_eq!(ClockKind::Counter.build().name(), "gv1-counter");
        assert_eq!(ClockKind::Sampled.build().name(), "gv5-sampled");
        assert_eq!(ClockKind::Hardware.build().name(), "hardware-tsc");
        assert_eq!(ClockKind::Hardware.to_string(), "hardware-tsc");
    }

    #[test]
    fn sampled_clock_never_exceeds_commit_count() {
        let clock = SampledClock::new();
        for _ in 0..100 {
            clock.tick();
        }
        assert!(clock.now() <= 100);
        assert!(clock.now() > 0);
    }
}
