//! Global version clock sources.
//!
//! The STM orders transactions with a global version clock.  The paper
//! evaluates three flavours:
//!
//! * `gv1` — a single shared counter incremented on every writer commit.
//! * `gv5`-style — a shared counter that a writer first tries to advance from
//!   its *own* read version; when that CAS succeeds the writer has proven no
//!   other transaction committed since it sampled the clock, so it can skip
//!   read-set validation entirely (the §5.1 ablation this workspace defaults
//!   to).
//! * `rdtscp` — the hardware timestamp counter, which provides monotonically
//!   increasing values without any shared cache line.
//!
//! The paper's headline experiments use the hardware clock
//! ([`crate::Stm`]s built from `Config::paper()` still do); this crate
//! defaults to [`ClockKind::Sampled`] because with a timestamp clock the
//! quiescence fast path below can never fire, making every writer commit pay
//! an O(reads) validation walk.
//!
//! # The quiescence fast path, and why `tick` takes the read version
//!
//! TL2 skips commit-time read-set validation when `wv == rv + 1`: if this
//! writer's tick moved the clock directly from its read version to the next
//! value, no other transaction can have committed in between, so nothing the
//! writer read can have changed.  That implication only holds when the clock
//! can *prove* the transition was exclusive — which is why
//! [`ClockSource::tick`] receives the caller's `rv` and reports
//! [`CommitStamp::quiescent`] itself, instead of letting callers compare
//! `wv == rv + 1` after the fact:
//!
//! * a naive "sampled" clock that adopts another writer's tick on CAS failure
//!   would hand two concurrent writers the same `wv = rv + 1`, and the loser —
//!   which very much did race another commit — would wrongly skip validation
//!   (a lost-update bug);
//! * worse, returning an *already published* clock value from `tick` violates
//!   the contract below ("strictly greater than every value `now` has
//!   returned"), and read-only transactions rely on that contract: a reader
//!   with `rv = v` may admit any version `<= v`, so a writer committing *at*
//!   `v` concurrently with that reader can tear its snapshot.
//!
//! [`SampledClock::tick`] therefore claims `rv + 1` with a single CAS and
//! reports `quiescent` only when that claim succeeded; on failure it falls
//! back to a unique `fetch_add` tick, exactly like `gv1`.

use crate::sync::{AtomicU64, Ordering};
use std::fmt;

/// A writer's commit timestamp plus the clock's quiescence verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitStamp {
    /// The commit (write) version.
    pub wv: u64,
    /// True only when the clock proves no other transaction committed between
    /// the caller's read-version sample and this tick; the caller may then
    /// skip commit-time read-set validation.
    pub quiescent: bool,
}

/// A source of monotonically non-decreasing timestamps used as transaction
/// read and write versions.
pub trait ClockSource: Send + Sync + fmt::Debug {
    /// Sample the clock without advancing it (used to pick a transaction's
    /// read version).
    fn now(&self) -> u64;

    /// Advance the clock for a writer that sampled `rv` from [`Self::now`],
    /// returning its commit stamp.
    ///
    /// `wv` must be strictly greater than every value returned by `now`
    /// before this call on any thread, and `quiescent` may be `true` only
    /// when no other `tick` completed between the caller's `now` sample and
    /// this call (see the module docs for why this must be decided here).
    fn tick(&self, rv: u64) -> CommitStamp;

    /// Advance the clock so every future [`ClockSource::tick`] returns a
    /// `wv` strictly greater than `version`; return `false` when this clock
    /// cannot be advanced.
    ///
    /// Recovery hook for durability layers (see
    /// [`Stm::advance_clock_to`](crate::Stm::advance_clock_to)): logical
    /// clocks implement it with a saturating maximum, so concurrent callers
    /// and ongoing ticks stay monotonic.  The default declines — a clock
    /// whose values are not assignable (the hardware TSC) must not pretend
    /// to have moved.
    fn advance_to(&self, version: u64) -> bool {
        let _ = version;
        false
    }

    /// A short name for reports.
    fn name(&self) -> &'static str;
}

/// Identifies one of the built-in clock implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockKind {
    /// Shared counter incremented on every writer commit (TL2 `gv1`).
    Counter,
    /// Shared counter that writers first try to advance from their own read
    /// version (`gv5`-style); a successful claim proves quiescence and lets
    /// the commit skip read-set validation.  The default.
    Sampled,
    /// Hardware timestamp counter (`rdtscp`-style).  Falls back to a striped
    /// logical clock on targets without a TSC.  Never quiescent: timestamps
    /// are not consecutive, so every writer commit validates its read set.
    Hardware,
    /// Pick between [`ClockKind::Sampled`] and [`ClockKind::Hardware`] from
    /// [`std::thread::available_parallelism`] when the [`crate::Stm`] is
    /// constructed.
    ///
    /// The trade-off (see the module docs): `Sampled` lets uncontended
    /// writers skip read-set validation, but every writer commit CASes one
    /// shared cache line — exactly the line the paper's `rdtscp` clock exists
    /// to avoid on large machines.  Below
    /// [`ClockKind::AUTO_HARDWARE_THRESHOLD`] hardware threads the shared
    /// line is cheap and the validation skip wins; at or above it the
    /// machine is big enough that the contention-free timestamp wins.
    /// Override the threshold with
    /// [`StmBuilder::auto_threshold`](crate::StmBuilder::auto_threshold).
    ///
    /// `Auto` is resolved once, at construction:
    /// [`Stm::clock_kind`](crate::Stm::clock_kind) always reports the
    /// concrete clock that was chosen, never `Auto` itself.
    Auto,
}

impl ClockKind {
    /// Hardware-thread count at which [`ClockKind::Auto`] switches from
    /// `Sampled` to `Hardware`.
    ///
    /// Conservative placeholder for the crossover the paper observes
    /// qualitatively ("the shared clock line becomes the bottleneck on large
    /// machines"): below 32 hardware threads the sampled clock's
    /// validation-skip fast path dominates the cost of its shared line.
    /// Measure on your machine and override with
    /// [`StmBuilder::auto_threshold`](crate::StmBuilder::auto_threshold) if
    /// your crossover differs.
    pub const AUTO_HARDWARE_THRESHOLD: usize = 32;

    /// Resolve `Auto` to a concrete clock using `threshold` as the
    /// hardware-thread count at which `Hardware` wins; other kinds resolve
    /// to themselves.
    pub fn resolve_with(self, threshold: usize) -> ClockKind {
        match self {
            ClockKind::Auto => {
                let parallelism = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                if parallelism >= threshold {
                    ClockKind::Hardware
                } else {
                    ClockKind::Sampled
                }
            }
            concrete => concrete,
        }
    }

    /// Resolve `Auto` with the default
    /// [`ClockKind::AUTO_HARDWARE_THRESHOLD`].
    pub fn resolve(self) -> ClockKind {
        self.resolve_with(Self::AUTO_HARDWARE_THRESHOLD)
    }

    /// Instantiate the clock (`Auto` resolves with the default threshold
    /// first).
    pub fn build(self) -> Box<dyn ClockSource> {
        match self.resolve() {
            ClockKind::Counter => Box::new(CounterClock::new()),
            ClockKind::Sampled => Box::new(SampledClock::new()),
            ClockKind::Hardware => Box::new(HardwareClock::new()),
            ClockKind::Auto => unreachable!("resolve never returns Auto"),
        }
    }
}

impl fmt::Display for ClockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClockKind::Counter => "gv1-counter",
            ClockKind::Sampled => "gv5-sampled",
            ClockKind::Hardware => "hardware-tsc",
            ClockKind::Auto => "auto",
        };
        f.write_str(s)
    }
}

/// `gv1`: a single shared counter, incremented on every writer commit.
#[derive(Debug, Default)]
pub struct CounterClock {
    counter: AtomicU64,
}

impl CounterClock {
    /// Create a counter clock starting at zero.
    pub fn new() -> Self {
        Self {
            counter: AtomicU64::new(0),
        }
    }
}

impl ClockSource for CounterClock {
    fn now(&self) -> u64 {
        // SC: the global version clock defines TL2's commit total order; a
        // read-version sample must not be reorderable around commit ticks.
        self.counter.load(Ordering::SeqCst)
    }

    fn tick(&self, rv: u64) -> CommitStamp {
        // SC: commit ticks and read samples must agree on one total order.
        let prev = self.counter.fetch_add(1, Ordering::SeqCst);
        CommitStamp {
            wv: prev + 1,
            // fetch_add hands out unique predecessors, so observing our own
            // read version here proves nobody ticked since we sampled it.
            quiescent: prev == rv,
        }
    }

    fn advance_to(&self, version: u64) -> bool {
        // SC: the adopted version joins the same total order as every
        // sample and tick — a reader must never observe the clock moving
        // backwards past the advance.
        let _ = self
            .counter
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                (cur < version).then_some(version)
            });
        true
    }

    fn name(&self) -> &'static str {
        "gv1-counter"
    }
}

/// `gv5`-style clock: a writer first tries to claim `rv + 1` with a single
/// CAS from its own read version; success proves quiescence (no commit
/// happened since its sample) and skips read-set validation.  On failure it
/// degenerates to a unique `gv1`-style tick.
///
/// Under low contention almost every writer commit takes the quiescent path,
/// which is the ablation the paper discusses in §5.1; under heavy contention
/// the shared counter costs what `gv1` costs.  [`HardwareClock`] avoids the
/// shared cache line entirely but can never prove quiescence.
#[derive(Debug, Default)]
pub struct SampledClock {
    counter: AtomicU64,
}

impl SampledClock {
    /// Create a sampled clock starting at zero.
    pub fn new() -> Self {
        Self {
            counter: AtomicU64::new(0),
        }
    }
}

impl ClockSource for SampledClock {
    fn now(&self) -> u64 {
        // SC: same total-order contract as `CounterClock::now`.
        self.counter.load(Ordering::SeqCst)
    }

    fn tick(&self, rv: u64) -> CommitStamp {
        // SC: claim rv + 1 exclusively in the clock's total order.  Success
        // means the clock has not moved since our read sample, hence no
        // transaction committed in between.
        if self
            .counter
            .compare_exchange(rv, rv + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            return CommitStamp {
                wv: rv + 1,
                quiescent: true,
            };
        }
        // Somebody committed since we sampled; take a unique tick so our wv
        // is strictly newer than anything `now` has returned (reusing the
        // winner's value would let a concurrent reader admit our writes
        // mid-flight and tear its snapshot).  Never quiescent: the failed
        // CAS already proved a commit intervened since `rv`.
        //
        // `model_mutation` builds re-seed the original bug — adopting the
        // winner's value instead of taking a fresh tick — so the model
        // checker can demonstrate the resulting snapshot tear (see
        // docs/VERIFICATION.md).
        #[cfg(model_mutation)]
        {
            // SC: seeded bug still reads the clock in its total order.
            let cur = self.counter.load(Ordering::SeqCst);
            return CommitStamp {
                wv: cur,
                quiescent: false,
            };
        }
        #[cfg(not(model_mutation))]
        {
            // SC: unique tick in the same total order as `now` samples.
            let prev = self.counter.fetch_add(1, Ordering::SeqCst);
            CommitStamp {
                wv: prev + 1,
                quiescent: false,
            }
        }
    }

    fn advance_to(&self, version: u64) -> bool {
        // SC: same contract as `CounterClock::advance_to` — the adopted
        // version joins the clock's total order.
        let _ = self
            .counter
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                (cur < version).then_some(version)
            });
        true
    }

    fn name(&self) -> &'static str {
        "gv5-sampled"
    }
}

/// Hardware timestamp clock.
///
/// On `x86_64` this reads the time-stamp counter, which modern CPUs keep
/// synchronized and monotonic across cores ("invariant TSC"), giving
/// transactions timestamps without touching a shared cache line — exactly the
/// `rdtscp` optimization the paper applies to the skip hash and to the vCAS /
/// bundling baselines.  On other targets it falls back to a shared counter
/// advanced with relaxed increments, preserving monotonicity.
///
/// Because two TSC reads are never consecutive integers, a hardware-clocked
/// writer can never prove quiescence and always validates its read set.
#[derive(Debug, Default)]
pub struct HardwareClock {
    #[cfg_attr(target_arch = "x86_64", allow(dead_code))]
    fallback: AtomicU64,
}

impl HardwareClock {
    /// Create a hardware clock.
    pub fn new() -> Self {
        Self {
            fallback: AtomicU64::new(1),
        }
    }

    #[cfg(target_arch = "x86_64")]
    fn sample(&self) -> u64 {
        // SAFETY: `_rdtsc` has no preconditions; it merely reads the TSC.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    #[cfg(not(target_arch = "x86_64"))]
    fn sample(&self) -> u64 {
        self.fallback.fetch_add(1, Ordering::Relaxed)
    }
}

impl ClockSource for HardwareClock {
    fn now(&self) -> u64 {
        self.sample()
    }

    fn tick(&self, _rv: u64) -> CommitStamp {
        CommitStamp {
            wv: self.sample(),
            quiescent: false,
        }
    }

    fn name(&self) -> &'static str {
        "hardware-tsc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn exercise(clock: &dyn ClockSource) {
        let a = clock.now();
        let stamp = clock.tick(a);
        let c = clock.now();
        assert!(
            stamp.wv >= a,
            "tick must not go backwards: {a} -> {stamp:?}"
        );
        assert!(c >= a, "now must not go backwards: {a} -> {c}");
    }

    #[test]
    fn counter_clock_monotonic() {
        exercise(&CounterClock::new());
    }

    #[test]
    fn sampled_clock_monotonic() {
        exercise(&SampledClock::new());
    }

    #[test]
    fn hardware_clock_monotonic() {
        exercise(&HardwareClock::new());
    }

    #[test]
    fn counter_ticks_are_unique_across_threads() {
        let clock = Arc::new(CounterClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let clock = Arc::clone(&clock);
            handles.push(thread::spawn(move || {
                (0..1000)
                    .map(|_| clock.tick(clock.now()).wv)
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "gv1 ticks must be unique");
    }

    #[test]
    fn sampled_ticks_are_unique_across_threads() {
        // The soundness property the STM relies on: even under racing
        // commits, no two writers ever share a commit version (the old
        // adopt-the-winner behaviour violated this).
        let clock = Arc::new(SampledClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let clock = Arc::clone(&clock);
            handles.push(thread::spawn(move || {
                (0..1000)
                    .map(|_| clock.tick(clock.now()).wv)
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let len = all.len();
        all.dedup();
        assert_eq!(all.len(), len, "gv5 ticks must be unique");
    }

    #[test]
    fn clock_kind_builds_named_clocks() {
        assert_eq!(ClockKind::Counter.build().name(), "gv1-counter");
        assert_eq!(ClockKind::Sampled.build().name(), "gv5-sampled");
        assert_eq!(ClockKind::Hardware.build().name(), "hardware-tsc");
        assert_eq!(ClockKind::Hardware.to_string(), "hardware-tsc");
        assert_eq!(ClockKind::Auto.to_string(), "auto");
    }

    #[test]
    fn auto_resolves_to_a_concrete_kind_by_threshold() {
        // Threshold 1: every machine has at least one hardware thread.
        assert_eq!(ClockKind::Auto.resolve_with(1), ClockKind::Hardware);
        // An unreachable threshold keeps the sampled clock.
        assert_eq!(ClockKind::Auto.resolve_with(usize::MAX), ClockKind::Sampled);
        // The default resolution is one of the two, never Auto itself.
        assert_ne!(ClockKind::Auto.resolve(), ClockKind::Auto);
        // Concrete kinds resolve to themselves regardless of threshold.
        assert_eq!(ClockKind::Counter.resolve_with(1), ClockKind::Counter);
        assert_eq!(
            ClockKind::Hardware.resolve_with(usize::MAX),
            ClockKind::Hardware
        );
    }

    #[test]
    fn uncontended_sampled_ticks_are_quiescent() {
        let clock = SampledClock::new();
        for _ in 0..100 {
            let rv = clock.now();
            let stamp = clock.tick(rv);
            assert_eq!(stamp.wv, rv + 1);
            assert!(stamp.quiescent, "an exclusive claim proves quiescence");
        }
        assert_eq!(clock.now(), 100);
    }

    #[test]
    fn stale_read_version_is_never_quiescent() {
        let clock = SampledClock::new();
        let rv = clock.now();
        let _ = clock.tick(clock.now()); // another writer commits
        let stamp = clock.tick(rv);
        assert!(!stamp.quiescent, "a commit intervened since rv was sampled");
        assert!(stamp.wv > rv + 1, "the fallback tick must be unique");

        let counter = CounterClock::new();
        let rv = counter.now();
        let _ = counter.tick(rv);
        assert!(!counter.tick(rv).quiescent);
    }

    #[test]
    fn hardware_clock_never_claims_quiescence() {
        let clock = HardwareClock::new();
        let rv = clock.now();
        assert!(!clock.tick(rv).quiescent);
    }
}
