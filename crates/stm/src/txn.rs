//! Transactions and the STM runtime.

use crate::sync::{fence, AtomicU64, Ordering};
use std::fmt;

use crossbeam_epoch::{self as epoch, Guard, Shared};
use crossbeam_utils::Backoff;

use crate::clock::{ClockKind, ClockSource};
use crate::error::{SingleAttemptFailed, TxAbort, TxResult};
use crate::orec::{Orec, OrecState};
use crate::scratch::{self, PostCommit, ReadEntry, ScratchLease, TxnScratch};
use crate::slab;
use crate::snapshot::{CommitCtx, SnapshotPin, SnapshotRegistry};
use crate::stats::{StatsSnapshot, StmStats};
use crate::tcell::{TCell, WriteEntry};

/// Builder for [`Stm`] instances.
///
/// ```
/// use skiphash_stm::{ClockKind, StmBuilder};
///
/// let stm = StmBuilder::new().clock(ClockKind::Counter).build();
/// assert_eq!(stm.clock_name(), "gv1-counter");
/// ```
#[derive(Debug)]
pub struct StmBuilder {
    clock: ClockKind,
    auto_threshold: usize,
}

impl Default for StmBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl StmBuilder {
    /// Start building with the default ([`ClockKind::Sampled`]) clock, whose
    /// quiescence fast path lets uncontended writer commits skip read-set
    /// validation (see the `clock` module docs).  Use
    /// [`StmBuilder::clock`] for the `gv1` counter, the hardware TSC, or the
    /// parallelism-based [`ClockKind::Auto`] selection.
    pub fn new() -> Self {
        Self {
            clock: ClockKind::Sampled,
            auto_threshold: ClockKind::AUTO_HARDWARE_THRESHOLD,
        }
    }

    /// Select the global version clock implementation.
    pub fn clock(mut self, kind: ClockKind) -> Self {
        self.clock = kind;
        self
    }

    /// Override the hardware-thread count at which [`ClockKind::Auto`]
    /// chooses `Hardware` over `Sampled` (default:
    /// [`ClockKind::AUTO_HARDWARE_THRESHOLD`]).  Has no effect on concrete
    /// clock kinds.
    pub fn auto_threshold(mut self, threshold: usize) -> Self {
        self.auto_threshold = threshold;
        self
    }

    /// Construct the [`Stm`].
    ///
    /// [`ClockKind::Auto`] is resolved here, once; the built runtime reports
    /// the concrete choice from [`Stm::clock_kind`].
    pub fn build(self) -> Stm {
        let kind = self.clock.resolve_with(self.auto_threshold);
        Stm {
            clock: kind.build(),
            clock_kind: kind,
            stats: StmStats::new(),
            attempt_ids: AtomicU64::new(1),
            snapshots: SnapshotRegistry::new(),
        }
    }
}

/// A software transactional memory runtime.
///
/// All [`TCell`]s accessed by transactions of one logical data structure
/// should be managed by the same `Stm` instance (they share its clock and
/// statistics).  The runtime itself is stateless apart from the clock, so it
/// is cheap and `Sync`; a data structure typically embeds one.
pub struct Stm {
    clock: Box<dyn ClockSource>,
    clock_kind: ClockKind,
    stats: StmStats,
    attempt_ids: AtomicU64,
    snapshots: SnapshotRegistry,
}

impl fmt::Debug for Stm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stm")
            .field("clock", &self.clock.name())
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

impl Default for Stm {
    fn default() -> Self {
        Self::new()
    }
}

impl Stm {
    /// Create an STM runtime with the default ([`ClockKind::Sampled`]) clock.
    pub fn new() -> Self {
        StmBuilder::new().build()
    }

    /// Create an STM runtime with the given clock.
    pub fn with_clock(kind: ClockKind) -> Self {
        StmBuilder::new().clock(kind).build()
    }

    /// Name of the configured clock source.
    pub fn clock_name(&self) -> &'static str {
        self.clock.name()
    }

    /// The configured clock kind.
    pub fn clock_kind(&self) -> ClockKind {
        self.clock_kind
    }

    /// Statistics accumulated by this runtime.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Reset the statistics counters (e.g. between benchmark trials).
    pub fn reset_stats(&self) {
        self.stats.reset()
    }

    fn begin(&self) -> Txn<'_> {
        let id = self.attempt_ids.fetch_add(1, Ordering::Relaxed);
        Txn {
            stm: self,
            id,
            rv: self.clock.now(),
            guard: Some(epoch::pin()),
            scratch: scratch::lease(),
            dedup_hits: 0,
            slab_hits: 0,
            commit_stamp: 0,
            finished: false,
        }
    }

    /// Run `body` as a transaction, retrying until it commits, and return its
    /// result.
    ///
    /// The body is re-executed from the top after every abort; because it is
    /// an ordinary Rust closure, any `&mut` locals it captures keep their
    /// values across retries.  This is exactly the paper's
    /// `atomic(no_local_undo)` execution mode and is what the slow-path range
    /// query uses to turn aborts into "early commits".
    ///
    /// Contention is managed with bounded exponential backoff between
    /// attempts.
    pub fn run<T, F>(&self, mut body: F) -> T
    where
        F: FnMut(&mut Txn<'_>) -> TxResult<T>,
    {
        let backoff = Backoff::new();
        loop {
            let mut tx = self.begin();
            let outcome = body(&mut tx).and_then(|value| tx.commit().map(|()| value));
            match outcome {
                Ok(value) => {
                    tx.run_post_commit();
                    return value;
                }
                Err(cause) => {
                    tx.rollback();
                    self.stats.record_abort(cause);
                    drop(tx);
                    if backoff.is_completed() {
                        crate::sync::yield_now();
                    } else {
                        backoff.snooze();
                    }
                }
            }
        }
    }

    /// Attempt `body` as a transaction exactly once, without retrying.
    ///
    /// This is the paper's `atomic(try_once)` mode, used by the fast-path
    /// range query: if the single attempt aborts, the caller decides whether
    /// to try again or fall back to the slow path.
    ///
    /// # Errors
    ///
    /// Returns the abort cause if the attempt could not commit.
    pub fn try_once<T, F>(&self, body: F) -> Result<T, SingleAttemptFailed>
    where
        F: FnOnce(&mut Txn<'_>) -> TxResult<T>,
    {
        let mut tx = self.begin();
        let outcome = body(&mut tx).and_then(|value| tx.commit().map(|()| value));
        match outcome {
            Ok(value) => {
                tx.run_post_commit();
                Ok(value)
            }
            Err(cause) => {
                tx.rollback();
                self.stats.record_abort(cause);
                Err(SingleAttemptFailed { cause })
            }
        }
    }

    /// Read a single cell outside of any transaction.
    ///
    /// Equivalent to [`TCell::load_atomic`]; provided on the runtime for
    /// symmetry with `run`/`try_once`.
    pub fn read_atomic<T: Clone + Send + Sync + 'static>(&self, cell: &TCell<T>) -> T {
        cell.load_atomic()
    }

    /// Pin the clock's current version for MVCC time-travel reads.
    ///
    /// While the returned [`SnapshotPin`] is live, any value displaced by a
    /// later commit whose validity window contains the pinned version is
    /// preserved, and [`TCell::read_pinned_with`] resolves every cell of
    /// this runtime at exactly that version — arbitrarily long after the
    /// pin, while writers commit freely.  Dropping the pin releases custody;
    /// retention is bounded by live pins (at most one preserved payload per
    /// pin per cell), never leaked.  See the [`crate::snapshot`] module docs
    /// for the full protocol.
    pub fn pin_snapshot(self: &std::sync::Arc<Self>) -> SnapshotPin {
        SnapshotPin::new(std::sync::Arc::clone(self))
    }

    pub(crate) fn snapshot_registry(&self) -> &SnapshotRegistry {
        &self.snapshots
    }

    /// The clock's current version (used by snapshot pinning and by
    /// durability layers checkpointing at a known version).
    pub fn clock_now(&self) -> u64 {
        self.clock.now()
    }

    /// Advance the version clock so every future commit stamp exceeds
    /// `version`; returns `false` when this clock cannot be advanced.
    ///
    /// This is the recovery hook for durability layers: after replaying a
    /// write-ahead log whose records carry commit stamps from a *previous*
    /// process, the new runtime's clock must move past the highest replayed
    /// stamp, or fresh commits would mint stamps that compare as "already
    /// durable".  Logical clocks ([`ClockKind::Counter`],
    /// [`ClockKind::Sampled`]) support this; the hardware TSC clock does not
    /// (its values are not assignable), so callers that depend on advancing
    /// must check the return value — see `ClockSource::advance_to`.
    pub fn advance_clock_to(&self, version: u64) -> bool {
        self.clock.advance_to(version)
    }
}

/// An in-flight transaction attempt.
///
/// Handed to transaction bodies by [`Stm::run`] and [`Stm::try_once`]; use it
/// with [`TCell::read`] and [`TCell::write`].
///
/// The attempt's growable state (read set, write log, retirement bag,
/// keep-alive list, post-commit queue) lives in a per-thread pooled scratch:
/// retries and successive transactions reuse capacity instead of
/// re-allocating, which is what makes the steady-state commit path
/// allocation-free (see `docs/PERF.md`).
pub struct Txn<'stm> {
    stm: &'stm Stm,
    id: u64,
    rv: u64,
    /// `Some` until the attempt finishes; released before post-commit actions
    /// run so they observe a fully committed, unpinned world.
    guard: Option<Guard>,
    scratch: ScratchLease,
    /// Reads served from the dedup filter instead of growing the read set.
    dedup_hits: u32,
    /// Writes whose payload came from a recycled slab block.
    slab_hits: u32,
    /// The version this attempt committed at (writers: the clock tick's
    /// `wv`; read-only commits: the read version, at which every read is
    /// consistent).  Zero until [`Txn::commit`] succeeds; handed to
    /// post-commit actions registered with [`Txn::on_commit_with_stamp`].
    commit_stamp: u64,
    finished: bool,
}

impl fmt::Debug for Txn<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Txn")
            .field("id", &self.id)
            .field("rv", &self.rv)
            .field("reads", &self.scratch.read_set.len())
            .field("writes", &self.scratch.writes.len())
            .finish()
    }
}

impl<'stm> Txn<'stm> {
    /// The read version (clock sample) this attempt started with.
    pub fn read_version(&self) -> u64 {
        self.rv
    }

    /// True if this attempt has performed at least one write.
    pub fn is_writer(&self) -> bool {
        !self.scratch.writes.is_empty()
    }

    /// Explicitly abort this attempt; the enclosing [`Stm::run`] will retry.
    #[must_use = "the abort must be propagated with `?` (or returned) so the transaction actually aborts"]
    pub fn abort<T>(&self) -> TxResult<T> {
        Err(TxAbort::Explicit)
    }

    /// True if this transaction was started by `stm` (pointer identity).
    ///
    /// Data structures that expose transactional views use this to reject a
    /// transaction from a *different* runtime: version timestamps from two
    /// unrelated clocks are incomparable, so mixing runtimes would silently
    /// break opacity.  Structures that should be composable within one
    /// transaction must share a single [`Stm`] (see `SkipHashBuilder::stm`
    /// in the `skiphash` crate).
    pub fn belongs_to(&self, stm: &Stm) -> bool {
        std::ptr::eq(self.stm, stm)
    }

    #[inline]
    fn guard(&self) -> &Guard {
        self.guard
            .as_ref()
            .expect("transaction attempt still in flight")
    }

    /// Register an action to run after — and only if — this transaction
    /// attempt commits.
    ///
    /// Actions run in registration order, after the attempt's epoch guard is
    /// released; an aborted attempt drops its registered actions without
    /// running them, and the retry registers fresh ones.  This is how
    /// transactional data structures schedule non-transactional side effects
    /// (statistics counters, deferred physical cleanup) from inside a
    /// caller-owned transaction: the effect must not happen per *attempt*,
    /// only per *commit*.
    ///
    /// Closures up to three words are stored inline in the pooled action
    /// queue (no allocation); larger captures are boxed.
    ///
    /// The action may itself start new transactions (the registering
    /// transaction is finished by the time it runs), but must not assume any
    /// particular thread-local state beyond running on the committing thread.
    pub fn on_commit<F: FnOnce() + 'static>(&mut self, action: F) {
        self.scratch.post_commit.push(PostCommit::new(action));
    }

    /// Like [`Txn::on_commit`], but the action receives the attempt's
    /// **commit stamp**: for a writer commit, the write version `wv` the
    /// clock issued at commit (the version stamped on every orec this
    /// transaction released); for a read-only commit, the attempt's read
    /// version (the version at which all of its reads are consistent).
    ///
    /// This is the hook a write-ahead log rides: the stamp gives log records
    /// the clock's total commit order without re-reading the clock (which
    /// would race with later commits and could disagree with the order the
    /// orecs actually published).  The same inline-storage rule as
    /// [`Txn::on_commit`] applies: closures up to three words are stored in
    /// the pooled action queue without boxing.
    ///
    /// Exactly-once semantics are identical to [`Txn::on_commit`]: aborted
    /// attempts drop the action unrun, and the committing attempt runs it
    /// once, after its epoch guard is released.
    pub fn on_commit_with_stamp<F: FnOnce(u64) + 'static>(&mut self, action: F) {
        self.scratch
            .post_commit
            .push(PostCommit::new_stamped(action));
    }

    /// Like [`Txn::on_commit_with_stamp`], but the action runs at the
    /// commit's **serialization point**: after the attempt has passed its
    /// last abort point (stamp minted, validation passed — the commit is
    /// certain), yet *before* any of its writes are published to other
    /// transactions.
    ///
    /// This ordering is what a write-ahead log needs for its durability
    /// barrier: a record enqueued here is registered with the log **before**
    /// any other thread can observe the commit's effects, so a later commit
    /// that read those effects necessarily registers after it, and a
    /// "wait for everything registered so far" barrier covers every commit
    /// the caller could have observed.  A plain post-commit action cannot
    /// give this guarantee — it runs after the writes are globally visible,
    /// leaving a window where a dependent commit's record can overtake this
    /// one.
    ///
    /// Constraints, stricter than [`Txn::on_commit`]: the action runs with
    /// the attempt's orecs still held and its epoch guard still pinned, so
    /// it must **not** start transactions on any runtime (a transaction
    /// touching this commit's cells would spin on the held orecs) and
    /// should only do brief, non-transactional work (enqueue bytes, bump a
    /// counter).  It may block briefly (e.g. log backpressure) — writers
    /// contending on this commit's cells wait exactly as long.
    ///
    /// Exactly-once semantics match [`Txn::on_commit`]: aborted attempts
    /// drop the action unrun; the committing attempt runs it once, with the
    /// same stamp [`Txn::on_commit_with_stamp`] would see (writers: the
    /// ticked `wv`; read-only commits: the read version).  Sequenced
    /// actions run before every post-commit action, in registration order.
    /// The same inline-storage rule applies: closures up to three words are
    /// stored in the pooled action queue without boxing.
    pub fn on_commit_sequenced<F: FnOnce(u64) + 'static>(&mut self, action: F) {
        self.scratch.sequenced.push(PostCommit::new_stamped(action));
    }

    /// Pin `value` so it outlives this transaction attempt, including the
    /// rollback that follows an abort.
    ///
    /// Any heap object allocated *inside* a transaction body whose [`TCell`]s
    /// are written in that same transaction MUST be registered here.  The undo
    /// log refers to written cells by raw pointer, and the body's own
    /// reference to a freshly allocated object is dropped when the closure
    /// returns — *before* the rollback runs.  Without a keep-alive
    /// registration, an aborted attempt would roll back through freed memory.
    ///
    /// Prefer [`Txn::alloc`], which performs the allocation and the
    /// registration in one step and cannot be forgotten.
    pub fn keep_alive<T: Send + Sync + 'static>(&mut self, value: std::sync::Arc<T>) {
        self.scratch.keepalive.push(value);
    }

    /// Allocate `value` on the heap and register the allocation with this
    /// transaction attempt in one step, returning the shared handle.
    ///
    /// This is the structural replacement for the [`Txn::keep_alive`]
    /// convention: an object whose [`TCell`]s will be written inside the
    /// transaction body *must* outlive a potential rollback, and `alloc`
    /// makes forgetting the registration impossible — the only handle the
    /// caller ever sees is already registered.  Prefer this over
    /// `Arc::new` + `keep_alive` for any object allocated inside a
    /// transaction body.
    pub fn alloc<T: Send + Sync + 'static>(&mut self, value: T) -> std::sync::Arc<T> {
        let arc = std::sync::Arc::new(value);
        self.scratch
            .keepalive
            .push(std::sync::Arc::clone(&arc) as _);
        arc
    }

    /// The cloning read is the mapping read with `f = Clone::clone`; one
    /// implementation of the TL2 read protocol serves both.
    #[inline]
    pub(crate) fn read_cell<T: Clone + Send + Sync + 'static>(
        &mut self,
        cell: &TCell<T>,
    ) -> TxResult<T> {
        self.read_cell_with(cell, T::clone)
    }

    /// Like [`Txn::read_cell`], but maps the committed value through `f` by
    /// reference instead of cloning it.  Same validation protocol: the orec
    /// is re-checked *after* `f` runs, and a concurrent change discards the
    /// result and aborts.  `f` must therefore be a pure function of its
    /// argument — it can observe a value whose read subsequently fails
    /// validation.
    #[inline]
    pub(crate) fn read_cell_with<T: Send + Sync + 'static, R>(
        &mut self,
        cell: &TCell<T>,
        f: impl FnOnce(&T) -> R,
    ) -> TxResult<R> {
        let o1 = cell.orec.raw();
        if Orec::raw_is_owned_by(o1, self.id) {
            // Read-after-write: we own the location, so the current value is
            // our own uncommitted write.
            let shared = cell.data.load(Ordering::Acquire, self.guard());
            // SAFETY: the pointer is protected by our pinned guard.
            return Ok(f(unsafe { shared.deref() }));
        }
        match Orec::decode_raw(o1) {
            OrecState::Locked { .. } => return Err(TxAbort::ReadConflict),
            OrecState::Unlocked { version } => {
                if version > self.rv {
                    return Err(TxAbort::ReadConflict);
                }
            }
        }
        let shared = cell.data.load(Ordering::Acquire, self.guard());
        // SAFETY: the pointer is protected by our pinned guard; even if a
        // concurrent writer replaces it, reclamation is deferred past our
        // guard, and the post-read orec check below rejects the result.
        let result = f(unsafe { shared.deref() });
        if cell.orec.raw() != o1 {
            return Err(TxAbort::ReadConflict);
        }
        // The recheck passed, so `result` is kept: tell the model build's
        // race detector this read must be happens-after the payload install.
        cell.shadow.on_read_confirmed();
        // Dedup on insertion: a re-read of a cell this attempt already
        // validated cannot have a different orec word (any post-begin commit
        // carries a version above rv and would have aborted above), so the
        // read set and the commit-time validation walk stay proportional to
        // the number of *distinct* cells read, not the number of reads.
        let orec = &cell.orec as *const Orec;
        if self.scratch.filter.insert(orec as usize) {
            self.scratch.read_set.push(ReadEntry { orec, observed: o1 });
        } else {
            self.dedup_hits += 1;
        }
        Ok(result)
    }

    #[inline]
    pub(crate) fn write_cell<T: Send + Sync + 'static>(
        &mut self,
        cell: &TCell<T>,
        value: T,
    ) -> TxResult<()> {
        let o1 = cell.orec.raw();
        if Orec::raw_is_owned_by(o1, self.id) {
            // Already acquired earlier in this transaction: replace the value
            // we previously installed.  The intermediate value may have been
            // glimpsed by concurrent (doomed) readers, so retire it through
            // the epoch rather than dropping in place.
            let (ptr, recycled) = slab::alloc_value(value);
            self.slab_hits += u32::from(recycled);
            let old = cell
                .data
                .swap(
                    Shared::from(ptr as *const T),
                    Ordering::AcqRel,
                    self.guard(),
                )
                .as_raw();
            cell.shadow.on_write();
            // SAFETY: `old` is no longer reachable once swapped out; the bag
            // is flushed before our guard unpins.
            unsafe {
                self.scratch
                    .retired
                    .defer_with(old as *mut (), slab::drop_glue::<T>())
            };
            return Ok(());
        }
        let old_version = match Orec::decode_raw(o1) {
            OrecState::Locked { .. } => return Err(TxAbort::WriteConflict),
            OrecState::Unlocked { version } => version,
        };
        // TL2 acquire rule: a location written since this attempt's read
        // version cannot be acquired — commit-time validation skips orecs we
        // own, so admitting it here would let a concurrent update be lost.
        // `model_mutation` builds revert this guard so the model checker can
        // prove it re-finds the lost update (see docs/VERIFICATION.md).
        if cfg!(not(model_mutation)) && old_version > self.rv {
            return Err(TxAbort::WriteConflict);
        }
        if !cell.orec.try_acquire(old_version, self.id) {
            return Err(TxAbort::WriteConflict);
        }
        let (ptr, recycled) = slab::alloc_value(value);
        self.slab_hits += u32::from(recycled);
        let old = cell
            .data
            .swap(
                Shared::from(ptr as *const T),
                Ordering::AcqRel,
                self.guard(),
            )
            .as_raw();
        cell.shadow.on_write();
        self.scratch
            .writes
            .push(WriteEntry::new(cell as *const TCell<T>, old_version, old));
        Ok(())
    }

    fn commit(&mut self) -> TxResult<()> {
        if self.scratch.writes.is_empty() {
            // Read-only transactions: every read was validated against the
            // read version at the time it executed, so the read set already
            // forms a consistent snapshot and no further work is required.
            self.commit_stamp = self.rv;
            self.run_sequenced();
            self.stm.stats.record_commit(true);
            self.flush_hot_path_stats();
            self.finished = true;
            return Ok(());
        }
        let stamp = self.stm.clock.tick(self.rv);
        self.commit_stamp = stamp.wv;
        if stamp.quiescent {
            // The clock proved no transaction committed between our read
            // sample and our tick, so nothing we read can have changed.
            self.stm.stats.record_validation_skipped();
        } else {
            for entry in &self.scratch.read_set {
                // SAFETY: read-set orecs belong to cells kept alive by the
                // data structure for at least the duration of the enclosing
                // transaction closure.
                let orec = unsafe { &*entry.orec };
                let current = orec.raw();
                if current != entry.observed && !Orec::raw_is_owned_by(current, self.id) {
                    return Err(TxAbort::ValidationFailed);
                }
            }
        }
        // Serialization point: validation passed, so this attempt can no
        // longer abort — but its writes are not yet published (the orecs are
        // still held).  Commit-sequenced actions run exactly here.
        self.run_sequenced();
        let TxnScratch {
            writes,
            retired,
            pins,
            ..
        } = &mut *self.scratch;
        // SC: snapshot custody — collect the pinned versions *after* the
        // tick (a pin missed here necessarily sampled the clock after our
        // stamp, so it sits outside every window this commit displaces — see
        // the `snapshot` module docs); the fence pairs with the pinner's
        // claim-side fence.  The `live` gate keeps the snapshot-free commit
        // path at one load.
        pins.clear();
        let ctx = if self.stm.snapshots.live() > 0 {
            fence(Ordering::SeqCst);
            let pending = self.stm.snapshots.collect_into(pins);
            CommitCtx {
                pins,
                pending,
                tag: self.stm as *const Stm as usize,
            }
        } else {
            CommitCtx::NONE
        };
        for write in writes.drain(..) {
            // SAFETY: we are the owning transaction and call commit exactly
            // once per entry, with our guard pinned.
            unsafe { write.commit(retired, stamp.wv, &ctx) };
        }
        // One batched hand-off to the epoch for the whole commit.
        let guard = self
            .guard
            .as_ref()
            .expect("committing transaction holds its guard");
        guard.flush_batch(&mut self.scratch.retired);
        self.stm.stats.record_commit(false);
        self.flush_hot_path_stats();
        self.finished = true;
        Ok(())
    }

    /// Run the attempt's commit-sequenced actions at the serialization
    /// point.  Called from [`Txn::commit`] after the last abort point, with
    /// the commit stamp already assigned.
    fn run_sequenced(&mut self) {
        let stamp = self.commit_stamp;
        for action in self.scratch.sequenced.drain(..) {
            action.invoke(stamp);
        }
    }

    /// Release the epoch pin and run the attempt's post-commit actions.
    /// Called only after [`Txn::commit`] succeeded.
    fn run_post_commit(&mut self) {
        debug_assert!(self.finished, "post-commit before commit");
        // Post-commit actions must observe a finished transaction: orecs
        // released (commit did that) and the epoch pin gone — an action may
        // run arbitrary code, including new transactions on this runtime.
        self.guard = None;
        let stamp = self.commit_stamp;
        for action in self.scratch.post_commit.drain(..) {
            action.invoke(stamp);
        }
    }

    fn rollback(&mut self) {
        let scratch = &mut *self.scratch;
        let guard = self
            .guard
            .as_ref()
            .expect("rollback of a finished transaction");
        for write in scratch.writes.drain(..).rev() {
            // SAFETY: we are the owning transaction and call abort exactly
            // once per entry, with our guard pinned.
            unsafe { write.abort(guard, &mut scratch.retired) };
        }
        guard.flush_batch(&mut scratch.retired);
        // The remaining buffers — read set, dedup filter, unrun post-commit
        // actions (commit-only side effects die with the attempt) — are
        // cleared in one place: the scratch lease's reset when this attempt
        // is dropped.
        self.flush_hot_path_stats();
        self.finished = true;
    }

    /// Fold this attempt's locally accumulated counters into the runtime
    /// statistics (one relaxed add per non-zero counter per attempt, never
    /// one per operation).
    fn flush_hot_path_stats(&mut self) {
        self.stm
            .stats
            .record_hot_path(self.dedup_hits, self.slab_hits);
        self.dedup_hits = 0;
        self.slab_hits = 0;
    }
}

/// Run `body` as a transaction against `stm`, retrying until it commits.
///
/// Free-function spelling of [`Stm::run`], for call sites that read better
/// as `atomically(&stm, |tx| ...)` — in particular composed multi-structure
/// transactions where no single structure owns the operation:
///
/// ```
/// use skiphash_stm::{atomically, Stm, TCell};
///
/// let stm = Stm::new();
/// let a = TCell::new(10u64);
/// let b = TCell::new(0u64);
/// atomically(&stm, |tx| {
///     let v = a.read(tx)?;
///     a.write(tx, 0)?;
///     b.write(tx, v)
/// });
/// assert_eq!(b.load_atomic(), 10);
/// ```
pub fn atomically<T, F>(stm: &Stm, body: F) -> T
where
    F: FnMut(&mut Txn<'_>) -> TxResult<T>,
{
    stm.run(body)
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        // Defensive: if the transaction body panicked (or was otherwise
        // abandoned) while holding orecs, release them so other threads are
        // not blocked forever.
        if !self.finished && !self.scratch.writes.is_empty() {
            self.rollback();
        }
        // Normal paths flush in commit/rollback; this catches bodies that
        // errored after a same-cell overwrite without triggering either.
        if let Some(guard) = &self.guard {
            guard.flush_batch(&mut self.scratch.retired);
        }
        // The scratch lease returns the (cleared) buffers to the thread pool
        // when it drops, after the guard.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn builder_default_uses_sampled_clock() {
        let stm = Stm::new();
        assert_eq!(stm.clock_name(), "gv5-sampled");
        assert_eq!(stm.clock_kind(), ClockKind::Sampled);
    }

    #[test]
    fn auto_clock_is_resolved_at_construction() {
        // Whatever the machine, the built runtime must report a concrete
        // kind, and the override threshold must steer the choice.
        let auto = StmBuilder::new().clock(ClockKind::Auto).build();
        assert_ne!(auto.clock_kind(), ClockKind::Auto);
        let big_box = StmBuilder::new()
            .clock(ClockKind::Auto)
            .auto_threshold(1)
            .build();
        assert_eq!(big_box.clock_kind(), ClockKind::Hardware);
        let small_box = StmBuilder::new()
            .clock(ClockKind::Auto)
            .auto_threshold(usize::MAX)
            .build();
        assert_eq!(small_box.clock_kind(), ClockKind::Sampled);
        // The resolved runtime behaves like its concrete kind end to end.
        let cell = TCell::new(0u64);
        small_box.run(|tx| {
            let v = cell.read(tx)?;
            cell.write(tx, v + 1)
        });
        assert_eq!(small_box.stats().validation_skipped_commits, 1);
    }

    #[test]
    fn read_only_transactions_do_not_tick_the_clock() {
        let stm = Stm::with_clock(ClockKind::Counter);
        let cell = TCell::new(5u64);
        for _ in 0..10 {
            let v = stm.run(|tx| cell.read(tx));
            assert_eq!(v, 5);
        }
        let snap = stm.stats();
        assert_eq!(snap.commits, 10);
        assert_eq!(snap.read_only_commits, 10);
    }

    #[test]
    fn aborted_writes_are_rolled_back() {
        let stm = Stm::new();
        let cell = TCell::new(1u64);
        let result = stm.try_once(|tx| -> TxResult<()> {
            cell.write(tx, 99)?;
            // Force an abort after the write took effect inside the txn.
            Err(TxAbort::Explicit)
        });
        assert!(result.is_err());
        assert_eq!(cell.load_atomic(), 1, "undo must restore the old value");
        assert_eq!(stm.stats().aborts_explicit, 1);
    }

    #[test]
    fn try_once_success_commits() {
        let stm = Stm::new();
        let cell = TCell::new(1u64);
        let out = stm.try_once(|tx| {
            cell.write(tx, 2)?;
            Ok(77)
        });
        assert_eq!(out.unwrap(), 77);
        assert_eq!(cell.load_atomic(), 2);
    }

    #[test]
    fn explicit_abort_in_run_retries_until_ok() {
        let stm = Stm::new();
        let cell = TCell::new(0u64);
        let mut attempts = 0;
        stm.run(|tx| {
            attempts += 1;
            if attempts < 3 {
                return tx.abort();
            }
            cell.write(tx, attempts)
        });
        assert_eq!(attempts, 3);
        assert_eq!(cell.load_atomic(), 3);
    }

    #[test]
    fn locals_survive_aborts_no_local_undo() {
        // Models the slow-path range query: progress recorded in a captured
        // local must not be lost when an attempt aborts.
        let stm = Stm::new();
        let cell = TCell::new(10u64);
        let mut progress: Vec<u64> = Vec::new();
        let mut first = true;
        stm.run(|tx| {
            let v = cell.read(tx)?;
            if first {
                first = false;
                progress.push(v);
                return Err(TxAbort::Explicit);
            }
            Ok(())
        });
        assert_eq!(progress, vec![10], "local progress survived the abort");
    }

    #[test]
    fn conflicting_writers_serialize() {
        let stm = Arc::new(Stm::new());
        let a = Arc::new(TCell::new(0u64));
        let b = Arc::new(TCell::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let stm = Arc::clone(&stm);
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            handles.push(thread::spawn(move || {
                for _ in 0..250 {
                    stm.run(|tx| {
                        let av = a.read(tx)?;
                        b.write(tx, av + 1)?;
                        a.write(tx, av + 1)
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.load_atomic(), 1000);
        assert_eq!(b.load_atomic(), 1000);
    }

    #[test]
    fn writer_stats_count_commits() {
        let stm = Stm::new();
        let cell = TCell::new(0u64);
        stm.run(|tx| cell.write(tx, 1));
        let snap = stm.stats();
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.read_only_commits, 0);
        stm.reset_stats();
        assert_eq!(stm.stats().commits, 0);
    }

    #[test]
    fn uncontended_writers_skip_validation() {
        let stm = Stm::new(); // sampled clock
        let cell = TCell::new(0u64);
        for i in 0..50u64 {
            stm.run(|tx| {
                let v = cell.read(tx)?;
                cell.write(tx, v + i)
            });
        }
        let snap = stm.stats();
        assert_eq!(
            snap.validation_skipped_commits, 50,
            "every uncontended sampled-clock commit proves quiescence"
        );
    }

    #[test]
    fn hardware_clock_never_skips_validation() {
        let stm = Stm::with_clock(ClockKind::Hardware);
        let cell = TCell::new(0u64);
        for _ in 0..10 {
            stm.run(|tx| cell.write(tx, 1));
        }
        assert_eq!(stm.stats().validation_skipped_commits, 0);
    }

    #[test]
    fn repeated_reads_are_deduped() {
        let stm = Stm::new();
        let cell = TCell::new(7u64);
        let total = stm.run(|tx| {
            let mut sum = 0;
            for _ in 0..100 {
                sum += cell.read(tx)?;
            }
            Ok(sum)
        });
        assert_eq!(total, 700);
        let snap = stm.stats();
        assert_eq!(
            snap.read_dedup_hits, 99,
            "99 of the 100 reads hit the dedup filter"
        );
    }

    #[test]
    fn slab_recycle_hits_accumulate_under_write_churn() {
        let stm = Stm::new();
        let cell = TCell::new(0u64);
        // Enough commits to cycle retired payloads through the epoch and
        // back into the slab magazines.
        for i in 0..2_000u64 {
            stm.run(|tx| cell.write(tx, i));
        }
        assert!(
            stm.stats().slab_recycle_hits > 0,
            "steady-state write churn must reuse slab blocks"
        );
    }

    #[test]
    fn debug_impls_are_nonempty() {
        let stm = Stm::new();
        assert!(format!("{stm:?}").contains("Stm"));
        let cell = TCell::new(0u64);
        stm.run(|tx| {
            let _ = cell.read(tx)?;
            assert!(format!("{tx:?}").contains("Txn"));
            Ok(())
        });
    }

    #[test]
    fn alloc_registers_objects_across_abort() {
        struct Pair {
            a: TCell<u64>,
            b: TCell<u64>,
        }
        let stm = Stm::new();
        let mut first = true;
        let survivor = stm.run(|tx| {
            // The Arc returned by `alloc` is dropped at the end of the body
            // on the aborting attempt; the registration must keep the cells
            // alive through the rollback that follows.
            let pair = tx.alloc(Pair {
                a: TCell::new(0),
                b: TCell::new(0),
            });
            pair.a.write(tx, 1)?;
            pair.b.write(tx, 2)?;
            if first {
                first = false;
                return Err(TxAbort::Explicit);
            }
            Ok(pair)
        });
        assert_eq!(survivor.a.load_atomic(), 1);
        assert_eq!(survivor.b.load_atomic(), 2);
    }

    #[test]
    fn on_commit_runs_exactly_once_per_commit() {
        use std::cell::Cell;
        use std::rc::Rc;
        let stm = Stm::new();
        let cell = TCell::new(0u64);
        let fired = Rc::new(Cell::new(0u32));
        let mut attempts = 0;
        stm.run(|tx| {
            attempts += 1;
            let fired = Rc::clone(&fired);
            tx.on_commit(move || fired.set(fired.get() + 1));
            if attempts < 3 {
                // Aborted attempts must drop their registered actions.
                return Err(TxAbort::Explicit);
            }
            cell.write(tx, attempts)
        });
        assert_eq!(attempts, 3);
        assert_eq!(fired.get(), 1, "only the committing attempt may fire");
    }

    #[test]
    fn on_commit_does_not_run_for_failed_try_once() {
        use std::cell::Cell;
        use std::rc::Rc;
        let stm = Stm::new();
        let fired = Rc::new(Cell::new(false));
        let result = stm.try_once(|tx| -> TxResult<()> {
            let fired = Rc::clone(&fired);
            tx.on_commit(move || fired.set(true));
            Err(TxAbort::Explicit)
        });
        assert!(result.is_err());
        assert!(!fired.get());
    }

    #[test]
    fn on_commit_runs_for_read_only_transactions() {
        use std::cell::Cell;
        use std::rc::Rc;
        let stm = Stm::new();
        let cell = TCell::new(7u64);
        let fired = Rc::new(Cell::new(false));
        let v = stm.run(|tx| {
            let fired = Rc::clone(&fired);
            tx.on_commit(move || fired.set(true));
            cell.read(tx)
        });
        assert_eq!(v, 7);
        assert!(fired.get());
    }

    #[test]
    fn on_commit_with_stamp_fires_once_with_the_commit_stamp() {
        use std::cell::Cell;
        use std::rc::Rc;
        let stm = Stm::new();
        let cell = TCell::new(0u64);
        let stamps = Rc::new(Cell::new((0u32, 0u64)));
        let mut attempts = 0;
        stm.run(|tx| {
            attempts += 1;
            let stamps = Rc::clone(&stamps);
            tx.on_commit_with_stamp(move |wv| {
                let (count, _) = stamps.get();
                stamps.set((count + 1, wv));
            });
            if attempts < 3 {
                // Aborted attempts must drop their stamped actions unrun.
                return Err(TxAbort::Explicit);
            }
            cell.write(tx, attempts)
        });
        let (count, stamp) = stamps.get();
        assert_eq!(count, 1, "only the committing attempt may fire");
        // A fresh counter clock starts at 0; the first writer commit ticks
        // it to 1 and that write version is the stamp handed to the action.
        assert_eq!(stamp, 1);
        assert_eq!(stm.clock_now(), stamp);
    }

    #[test]
    fn on_commit_with_stamp_stamps_advance_per_writer_commit() {
        use std::cell::Cell;
        use std::rc::Rc;
        let stm = Stm::new();
        let cell = TCell::new(0u64);
        let seen = Rc::new(Cell::new(0u64));
        for expected in 1..=3u64 {
            let seen = Rc::clone(&seen);
            stm.run(|tx| {
                let seen = Rc::clone(&seen);
                tx.on_commit_with_stamp(move |wv| seen.set(wv));
                let v = cell.read(tx)?;
                cell.write(tx, v + 1)
            });
            assert_eq!(seen.get(), expected);
        }
    }

    #[test]
    fn on_commit_with_stamp_read_only_sees_its_read_version() {
        use std::cell::Cell;
        use std::rc::Rc;
        let stm = Stm::new();
        let cell = TCell::new(5u64);
        // One writer commit so the clock is at a known non-zero value.
        stm.run(|tx| cell.write(tx, 6));
        let rv_now = stm.clock_now();
        let seen = Rc::new(Cell::new(u64::MAX));
        let seen_in = Rc::clone(&seen);
        stm.run(|tx| {
            let seen = Rc::clone(&seen_in);
            tx.on_commit_with_stamp(move |wv| seen.set(wv));
            cell.read(tx)
        });
        // A read-only commit does not tick the clock; its stamp is the
        // snapshot version the reads validated against.
        assert_eq!(seen.get(), rv_now);
        assert_eq!(stm.clock_now(), rv_now);
    }

    #[test]
    fn on_commit_sequenced_fires_once_with_the_commit_stamp() {
        use std::cell::Cell;
        use std::rc::Rc;
        let stm = Stm::new();
        let cell = TCell::new(0u64);
        let seen = Rc::new(Cell::new((0u32, 0u64)));
        let mut attempts = 0;
        stm.run(|tx| {
            attempts += 1;
            let seen = Rc::clone(&seen);
            tx.on_commit_sequenced(move |wv| {
                let (count, _) = seen.get();
                seen.set((count + 1, wv));
            });
            if attempts < 3 {
                // Aborted attempts must drop their sequenced actions unrun.
                return Err(TxAbort::Explicit);
            }
            cell.write(tx, attempts)
        });
        let (count, stamp) = seen.get();
        assert_eq!(count, 1, "only the committing attempt may fire");
        assert_eq!(stamp, 1, "the sequenced action sees the ticked wv");
        assert_eq!(stm.clock_now(), stamp);
    }

    #[test]
    fn on_commit_sequenced_runs_before_post_commit_actions() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let stm = Stm::new();
        let cell = TCell::new(0u64);
        let order = Rc::new(RefCell::new(Vec::new()));
        stm.run(|tx| {
            let a = Rc::clone(&order);
            // Registered first, but post-commit: must still run last.
            tx.on_commit_with_stamp(move |wv| a.borrow_mut().push(("post", wv)));
            let b = Rc::clone(&order);
            tx.on_commit_sequenced(move |wv| b.borrow_mut().push(("sequenced", wv)));
            cell.write(tx, 1)
        });
        let order = order.borrow();
        assert_eq!(&*order, &[("sequenced", 1), ("post", 1)]);
    }

    #[test]
    fn on_commit_sequenced_read_only_sees_its_read_version() {
        use std::cell::Cell;
        use std::rc::Rc;
        let stm = Stm::new();
        let cell = TCell::new(5u64);
        stm.run(|tx| cell.write(tx, 6));
        let rv_now = stm.clock_now();
        let seen = Rc::new(Cell::new(u64::MAX));
        let seen_in = Rc::clone(&seen);
        stm.run(|tx| {
            let seen = Rc::clone(&seen_in);
            tx.on_commit_sequenced(move |wv| seen.set(wv));
            cell.read(tx)
        });
        assert_eq!(seen.get(), rv_now);
        assert_eq!(stm.clock_now(), rv_now);
    }

    #[test]
    fn on_commit_sequenced_does_not_run_for_failed_try_once() {
        use std::cell::Cell;
        use std::rc::Rc;
        let stm = Stm::new();
        let fired = Rc::new(Cell::new(false));
        let result = stm.try_once(|tx| -> TxResult<()> {
            let fired = Rc::clone(&fired);
            tx.on_commit_sequenced(move |_| fired.set(true));
            Err(TxAbort::Explicit)
        });
        assert!(result.is_err());
        assert!(!fired.get());
    }

    #[test]
    fn on_commit_sequenced_registration_precedes_visibility() {
        // The property the WAL's durability barrier rides: by the time any
        // other thread can observe a commit's writes, its sequenced action
        // has already run.  A writer registers each commit's payload in a
        // shared registry from the sequenced hook; a reader that observes
        // value `k` in the cell must always find `k` already registered —
        // if the action ran post-publication instead, this would race.
        use std::sync::{Arc, Mutex};
        let stm = Arc::new(Stm::new());
        let cell = Arc::new(TCell::new(0u64));
        let registry: Arc<Mutex<Vec<u64>>> = Arc::default();
        let rounds: u64 = if cfg!(miri) { 20 } else { 2000 };
        let writer = {
            let stm = Arc::clone(&stm);
            let cell = Arc::clone(&cell);
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                for k in 1..=rounds {
                    stm.run(|tx| {
                        let registry = Arc::clone(&registry);
                        tx.on_commit_sequenced(move |_| registry.lock().unwrap().push(k));
                        cell.write(tx, k)
                    });
                }
            })
        };
        let mut last = 0u64;
        while last < rounds {
            let v = cell.load_atomic();
            if v != last {
                assert!(
                    registry.lock().unwrap().contains(&v),
                    "observed commit {v} before its sequenced action ran"
                );
                last = v;
            }
        }
        writer.join().unwrap();
    }

    #[test]
    fn advance_clock_to_reseeds_future_stamps() {
        use std::cell::Cell;
        use std::rc::Rc;
        let stm = Stm::new();
        let cell = TCell::new(0u64);
        assert!(stm.advance_clock_to(1000));
        // Advancing backwards is a no-op, never a rollback.
        assert!(stm.advance_clock_to(3));
        assert!(stm.clock_now() >= 1000);
        let seen = Rc::new(Cell::new(0u64));
        let seen_in = Rc::clone(&seen);
        stm.run(|tx| {
            let seen = Rc::clone(&seen_in);
            tx.on_commit_with_stamp(move |wv| seen.set(wv));
            cell.write(tx, 1)
        });
        assert!(
            seen.get() > 1000,
            "stamps after recovery must exceed the replayed maximum, got {}",
            seen.get()
        );
    }

    #[test]
    fn on_commit_may_start_a_new_transaction() {
        // The action runs after the registering transaction is fully over
        // (guard released, orecs free), so starting a fresh transaction on
        // the same runtime from inside it must work — this is how deferred
        // physical cleanup runs after a caller-owned transaction commits.
        let stm = Arc::new(Stm::new());
        let cell = Arc::new(TCell::new(0u64));
        let stm_for_hook = Arc::clone(&stm);
        let cell_for_hook = Arc::clone(&cell);
        stm.run(|tx| {
            cell.write(tx, 1)?;
            let stm = Arc::clone(&stm_for_hook);
            let cell = Arc::clone(&cell_for_hook);
            tx.on_commit(move || {
                stm.run(|tx| {
                    let v = cell.read(tx)?;
                    cell.write(tx, v + 98)
                });
            });
            Ok(())
        });
        assert_eq!(cell.load_atomic(), 99);
    }

    #[test]
    fn belongs_to_distinguishes_runtimes() {
        let stm_a = Stm::new();
        let stm_b = Stm::new();
        stm_a.run(|tx| {
            assert!(tx.belongs_to(&stm_a));
            assert!(!tx.belongs_to(&stm_b));
            Ok(())
        });
    }

    #[test]
    fn atomically_is_run() {
        let stm = Stm::new();
        let cell = TCell::new(1u64);
        let doubled = atomically(&stm, |tx| {
            let v = cell.read(tx)?;
            cell.write(tx, v * 2)?;
            Ok(v * 2)
        });
        assert_eq!(doubled, 2);
        assert_eq!(cell.load_atomic(), 2);
    }

    #[test]
    fn read_version_is_monotonic_across_transactions() {
        let stm = Stm::with_clock(ClockKind::Counter);
        let cell = TCell::new(0u64);
        let mut last = 0;
        for i in 0..5u64 {
            let rv = stm.run(|tx| {
                cell.write(tx, i)?;
                Ok(tx.read_version())
            });
            assert!(rv >= last);
            last = rv;
        }
    }
}
