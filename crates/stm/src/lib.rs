//! An ownership-record (orec) based software transactional memory.
//!
//! This crate implements the STM substrate that the skip hash (the paper's
//! primary contribution) is built on.  It follows the design principles the
//! paper attributes to modern STM systems such as exoTM, TinySTM, and TL2:
//!
//! * **Orecs co-located with data** — every [`TCell`] carries its own
//!   ownership record, rather than hashing addresses into a shared orec
//!   table.
//! * **Global version clock** — commit timestamps come from a pluggable
//!   [`clock::ClockSource`]; a shared counter (`gv1`), a sampled counter
//!   (`gv5`-style, the default: its quiescence proof lets uncontended writer
//!   commits skip read-set validation), and a hardware timestamp
//!   (`rdtscp`-style) source are provided.
//! * **Allocation-free steady state** — transaction scratch (read set, write
//!   log, retirement bag, post-commit queue) is pooled per thread, the write
//!   log is a flat array of monomorphic records rather than boxed trait
//!   objects, and cell payloads are carved from a recycling size-classed
//!   slab; after warmup, a read-modify-write transaction touches the global
//!   allocator zero times (see `docs/PERF.md`).
//! * **Eager acquisition with undo logging** — writers acquire the orec on
//!   first write and publish the new value immediately; an abort restores the
//!   previous value.
//! * **Cheap read-only transactions** — transactions that perform no writes
//!   commit without any shared-memory stores.
//! * **`try_once` and `no_local_undo` execution modes** — the fast-path /
//!   slow-path range query machinery of the skip hash relies on a transaction
//!   mode that does not retry on conflict ([`Stm::try_once`]) and on local
//!   variables surviving an abort (which falls out naturally from running the
//!   transaction body as a Rust closure over `&mut` locals).
//!
//! # Differences from an in-place C++ STM
//!
//! The paper's STM (exoTM) performs in-place writes on raw words and relies
//! on undo logs to repair them after an abort.  Optimistic readers may
//! observe a torn, uncommitted value and discard it after validation.  In
//! Rust that pattern is undefined behaviour for arbitrary `T`, so [`TCell`]
//! stores its value behind an epoch-managed pointer: a transactional write
//! installs a freshly allocated value and logs the previous pointer as the
//! undo entry.  The orec protocol, conflict windows, clock interactions, and
//! abort behaviour — the properties the paper's evaluation depends on — are
//! unchanged; only the granularity of the copy differs.
//!
//! # Writing transactions: the `TxResult` contract
//!
//! [`Stm::run`] (or the free-function spelling [`atomically`]) hands the
//! body a [`&mut Txn`](Txn); every transactional operation — [`TCell::read`],
//! [`TCell::write`], and anything built on them — returns a
//! [`TxResult<T>`](TxResult).  The contract is:
//!
//! 1. **Propagate, never swallow.**  An `Err(TxAbort)` means the attempt
//!    observed an inconsistent snapshot and *must* die; forward it with `?`.
//!    Catching it and continuing would let the body act on torn data.
//! 2. **Bodies re-execute.**  `Stm::run` retries the body after every abort,
//!    so the body must be safe to run any number of times.  Side effects that
//!    must happen exactly once per *committed* transaction go through
//!    [`Txn::on_commit`], which drops its actions when the attempt aborts.
//! 3. **Locals survive aborts.**  The body is an ordinary closure, so `&mut`
//!    captures keep their values across retries (the paper's `no_local_undo`
//!    mode); [`Stm::try_once`] never retries and surfaces the abort cause.
//! 4. **One runtime per transaction.**  Every `TCell` touched by one
//!    transaction must be managed by the `Stm` that started it — timestamps
//!    from different clocks are incomparable.  Structures that want to be
//!    composable inside a single transaction must share an `Stm`
//!    ([`Txn::belongs_to`] lets a structure enforce this).
//!
//! # Example
//!
//! ```
//! use skiphash_stm::{Stm, TCell};
//!
//! let stm = Stm::new();
//! let balance_a = TCell::new(100u64);
//! let balance_b = TCell::new(0u64);
//!
//! // Atomically move 40 units from A to B.
//! stm.run(|tx| {
//!     let a = balance_a.read(tx)?;
//!     let b = balance_b.read(tx)?;
//!     balance_a.write(tx, a - 40)?;
//!     balance_b.write(tx, b + 40)?;
//!     Ok(())
//! });
//!
//! assert_eq!(stm.read_atomic(&balance_a), 60);
//! assert_eq!(stm.read_atomic(&balance_b), 40);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod arena;
pub mod clock;
pub mod error;
pub mod orec;
mod scratch;
mod slab;
pub mod snapshot;
pub mod stats;
pub mod sync;
pub mod tcell;
pub mod txn;

pub use clock::{ClockKind, ClockSource, CommitStamp};
pub use error::{TxAbort, TxResult};
pub use snapshot::SnapshotPin;
pub use stats::{StatsSnapshot, StmStats};
pub use tcell::TCell;
pub use txn::{atomically, Stm, StmBuilder, Txn};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn counter_increment_across_threads() {
        let stm = Arc::new(Stm::new());
        let counter = Arc::new(TCell::new(0u64));
        let threads = 4;
        let per_thread = 500;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let stm = Arc::clone(&stm);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for _ in 0..per_thread {
                    stm.run(|tx| {
                        let v = counter.read(tx)?;
                        counter.write(tx, v + 1)
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stm.read_atomic(&counter), threads * per_thread);
    }

    #[test]
    fn multi_cell_invariant_is_preserved() {
        // Two cells must always sum to 1000 from the point of view of any
        // committed transaction.
        let stm = Arc::new(Stm::new());
        let a = Arc::new(TCell::new(500i64));
        let b = Arc::new(TCell::new(500i64));
        let mut handles = Vec::new();
        for t in 0..4 {
            let stm = Arc::clone(&stm);
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            handles.push(thread::spawn(move || {
                for i in 0..400 {
                    if (t + i) % 2 == 0 {
                        stm.run(|tx| {
                            let av = a.read(tx)?;
                            let bv = b.read(tx)?;
                            a.write(tx, av - 1)?;
                            b.write(tx, bv + 1)
                        });
                    } else {
                        let sum = stm.run(|tx| Ok(a.read(tx)? + b.read(tx)?));
                        assert_eq!(sum, 1000);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let sum = stm.run(|tx| Ok(a.read(tx)? + b.read(tx)?));
        assert_eq!(sum, 1000);
    }
}
