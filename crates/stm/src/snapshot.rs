//! MVCC snapshot pins: version custody for time-travel reads.
//!
//! A [`SnapshotPin`] pins one clock version `p` on an [`Stm`]
//! runtime.  While the pin is live, every value a transaction *displaces*
//! whose validity window `[old_version, wv)` contains a pinned version is
//! **preserved** in a process-global history side table instead of being
//! retired through the epoch, and [`TCell::read_pinned_with`](crate::TCell::read_pinned_with) resolves any
//! cell at exactly version `p`: the current payload when the cell's orec
//! version is `<= p`, otherwise the newest preserved payload whose start
//! version is `<= p`.  Dropping a pin trims the history entries no remaining
//! pin can reach, so retention is **bounded by live pins, not leaked**.
//!
//! # Why the preservation rule is a window test, not a min-pin horizon
//!
//! Preserving "everything newer than the oldest pin" (the bundled-reference
//! baseline's horizon rule) lets one long-lived snapshot accumulate an
//! unbounded chain per cell under churn.  The window rule preserves a
//! displaced payload only when some pin actually sits inside its validity
//! window — after a pin `p`, the *first* commit displacing a payload with
//! `old_version <= p` preserves it, and every later commit on that cell has
//! `old_version > p` (old versions are prior commit stamps), so each live
//! pin costs **at most one** history entry per cell, no matter how hot the
//! cell is.
//!
//! # The pin / collect protocol
//!
//! Registration uses a fixed slot array of versions.  Pinning is two-phase:
//! the slot is first claimed with a `FREE -> PENDING` CAS and the live count
//! is raised, *then* the clock is sampled and the version published.  A
//! committer collects pins **after** its clock tick (with a `SeqCst` fence in
//! between); a slot still `PENDING` is treated as covering every window.
//! This closes the store-buffer race: if a committer misses a pin entirely,
//! the pinner's clock sample is ordered after the committer's tick, so the
//! pinned version is `>= wv` and outside every window the commit displaces.
//! (For the counter clocks this follows from the `SeqCst` ordering of the
//! shared counter; for [`ClockKind::Hardware`](crate::ClockKind) it
//! additionally relies on the invariant-TSC monotonicity assumption the STM
//! already makes for TL2 itself.)
//!
//! # Custody and reclamation
//!
//! History entries are freed on three paths:
//!
//! * **Drop-trim** — dropping a pin re-collects the surviving pins and frees
//!   every entry whose resolution window no remaining pin intersects.  Frees
//!   are routed through the epoch (`defer_with`): an epoch-pinned reader on
//!   the *current-value* path may still hold a payload that a concurrent
//!   commit just moved into history.
//! * **Cell teardown** — [`TCell`](crate::TCell)'s destructor purges its own chain
//!   immediately (the cell is provably unreachable), which also protects the
//!   table against address reuse.
//! * **Full drain** — when the last pin of a runtime drops, every chain
//!   tagged with that runtime is freed wholesale.
//!
//! A commit that collected a pin may push its entry *after* a concurrent
//! drop-trim ran; such an entry is retained transiently and reclaimed by the
//! next trim or by cell teardown — bounded by the number of in-flight
//! commits at drop time.
//!
//! Chains are keyed by cell address, so custody requires cells to be
//! **address-stable** between a preserving commit and their teardown.  This
//! is automatic for every real cell (they live inside heap-allocated nodes,
//! and a cell shared with other threads cannot be moved at all); only
//! single-threaded code that moves an exclusively-owned cell while a pin
//! holds its history could violate it.

use crate::sync::{fence, AtomicU64, AtomicUsize, Ordering};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use crossbeam_epoch as epoch;
use crossbeam_utils::Backoff;

use crate::txn::Stm;

/// Slot value: no pin registered here.
const FREE: u64 = u64::MAX;
/// Slot value: a pin is being registered; its version is not yet known, so
/// collectors must treat it as covering every window.
const PENDING: u64 = u64::MAX - 1;

/// Number of pin slots per runtime; pinning spins when all are taken.
const SLOTS: usize = 128;

/// The per-runtime registry of pinned snapshot versions.
pub(crate) struct SnapshotRegistry {
    slots: Box<[AtomicU64]>,
    /// Fast gate for the commit path: number of live pins (including ones
    /// still `PENDING`).  Writers skip pin collection entirely when zero.
    live: AtomicUsize,
    /// One past the highest slot index ever used, so collection scans only
    /// the prefix that can hold pins.
    watermark: AtomicUsize,
}

impl SnapshotRegistry {
    pub(crate) fn new() -> Self {
        Self {
            slots: (0..SLOTS).map(|_| AtomicU64::new(FREE)).collect(),
            live: AtomicUsize::new(0),
            watermark: AtomicUsize::new(0),
        }
    }

    /// Claim a slot and mark it `PENDING`; spins when all slots are taken.
    fn acquire_slot(&self) -> usize {
        let backoff = Backoff::new();
        loop {
            // SC: slot claims, the watermark raise, and committer collects
            // must all sit in one total order — a committer that misses a
            // claimed slot must be able to prove it via the fence protocol.
            for (index, slot) in self.slots.iter().enumerate() {
                if slot
                    .compare_exchange(FREE, PENDING, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    self.watermark.fetch_max(index + 1, Ordering::SeqCst);
                    return index;
                }
            }
            backoff.snooze();
        }
    }

    /// Number of live pins (commit-path gate).
    #[inline]
    pub(crate) fn live(&self) -> usize {
        // SC: the commit-path gate must not be reorderable around the
        // committer's clock tick (see the fence discipline in `txn.rs`).
        self.live.load(Ordering::SeqCst)
    }

    /// Collect the currently registered pin versions into `pins`, returning
    /// `true` when a `PENDING` slot was seen (the caller must then treat
    /// every window as covered).  Callers must issue a `SeqCst` fence after
    /// the event they order against (clock tick, slot release) and before
    /// calling this.
    pub(crate) fn collect_into(&self, pins: &mut Vec<u64>) -> bool {
        let mut pending = false;
        // SC: paired with the pinner's slot-claim/publish stores; the
        // caller's fence plus these loads make missed-pin proofs sound.
        let limit = self.watermark.load(Ordering::SeqCst).min(self.slots.len());
        for slot in &self.slots[..limit] {
            match slot.load(Ordering::SeqCst) {
                FREE => {}
                PENDING => pending = true,
                version => pins.push(version),
            }
        }
        pending
    }
}

impl fmt::Debug for SnapshotRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotRegistry")
            .field("live", &self.live())
            .finish()
    }
}

/// Everything a commit needs to decide preservation, collected once per
/// commit (between the clock tick and the write-log drain).
pub(crate) struct CommitCtx<'a> {
    /// Pin versions collected after the tick.
    pub(crate) pins: &'a [u64],
    /// A `PENDING` slot was seen: conservatively cover every window.
    pub(crate) pending: bool,
    /// Identifies the committing runtime (chains are tagged so one runtime's
    /// trims never touch another's custody).
    pub(crate) tag: usize,
}

impl CommitCtx<'_> {
    /// An empty context: nothing is preserved (the pre-snapshot fast path).
    pub(crate) const NONE: CommitCtx<'static> = CommitCtx {
        pins: &[],
        pending: false,
        tag: 0,
    };

    /// True when some collected pin lies inside the displaced payload's
    /// validity window `[old_version, wv)`.
    #[inline]
    pub(crate) fn covers(&self, old_version: u64, wv: u64) -> bool {
        self.pending || self.pins.iter().any(|&p| p >= old_version && p < wv)
    }
}

// ---------------------------------------------------------------------------
// The history side table.
//
// Process-global and keyed by cell address, so `TCell` stays two words: a
// per-cell history pointer would double the footprint of the skip hash's
// link cells for a feature that is idle in most workloads.  All access is
// under a shard mutex; the snapshot read path takes it only on the
// (orec-version > p) history branch.
// ---------------------------------------------------------------------------

/// One preserved payload: valid from `start` until the start of the next
/// newer entry (or the cell's current orec version).
struct HistoryEntry {
    start: u64,
    data: *mut (),
    drop_fn: unsafe fn(*mut ()),
}

// SAFETY: entries hold exclusively-owned displaced payloads of `Send + Sync`
// cell types; the table hands out only shared references under its lock.
unsafe impl Send for HistoryEntry {}

/// Per-cell chain of preserved payloads, newest first (strictly decreasing
/// `start`), tagged with the owning runtime.
struct Chain {
    tag: usize,
    entries: Vec<HistoryEntry>,
}

const SHARD_COUNT: usize = 16;

struct Shard {
    chains: Mutex<HashMap<usize, Chain>>,
}

fn shards() -> &'static [Shard; SHARD_COUNT] {
    static TABLE: std::sync::OnceLock<[Shard; SHARD_COUNT]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        std::array::from_fn(|_| Shard {
            chains: Mutex::new(HashMap::new()),
        })
    })
}

#[inline]
fn shard_for(cell: usize) -> &'static Shard {
    // Cells are at least 16-byte blocks; drop the dead low bits before
    // folding into the shard index.
    &shards()[(cell >> 4) % SHARD_COUNT]
}

#[inline]
fn lock_shard(shard: &Shard) -> std::sync::MutexGuard<'_, HashMap<usize, Chain>> {
    shard.chains.lock().unwrap_or_else(|e| e.into_inner())
}

/// Total history entries alive in the process (gates the `TCell::drop`
/// purge so teardown of snapshot-free maps never touches the table).
///
/// FACADE-EXEMPT: these three are deliberately plain `std` atomics, not
/// `crate::sync` ones: they are process-global bookkeeping whose values
/// survive across model executions (an aborted execution can leak entries),
/// so instrumenting them would make the checker's schedule-point sequence
/// depend on cross-run state and break replay determinism.  They
/// synchronize nothing.
static LIVE_ENTRIES: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
/// Displaced payloads preserved for snapshots (process-wide counter; see the
/// baseline note in `stm::stats`).
static PRESERVED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
/// Preserved payloads freed back (trim, drain, or cell teardown).
static FREED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Process-wide count of payloads preserved for snapshots.
pub(crate) fn preserved_total() -> u64 {
    PRESERVED.load(Ordering::Relaxed)
}

/// Process-wide count of preserved payloads freed again.
pub(crate) fn freed_total() -> u64 {
    FREED.load(Ordering::Relaxed)
}

/// Current number of live history entries (the custody backlog gauge).
pub fn live_history_entries() -> usize {
    LIVE_ENTRIES.load(Ordering::Relaxed)
}

/// True when any history entry exists (the cheap gate for teardown purges).
#[inline]
pub(crate) fn any_history() -> bool {
    LIVE_ENTRIES.load(Ordering::Relaxed) > 0
}

/// Preserve `data` (displaced at commit version `wv`, valid since `start`)
/// for the cell at `cell`.  Called by the commit glue *before* the orec is
/// released at `wv`, so any reader that observes the new version finds the
/// entry.
pub(crate) fn push_history(
    cell: usize,
    tag: usize,
    start: u64,
    data: *mut (),
    drop_fn: unsafe fn(*mut ()),
) {
    let mut chains = lock_shard(shard_for(cell));
    let chain = chains.entry(cell).or_insert_with(|| Chain {
        tag,
        entries: Vec::new(),
    });
    chain.tag = tag;
    debug_assert!(
        chain
            .entries
            .first()
            .is_none_or(|newest| newest.start < start),
        "history entries must be pushed in commit order"
    );
    chain.entries.insert(
        0,
        HistoryEntry {
            start,
            data,
            drop_fn,
        },
    );
    drop(chains);
    LIVE_ENTRIES.fetch_add(1, Ordering::Relaxed);
    PRESERVED.fetch_add(1, Ordering::Relaxed);
}

/// Resolve the cell at `cell` at pinned version `p` from history: applies
/// `f` to the newest preserved payload with `start <= p`, under the shard
/// lock (the entry cannot be trimmed mid-read).  Returns `None` when the
/// chain holds no entry old enough.
///
/// # Safety
///
/// `cell` must be the address of a live `TCell<T>` and every entry pushed
/// for it must hold a `T` payload (guaranteed by keying on the cell address).
pub(crate) unsafe fn read_history<T, R>(cell: usize, p: u64, f: impl FnOnce(&T) -> R) -> Option<R> {
    let chains = lock_shard(shard_for(cell));
    let chain = chains.get(&cell)?;
    let entry = chain.entries.iter().find(|entry| entry.start <= p)?;
    // SAFETY: per the function contract the payload is a live `T`; the shard
    // lock keeps the entry alive for the duration of `f`.
    Some(f(unsafe { &*(entry.data as *const T) }))
}

/// Free every history entry belonging to the cell at `cell` immediately.
/// Called from `TCell::drop`: exclusive access means no pinned reader can
/// reach the cell, so its history is dead regardless of live pins — and the
/// address may be reused by a future cell, so the chain *must* go now.
pub(crate) fn purge_cell(cell: usize) {
    let chain = lock_shard(shard_for(cell)).remove(&cell);
    if let Some(chain) = chain {
        let count = chain.entries.len();
        for entry in chain.entries {
            // SAFETY: the destructor's exclusive access guarantees no reader
            // holds this payload.
            unsafe { (entry.drop_fn)(entry.data) };
        }
        LIVE_ENTRIES.fetch_sub(count, Ordering::Relaxed);
        FREED.fetch_add(count as u64, Ordering::Relaxed);
    }
}

/// Trim the history chains tagged `tag`, keeping only entries some pin in
/// `pins` still resolves through.  `pending` keeps everything (a pin of
/// unknown version is mid-registration).  Frees ride the epoch: a pinned
/// current-path reader may hold a payload that just transitioned into
/// history.
fn trim_tagged(tag: usize, pins: &[u64], pending: bool) {
    if pending {
        return;
    }
    let guard = epoch::pin();
    let mut freed = 0usize;
    for shard in shards() {
        let mut chains = lock_shard(shard);
        chains.retain(|_, chain| {
            if chain.tag != tag {
                return true;
            }
            // Entries are newest-first with strictly decreasing starts; the
            // entry at `i` resolves pins in `[start_i, start_{i-1})` (the
            // newest entry's window is additionally bounded by the cell's
            // current version, unknown here — kept conservatively whenever
            // any pin reaches it).
            let mut previous_start = u64::MAX;
            chain.entries.retain(|entry| {
                let needed = pins.iter().any(|&p| p >= entry.start && p < previous_start);
                previous_start = entry.start;
                if !needed {
                    freed += 1;
                    // SAFETY: no live pin resolves through this entry, and
                    // current-path readers are covered by the epoch defer.
                    unsafe { guard.defer_with(entry.data, entry.drop_fn) };
                }
                needed
            });
            !chain.entries.is_empty()
        });
    }
    if freed > 0 {
        LIVE_ENTRIES.fetch_sub(freed, Ordering::Relaxed);
        FREED.fetch_add(freed as u64, Ordering::Relaxed);
    }
}

/// An RAII pin holding one snapshot version live on an [`Stm`] runtime.
///
/// Created by [`Stm::pin_snapshot`]; readers resolve cells at the pinned
/// version with [`TCell::read_pinned_with`](crate::TCell::read_pinned_with)(crate::TCell::read_pinned_with).
/// While the pin is live, displaced values whose validity window contains
/// the pinned version are preserved; dropping the pin releases custody and
/// trims whatever no other pin needs.
pub struct SnapshotPin {
    stm: Arc<Stm>,
    slot: usize,
    version: u64,
}

impl SnapshotPin {
    /// Register a pin on `stm` at the clock's current version.
    pub(crate) fn new(stm: Arc<Stm>) -> Self {
        let registry = stm.snapshot_registry();
        let slot = registry.acquire_slot();
        // SC: the live-count raise must join the registry/clock total order.
        #[cfg(not(model_mutation))]
        registry.live.fetch_add(1, Ordering::SeqCst);
        // SC: order the slot claim and live-count raise before the clock
        // sample: a committer that misses this pin must have ticked after
        // the sample below, putting its windows entirely above our version.
        fence(Ordering::SeqCst);
        let version = stm.clock_now();
        // SC: `model_mutation` builds re-seed the publish/tick race by
        // raising the live count only after the clock sample: a committer
        // can now tick between our sample and the raise, see `live() == 0`,
        // and skip preserving a payload whose window contains our version
        // (see docs/VERIFICATION.md).
        #[cfg(model_mutation)]
        registry.live.fetch_add(1, Ordering::SeqCst);
        registry.slots[slot].store(version, Ordering::SeqCst);
        Self { stm, slot, version }
    }

    /// The pinned clock version: reads through this pin observe exactly the
    /// state at this version.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// True when this pin belongs to `stm`'s clock domain.  Resolving a cell
    /// through a foreign runtime's pin compares incomparable clocks.
    pub fn belongs_to(&self, stm: &Stm) -> bool {
        std::ptr::eq(Arc::as_ptr(&self.stm), stm)
    }
}

impl fmt::Debug for SnapshotPin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotPin")
            .field("version", &self.version)
            .finish()
    }
}

impl Drop for SnapshotPin {
    fn drop(&mut self) {
        let registry = self.stm.snapshot_registry();
        // SC: unpin in the registry's total order, then re-collect the
        // survivors and release everything only we needed; the fence pairs
        // with the committer's collect-side fence.
        registry.slots[self.slot].store(FREE, Ordering::SeqCst);
        registry.live.fetch_sub(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        let mut pins = Vec::new();
        let pending = registry.collect_into(&mut pins);
        trim_tagged(Arc::as_ptr(&self.stm) as usize, &pins, pending);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TCell;

    /// The history table and its gauges are process-global; tests that
    /// create entries and assert on [`live_history_entries`] serialize here
    /// so parallel test threads cannot shift the counts mid-assertion.
    static COUNTER_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn registry_collects_published_pins_and_flags_pending() {
        let registry = SnapshotRegistry::new();
        assert_eq!(registry.live(), 0);
        let slot = registry.acquire_slot();
        // SC: mirror the pin path's registry ordering in the test driver.
        registry.live.fetch_add(1, Ordering::SeqCst);
        let mut pins = Vec::new();
        assert!(
            registry.collect_into(&mut pins),
            "a claimed-but-unpublished slot must read as pending"
        );
        assert!(pins.is_empty());
        // SC: publish and unpin with the same orderings the real paths use.
        registry.slots[slot].store(41, Ordering::SeqCst);
        pins.clear();
        assert!(!registry.collect_into(&mut pins));
        assert_eq!(pins, vec![41]);
        registry.slots[slot].store(FREE, Ordering::SeqCst);
        registry.live.fetch_sub(1, Ordering::SeqCst);
        pins.clear();
        assert!(!registry.collect_into(&mut pins));
        assert!(pins.is_empty());
    }

    #[test]
    fn commit_ctx_window_test() {
        let ctx = CommitCtx {
            pins: &[10],
            pending: false,
            tag: 0,
        };
        assert!(ctx.covers(10, 11), "pin at the window's start is inside");
        assert!(ctx.covers(5, 11));
        assert!(!ctx.covers(11, 20), "pin below the window is outside");
        assert!(!ctx.covers(5, 10), "pin at wv is outside (half-open)");
        assert!(CommitCtx::NONE.pins.is_empty());
        assert!(!CommitCtx::NONE.covers(0, u64::MAX >> 2));
        let pending = CommitCtx {
            pins: &[],
            pending: true,
            tag: 0,
        };
        assert!(pending.covers(100, 101), "pending covers every window");
    }

    #[test]
    fn pin_resolves_old_values_and_drop_drains_history() {
        let _serial = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let stm = Arc::new(Stm::new());
        let cell = TCell::new(1u64);
        stm.run(|tx| cell.write(tx, 2));

        let backlog_before = live_history_entries();
        let pin = stm.pin_snapshot();
        stm.run(|tx| cell.write(tx, 3));
        stm.run(|tx| cell.write(tx, 4));

        assert_eq!(cell.read_pinned_with(&pin, |v| *v), 2);
        assert_eq!(cell.load_atomic(), 4);
        assert!(
            live_history_entries() > backlog_before,
            "a covered displacement must be preserved"
        );
        // Only the first post-pin displacement is preserved; the second's
        // window starts above the pin.
        drop(pin);
        assert_eq!(
            live_history_entries(),
            backlog_before,
            "dropping the last pin must drain this runtime's custody"
        );
        assert_eq!(cell.load_atomic(), 4);
    }

    #[test]
    fn two_pins_resolve_their_own_versions() {
        let _serial = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let stm = Arc::new(Stm::new());
        let cell = TCell::new(10u64);
        let p1 = stm.pin_snapshot();
        stm.run(|tx| cell.write(tx, 20));
        let p2 = stm.pin_snapshot();
        stm.run(|tx| cell.write(tx, 30));

        assert_eq!(cell.read_pinned_with(&p1, |v| *v), 10);
        assert_eq!(cell.read_pinned_with(&p2, |v| *v), 20);
        assert_eq!(cell.load_atomic(), 30);

        drop(p1);
        // p2's entry must survive p1's trim.
        assert_eq!(cell.read_pinned_with(&p2, |v| *v), 20);
        drop(p2);
    }

    #[test]
    fn cell_teardown_purges_its_history() {
        let _serial = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let stm = Arc::new(Stm::new());
        // Boxed: history chains are keyed by cell address, so custody
        // requires the cell not move between the preserving commit and its
        // teardown (`drop(cell)` of a stack local would relocate it).  Every
        // real cell lives inside a heap-allocated node and a shared cell
        // cannot be moved at all.
        let cell = Box::new(TCell::new(String::from("old")));
        let pin = stm.pin_snapshot();
        stm.run(|tx| cell.write(tx, String::from("new")));
        let backlog = live_history_entries();
        assert!(backlog > 0);
        drop(cell);
        assert!(
            live_history_entries() < backlog,
            "dropping the cell must purge its preserved entries"
        );
        drop(pin);
    }

    #[test]
    fn pin_sees_values_committed_before_it() {
        let stm = Arc::new(Stm::new());
        let cell = TCell::new(7u64);
        let pin = stm.pin_snapshot();
        // No writes since the pin: resolution takes the current-value path.
        assert_eq!(cell.read_pinned_with(&pin, |v| *v), 7);
        drop(pin);
    }

    #[test]
    fn belongs_to_distinguishes_runtimes() {
        let a = Arc::new(Stm::new());
        let b = Arc::new(Stm::new());
        let pin = a.pin_snapshot();
        assert!(pin.belongs_to(&a));
        assert!(!pin.belongs_to(&b));
    }
}
