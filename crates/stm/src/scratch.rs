//! Pooled per-thread transaction scratch.
//!
//! A transaction attempt needs several growable buffers: the read set, the
//! write log, the retirement bag, the keep-alive list, and the post-commit
//! action queue.  Allocating them per attempt put the global allocator on the
//! hot path of *every* transaction — including each retry of an aborted one.
//! This module leases a [`TxnScratch`] from a small per-thread pool instead:
//! the buffers are cleared (not freed) when the attempt finishes, so
//! steady-state transactions reuse whatever capacity earlier ones grew.
//!
//! The pool is keyed by thread, not by [`crate::Stm`]: scratch holds no
//! runtime-specific state, so one pool serves every runtime in the process,
//! and nested transactions (e.g. started from a post-commit action) simply
//! lease a second scratch.
//!
//! Two further allocation sinks live here because they belong to the scratch
//! lifecycle:
//!
//! * [`ReadFilter`] — a generation-stamped open-addressed table of orec
//!   addresses that dedupes read-set entries on insertion, so a skip-list
//!   traversal that re-reads the same cells stops growing the read set (and
//!   commit-time validation stops re-checking them).  Clearing is O(1): the
//!   generation stamp is bumped and stale slots are simply ignored.
//! * [`PostCommit`] — a type-erased `FnOnce()` whose closure is stored
//!   *inline* when it fits three words (all the closures the skip hash
//!   registers do), falling back to a box only for large captures.

use std::any::Any;
use std::cell::RefCell;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::sync::Arc;

use crossbeam_epoch::Bag;

use crate::orec::Orec;
use crate::tcell::WriteEntry;

/// One read-set entry: the orec's address and the raw word observed when the
/// read validated.
pub(crate) struct ReadEntry {
    pub(crate) orec: *const Orec,
    pub(crate) observed: u64,
}

/// Open-addressed, generation-stamped set of orec addresses.
///
/// Linear probing over a power-of-two table; a slot is live only when its
/// stamp matches the filter's current generation, so [`ReadFilter::clear`]
/// never touches the table.  The table doubles when half full, which keeps
/// probe chains short; growth allocates, but the capacity persists across
/// transactions via the scratch pool.
pub(crate) struct ReadFilter {
    slots: Vec<FilterSlot>,
    stamp: u64,
    len: usize,
}

#[derive(Clone, Copy)]
struct FilterSlot {
    ptr: usize,
    stamp: u64,
}

const FILTER_INITIAL_CAPACITY: usize = 64;

#[inline]
fn filter_hash(ptr: usize) -> usize {
    // Orecs are word-aligned fields of larger structs; shift the dead low
    // bits out and mix with the Fibonacci constant.  Hash in u64 so the
    // 64-bit constant also compiles on 32-bit targets.
    (((ptr as u64) >> 3).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) as usize
}

impl ReadFilter {
    fn new() -> Self {
        Self {
            slots: vec![FilterSlot { ptr: 0, stamp: 0 }; FILTER_INITIAL_CAPACITY],
            stamp: 1,
            len: 0,
        }
    }

    /// Insert `ptr`; returns false when it was already present (a dedup hit).
    pub(crate) fn insert(&mut self, ptr: usize) -> bool {
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut index = filter_hash(ptr) & mask;
        loop {
            let slot = &mut self.slots[index];
            if slot.stamp != self.stamp {
                *slot = FilterSlot {
                    ptr,
                    stamp: self.stamp,
                };
                self.len += 1;
                return true;
            }
            if slot.ptr == ptr {
                return false;
            }
            index = (index + 1) & mask;
        }
    }

    /// Forget every entry in O(1) by advancing the generation stamp.
    pub(crate) fn clear(&mut self) {
        self.stamp += 1;
        self.len = 0;
    }

    #[cold]
    fn grow(&mut self) {
        let live: Vec<usize> = self
            .slots
            .iter()
            .filter(|slot| slot.stamp == self.stamp)
            .map(|slot| slot.ptr)
            .collect();
        let new_capacity = self.slots.len() * 2;
        self.slots.clear();
        self.slots
            .resize(new_capacity, FilterSlot { ptr: 0, stamp: 0 });
        self.stamp += 1;
        self.len = 0;
        for ptr in live {
            self.insert(ptr);
        }
    }
}

/// Inline closure payload: three words covers every post-commit action the
/// skip hash registers (an `Arc` or two plus a small discriminant).
const POST_COMMIT_INLINE_WORDS: usize = 3;

/// A type-erased post-commit action, stored inline when small.
///
/// Two closure shapes share this representation: plain `FnOnce()` actions
/// (`PostCommit::new`) and stamp-consuming `FnOnce(u64)` actions
/// (`PostCommit::new_stamped`, the write-ahead-log hook).  The call glue is
/// monomorphized per shape, so a plain action never pays for the stamp it
/// ignores and neither shape boxes when the captures fit three words.
pub(crate) struct PostCommit {
    data: [MaybeUninit<usize>; POST_COMMIT_INLINE_WORDS],
    call_fn: unsafe fn(*mut u8, u64),
    drop_fn: unsafe fn(*mut u8),
}

// SAFETY: contract — `slot` must hold a live inline `F`; called at most once.
unsafe fn call_inline<F: FnOnce()>(slot: *mut u8, _stamp: u64) {
    // SAFETY: the slot holds a live `F`, consumed exactly once.
    let action = unsafe { slot.cast::<F>().read() };
    action();
}

// SAFETY: contract — `slot` must hold a live inline `F`; called at most once.
unsafe fn call_inline_stamped<F: FnOnce(u64)>(slot: *mut u8, stamp: u64) {
    // SAFETY: the slot holds a live `F`, consumed exactly once.
    let action = unsafe { slot.cast::<F>().read() };
    action(stamp);
}

// SAFETY: contract — `slot` must hold a live inline `F`; called at most once.
unsafe fn drop_inline<F>(slot: *mut u8) {
    // SAFETY: the slot holds a live `F` that is never used again.
    unsafe { slot.cast::<F>().drop_in_place() }
}

// SAFETY: contract — `slot` must hold a live `Box<F>`; called at most once.
unsafe fn call_boxed<F: FnOnce()>(slot: *mut u8, _stamp: u64) {
    // SAFETY: the slot holds a live `Box<F>`, consumed exactly once.
    let action = unsafe { slot.cast::<Box<F>>().read() };
    (*action)();
}

// SAFETY: contract — `slot` must hold a live `Box<F>`; called at most once.
unsafe fn call_boxed_stamped<F: FnOnce(u64)>(slot: *mut u8, stamp: u64) {
    // SAFETY: the slot holds a live `Box<F>`, consumed exactly once.
    let action = unsafe { slot.cast::<Box<F>>().read() };
    (*action)(stamp);
}

// SAFETY: contract — `slot` must hold a live `Box<F>`; called at most once.
unsafe fn drop_boxed<F>(slot: *mut u8) {
    // SAFETY: the slot holds a live `Box<F>` that is never used again.
    drop(unsafe { slot.cast::<Box<F>>().read() });
}

impl PostCommit {
    /// Write `action` inline when it fits, boxing otherwise; the caller
    /// supplies the matching (inline, boxed) call glue for its shape.
    fn store<F>(
        action: F,
        inline_call: unsafe fn(*mut u8, u64),
        boxed_call: unsafe fn(*mut u8, u64),
    ) -> Self {
        let mut data = [MaybeUninit::uninit(); POST_COMMIT_INLINE_WORDS];
        if std::mem::size_of::<F>() <= std::mem::size_of_val(&data)
            && std::mem::align_of::<F>() <= std::mem::align_of::<usize>()
        {
            // SAFETY: size and alignment were just checked.
            unsafe { data.as_mut_ptr().cast::<F>().write(action) };
            Self {
                data,
                call_fn: inline_call,
                drop_fn: drop_inline::<F>,
            }
        } else {
            // SAFETY: a thin `Box<F>` pointer always fits one word.
            unsafe { data.as_mut_ptr().cast::<Box<F>>().write(Box::new(action)) };
            Self {
                data,
                call_fn: boxed_call,
                drop_fn: drop_boxed::<F>,
            }
        }
    }

    pub(crate) fn new<F: FnOnce() + 'static>(action: F) -> Self {
        Self::store(action, call_inline::<F>, call_boxed::<F>)
    }

    /// An action that receives the attempt's commit stamp when invoked.
    pub(crate) fn new_stamped<F: FnOnce(u64) + 'static>(action: F) -> Self {
        Self::store(action, call_inline_stamped::<F>, call_boxed_stamped::<F>)
    }

    /// Consume the action and run it, handing it the commit stamp (ignored
    /// by plain actions).
    pub(crate) fn invoke(self, stamp: u64) {
        let mut this = ManuallyDrop::new(self);
        // SAFETY: ManuallyDrop suppresses `drop_fn`, so the closure is
        // consumed exactly once (by `call_fn`).
        unsafe { (this.call_fn)(this.data.as_mut_ptr().cast(), stamp) }
    }
}

impl Drop for PostCommit {
    fn drop(&mut self) {
        // An unrun action (aborted attempt, or unwinding) drops its closure
        // without calling it.
        // SAFETY: the slot still holds the closure (`invoke` suppresses this
        // drop via ManuallyDrop), so `drop_fn` consumes it exactly once.
        unsafe { (self.drop_fn)(self.data.as_mut_ptr().cast()) }
    }
}

/// The growable buffers of one transaction attempt, reused across attempts.
pub(crate) struct TxnScratch {
    pub(crate) read_set: Vec<ReadEntry>,
    pub(crate) filter: ReadFilter,
    pub(crate) writes: Vec<WriteEntry>,
    /// Values displaced by this attempt's writes, retired through the epoch
    /// in one batch when the attempt finishes — a commit with `k` writes
    /// pins once and flushes once.
    pub(crate) retired: Bag,
    pub(crate) keepalive: Vec<Arc<dyn Any + Send + Sync>>,
    pub(crate) post_commit: Vec<PostCommit>,
    /// Commit-sequenced actions: run at the serialization point, after the
    /// attempt can no longer abort but before its writes publish (see
    /// `Txn::on_commit_sequenced`).  Same inline-storage representation as
    /// the post-commit queue.
    pub(crate) sequenced: Vec<PostCommit>,
    /// Snapshot pin versions collected at commit time (only when pins are
    /// live); reused so pin collection never allocates in steady state.
    pub(crate) pins: Vec<u64>,
}

impl TxnScratch {
    fn new() -> Self {
        Self {
            read_set: Vec::new(),
            filter: ReadFilter::new(),
            writes: Vec::new(),
            retired: Bag::new(),
            keepalive: Vec::new(),
            post_commit: Vec::new(),
            sequenced: Vec::new(),
            pins: Vec::new(),
        }
    }

    /// Clear every buffer, retaining capacity for the next lease.
    fn reset(&mut self) {
        debug_assert!(
            self.retired.is_empty() || std::thread::panicking(),
            "scratch returned with unflushed retirements"
        );
        self.read_set.clear();
        self.filter.clear();
        self.writes.clear();
        self.keepalive.clear();
        self.post_commit.clear();
        self.sequenced.clear();
        self.pins.clear();
    }
}

/// How many scratches a thread parks; nesting deeper than this (transactions
/// started from post-commit actions of transactions started from ...) just
/// allocates.
const POOL_CAP: usize = 8;

thread_local! {
    // Boxed deliberately (not `clippy::vec_box`'s advice): a lease moves one
    // pointer in and out of the pool instead of the ~200-byte scratch struct,
    // and the box is what lets `ScratchLease` stay a thin handle.
    #[allow(clippy::vec_box)]
    static POOL: RefCell<Vec<Box<TxnScratch>>> = const { RefCell::new(Vec::new()) };
}

/// A leased [`TxnScratch`]; returns it to the thread's pool when dropped.
pub(crate) struct ScratchLease {
    scratch: ManuallyDrop<Box<TxnScratch>>,
}

pub(crate) fn lease() -> ScratchLease {
    let scratch = POOL
        .try_with(|pool| pool.borrow_mut().pop())
        .ok()
        .flatten()
        .unwrap_or_else(|| Box::new(TxnScratch::new()));
    ScratchLease {
        scratch: ManuallyDrop::new(scratch),
    }
}

impl std::ops::Deref for ScratchLease {
    type Target = TxnScratch;
    fn deref(&self) -> &TxnScratch {
        &self.scratch
    }
}

impl std::ops::DerefMut for ScratchLease {
    fn deref_mut(&mut self) -> &mut TxnScratch {
        &mut self.scratch
    }
}

impl Drop for ScratchLease {
    fn drop(&mut self) {
        // SAFETY: `scratch` is taken exactly once, here.
        let mut scratch = unsafe { ManuallyDrop::take(&mut self.scratch) };
        scratch.reset();
        let _ = POOL.try_with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < POOL_CAP {
                pool.push(scratch);
            }
            // Beyond the cap (or during thread teardown) the scratch is
            // simply dropped.
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn filter_dedupes_and_clears_in_o1() {
        let mut filter = ReadFilter::new();
        assert!(filter.insert(0x1000));
        assert!(!filter.insert(0x1000), "second insert is a dedup hit");
        assert!(filter.insert(0x2000));
        filter.clear();
        assert!(filter.insert(0x1000), "cleared filters forget everything");
    }

    #[test]
    fn filter_grows_past_initial_capacity() {
        // Miri runs a scaled-down count (interpretation is ~1000x slower);
        // 2048 still forces several capacity doublings.
        let n: usize = if cfg!(miri) { 2048 } else { 10_000 };
        let mut filter = ReadFilter::new();
        for i in 0..n {
            assert!(filter.insert(0x8000 + i * 8));
        }
        for i in 0..n {
            assert!(!filter.insert(0x8000 + i * 8));
        }
    }

    #[test]
    fn post_commit_inline_actions_run_once() {
        let fired = Rc::new(Cell::new(0));
        let action = {
            let fired = Rc::clone(&fired);
            PostCommit::new(move || fired.set(fired.get() + 1))
        };
        action.invoke(0);
        assert_eq!(fired.get(), 1);
    }

    #[test]
    fn post_commit_stamped_actions_receive_the_stamp() {
        let seen = Rc::new(Cell::new(0u64));
        let action = {
            let seen = Rc::clone(&seen);
            PostCommit::new_stamped(move |stamp| seen.set(stamp))
        };
        action.invoke(42);
        assert_eq!(seen.get(), 42);

        // The boxed fallback must forward the stamp too.
        let payload = [3u64; 16]; // too big for inline storage
        let seen_boxed = Rc::new(Cell::new(0u64));
        let action = {
            let seen_boxed = Rc::clone(&seen_boxed);
            PostCommit::new_stamped(move |stamp| seen_boxed.set(stamp + payload[0]))
        };
        action.invoke(10);
        assert_eq!(seen_boxed.get(), 13);
    }

    #[test]
    fn post_commit_unrun_actions_drop_their_captures() {
        let fired = Rc::new(Cell::new(0));
        let action = {
            let fired = Rc::clone(&fired);
            PostCommit::new(move || fired.set(fired.get() + 1))
        };
        drop(action);
        assert_eq!(fired.get(), 0, "dropped actions never fire");
        assert_eq!(Rc::strong_count(&fired), 1, "captures are released");
    }

    #[test]
    fn post_commit_large_captures_fall_back_to_boxes() {
        let payload = [7u64; 16]; // 128 bytes: too big for inline storage
        let fired = Rc::new(Cell::new(0u64));
        let action = {
            let fired = Rc::clone(&fired);
            PostCommit::new(move || fired.set(payload.iter().sum()))
        };
        action.invoke(0);
        assert_eq!(fired.get(), 7 * 16);
    }

    #[test]
    fn leases_recycle_capacity() {
        {
            let mut lease = lease();
            lease.read_set.reserve(1024);
            lease.writes.reserve(1024);
        }
        let lease = lease();
        assert!(lease.read_set.capacity() >= 1024);
        assert!(lease.writes.capacity() >= 1024);
    }
}
